//! Offline stand-in for the `serde` crate (see `crates/shims/README.md`).
//!
//! Nothing in this workspace serializes through serde at runtime — the
//! derives exist so downstream users *could* — so `Serialize` and
//! `Deserialize` are provided as marker traits satisfied by every type,
//! and the derive macros expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
