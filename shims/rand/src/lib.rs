//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Provides the 0.9-era API subset this workspace uses: a seedable
//! [`rngs::StdRng`], [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so sampled values differ from upstream,
//! but every consumer in this workspace is seeded and self-consistent.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator (subset of `rand::Rng`).
///
/// Implementors only provide [`RngCore::next_u64`]; everything else is
/// derived.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range. Panics if the range
    /// is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples uniformly from `self` using `rng`.
    fn sample_in<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let s = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + s) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let s = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + s) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Only `f64` on purpose: with a single float impl, a float-literal range
// (`0.0..900.0`) resolves to `f64` during inference instead of leaving an
// ambiguous `{float}` behind — the workspace never samples `f32`.
macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against landing on `end` through rounding.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64);

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator. SplitMix64 under the hood (the
    /// real crate uses ChaCha12); passes the basic avalanche properties
    /// and is more than adequate for data generation and simulation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so that small seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0..1e9), b.random_range(0.0..1e9));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.random_range(3.0..7.0);
            assert!((3.0..7.0).contains(&f));
            let i: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should not produce identity");
    }
}
