//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Runs each benchmark a configurable number of iterations and prints the
//! mean and best wall time per iteration. No statistics, warm-up
//! calibration, or HTML reports — just enough to keep `cargo bench`
//! targets building and producing comparable numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure (subset of `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.budget {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(black_box(out));
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        // One untimed call warms caches; criterion's warm-up phase.
        budget: 1,
    };
    f(&mut b);
    b.samples.clear();
    b.budget = sample_size;
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let best = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {name}: mean {mean:?}, best {best:?} ({} samples)",
        b.samples.len()
    );
}

/// Declares the benchmark entry-point functions (subset of criterion's
/// macro of the same name).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }
}
