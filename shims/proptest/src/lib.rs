//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`prop_assert!`] / [`prop_assert_eq!`], numeric-range and
//! tuple strategies, [`Strategy::prop_map`], and
//! [`collection::vec`]. Case generation is seeded from the test name, so
//! runs are deterministic. On failure the offending inputs are printed;
//! there is no shrinking.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property-test case (subset of
/// `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then one SplitMix64 scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = Self { state: h };
        let _ = rng.next_u64();
        rng
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let s = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + s) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The [`vec()`](fn@vec) strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = ($($arg.clone(),)*);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed on case {case}: {e}\ninputs {:?}",
                        stringify!($name),
                        inputs,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition, failing the current case (not the process) so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3.0..9.0f64, n in 1..10usize) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_maps(p in (0.0..1.0f64, 5..7u32).prop_map(|(a, b)| a + f64::from(b))) {
            prop_assert!((5.0..8.0).contains(&p));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0..100u32, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(sorted(v.clone()).len(), v.len());
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::TestRng;
        let s = (0.0..1.0f64, 0..10u32);
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
