//! Offline stand-in for `serde_derive` (see `crates/shims/README.md`).
//!
//! The shim `serde` crate implements `Serialize` / `Deserialize` as marker
//! traits with blanket impls, so the derives have nothing to generate and
//! expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
