//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! like the real crate, locks are not poisoned — a panic while holding a
//! guard leaves the data accessible, which the map-reduce engine relies on
//! when it isolates panicking task attempts with `catch_unwind`.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking;
    /// exclusive access is guaranteed by `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
