use mwsj_mapreduce::MetricsReport;
use serde::Serialize;

/// Replication statistics matching the columns of the paper's result tables
/// (§7.8.3).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ReplicationStats {
    /// "The number of Rectangles Replicated": rectangles marked for
    /// replication (every input rectangle for *All-Replicate*; 0 for the
    /// cascade, which never replicates).
    pub rectangles_replicated: u64,
    /// "The number of Rectangles After Replication": the aggregated count
    /// of copies communicated to reducers for the replicated rectangles
    /// (the parenthesized figures in Tables 2-9).
    pub rectangles_after_replication: u64,
}

/// The result of one distributed join run.
#[derive(Debug)]
pub struct JoinOutput {
    /// The concrete algorithm that executed the run. Equal to the
    /// requested algorithm for a pinned run; for [`Algorithm::Auto`] this
    /// is the optimizer's choice — never `Auto` itself.
    ///
    /// [`Algorithm::Auto`]: crate::Algorithm::Auto
    pub algorithm: crate::Algorithm,
    /// Output tuples: one record id per relation position, in position
    /// order. Ids are indices into the input slices. Sorted and
    /// duplicate-free. Empty when the run was started in count-only mode
    /// (see [`crate::JoinRun`]) — see [`JoinOutput::tuple_count`].
    pub tuples: Vec<Vec<u32>>,
    /// Number of output tuples (populated in every mode; equals
    /// `tuples.len()` when tuples are collected).
    pub tuple_count: u64,
    /// Replication statistics (the paper's table columns).
    pub stats: ReplicationStats,
    /// Full engine metrics: per-job intermediate pair counts, shuffle
    /// bytes, DFS traffic, wall times.
    pub report: MetricsReport,
}

impl JoinOutput {
    /// Number of output tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuple_count as usize
    }

    /// Whether the join produced no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuple_count == 0
    }
}
