/// Options for one join run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Count output tuples instead of materializing them. The heavier
    /// experiment rows of the paper produce outputs far larger than memory;
    /// the evaluation tables only report times and replication counts, so
    /// the bench harness runs in this mode.
    pub count_only: bool,
}

impl RunConfig {
    /// A configuration that counts output tuples without materializing.
    #[must_use]
    pub fn counting() -> Self {
        Self { count_only: true }
    }
}
