use std::time::Duration;

use mwsj_geom::Rect;
use mwsj_mapreduce::{CancelToken, TraceSink};
use mwsj_query::Query;
use mwsj_store::StoredDataset;

use crate::Algorithm;

/// A fully-described join run for [`Cluster::submit`](crate::Cluster::submit):
/// the query, the datasets bound to its relation positions, and the run
/// options (algorithm, count-only mode, a per-run trace sink).
///
/// Built with [`JoinRun::new`] plus chained options. The algorithm is an
/// option like any other, defaulting to [`Algorithm::Auto`] (the
/// cost-based optimizer picks); pin one with [`JoinRun::algorithm`]:
///
/// ```
/// use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
/// use mwsj_core::mapreduce::TraceSink;
/// use mwsj_geom::Rect;
/// use mwsj_query::Query;
///
/// let r1 = vec![Rect::new(10.0, 90.0, 5.0, 5.0)];
/// let r2 = vec![Rect::new(12.0, 88.0, 5.0, 5.0)];
/// let query = Query::parse("R1 overlaps R2").unwrap();
/// let cluster = Cluster::new(ClusterConfig::for_space((0.0, 100.0), (0.0, 100.0), 4));
///
/// let trace = TraceSink::recording();
/// let output = cluster
///     .submit(
///         &JoinRun::new(&query, &[&r1, &r2])
///             .algorithm(Algorithm::ControlledReplicate)
///             .counting()
///             .trace(trace.clone()),
///     )
///     .expect("join failed");
/// assert_eq!(output.tuple_count, 1);
/// assert_eq!(output.algorithm, Algorithm::ControlledReplicate);
/// assert!(trace.to_jsonl().contains("c-rep-round2-join"));
/// ```
#[derive(Debug, Clone)]
pub struct JoinRun<'a> {
    /// The multi-way spatial join query.
    pub query: &'a Query,
    /// Datasets bound to the query's relation positions: `relations[i]`
    /// binds position `i`; a self-join binds the same slice several times.
    pub relations: &'a [&'a [Rect]],
    /// Which distributed algorithm evaluates the query.
    /// [`Algorithm::Auto`] (the default) defers the choice to the
    /// cost-based optimizer at submit time.
    pub algorithm: Algorithm,
    /// Count output tuples instead of materializing them. The heavier
    /// experiment rows of the paper produce outputs far larger than memory;
    /// the evaluation tables only report times and replication counts, so
    /// the bench harness runs in this mode.
    pub count_only: bool,
    /// Trace sink recording job/phase/attempt spans for this run's jobs.
    /// Disabled by default; an enabled sink here takes precedence over any
    /// engine-wide sink configured on the cluster.
    pub trace: TraceSink,
    /// Cooperative cancellation token for the whole run: cancelling it
    /// aborts the current job at the next task boundary and fails the run
    /// with a `Cancelled` job error (never retried).
    pub cancel: CancelToken,
    /// Wall-clock budget for the run, enforced through [`JoinRun::cancel`]
    /// from submit time.
    pub deadline: Option<Duration>,
    /// Slot-scheduler priority: among queued runs, strictly higher
    /// priority acquires worker slots first.
    pub priority: i32,
    /// Fair-share weight: equal-priority runs receive slots proportionally
    /// to their share (clamped to at least 1 by the engine).
    pub share: u32,
    /// Combined stable fingerprint of the bound datasets, surfaced in
    /// every job's metrics (0 when unknown). Result caches use it to
    /// detect stale entries.
    pub input_fingerprint: u64,
}

impl<'a> JoinRun<'a> {
    /// Describes a run with default options: optimizer-chosen algorithm
    /// ([`Algorithm::Auto`]), materialized tuples, no trace.
    #[must_use]
    pub fn new(query: &'a Query, relations: &'a [&'a [Rect]]) -> Self {
        Self {
            query,
            relations,
            algorithm: Algorithm::Auto,
            count_only: false,
            trace: TraceSink::disabled(),
            cancel: CancelToken::new(),
            deadline: None,
            priority: 0,
            share: 1,
            input_fingerprint: 0,
        }
    }

    /// Pins the distributed algorithm instead of letting the optimizer
    /// choose.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets count-only mode explicitly.
    #[must_use]
    pub fn count_only(mut self, count_only: bool) -> Self {
        self.count_only = count_only;
        self
    }

    /// Counts output tuples without materializing them.
    #[must_use]
    pub fn counting(self) -> Self {
        self.count_only(true)
    }

    /// Attaches a trace sink to every job of this run.
    #[must_use]
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Attaches a cancellation token; cancelling it from another thread
    /// aborts the run at the next task boundary.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Bounds the run's wall-clock time; past the deadline the run fails
    /// with a `Cancelled { deadline_exceeded: true }` job error.
    #[must_use]
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Sets the slot-scheduler priority of this run's jobs.
    #[must_use]
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fair-share weight of this run's jobs.
    #[must_use]
    pub fn share(mut self, share: u32) -> Self {
        self.share = share;
        self
    }

    /// Records the combined fingerprint of the bound datasets (surfaced in
    /// job metrics; the engine does not interpret it).
    #[must_use]
    pub fn input_fingerprint(mut self, fingerprint: u64) -> Self {
        self.input_fingerprint = fingerprint;
        self
    }
}

/// A join run over *stored* datasets, for
/// [`Cluster::submit_stored`](crate::Cluster::submit_stored): the query,
/// one opened [`StoredDataset`] per relation position, and the same run
/// options as [`JoinRun`].
///
/// The default algorithm is [`Algorithm::Auto`]; on co-partitioned stores
/// the optimizer's stored plan usually resolves it to
/// [`Algorithm::MapSide`], the shuffle-free join over the per-cell stored
/// R-trees. Pinning a shuffle algorithm instead materializes the stored
/// relations and runs it unchanged — outputs are byte-identical either
/// way. The combined input fingerprint is derived from the stores'
/// recorded fingerprints, so no fingerprint option exists here.
#[derive(Debug, Clone)]
pub struct StoredRun<'a> {
    /// The multi-way spatial join query.
    pub query: &'a Query,
    /// Stored datasets bound to the query's relation positions.
    pub stores: &'a [&'a StoredDataset],
    /// Which algorithm evaluates the query (default [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
    /// Count output tuples instead of materializing them.
    pub count_only: bool,
    /// Trace sink for any engine jobs a materialized fallback submits.
    pub trace: TraceSink,
    /// Cooperative cancellation token for the whole run.
    pub cancel: CancelToken,
    /// Wall-clock budget for the run.
    pub deadline: Option<Duration>,
    /// Slot-scheduler priority (materialized fallback only).
    pub priority: i32,
    /// Fair-share weight (materialized fallback only).
    pub share: u32,
    /// Wall time the caller spent opening (reading + validating) the
    /// stores for this run, reported as the map-side job's
    /// `index_open_wall` so end-to-end comparisons against the shuffle
    /// algorithms stay honest. Zero (the default) for long-mounted stores
    /// whose open cost is amortized across many queries.
    pub open_wall: Duration,
}

impl<'a> StoredRun<'a> {
    /// Describes a stored run with default options.
    #[must_use]
    pub fn new(query: &'a Query, stores: &'a [&'a StoredDataset]) -> Self {
        Self {
            query,
            stores,
            algorithm: Algorithm::Auto,
            count_only: false,
            trace: TraceSink::disabled(),
            cancel: CancelToken::new(),
            deadline: None,
            priority: 0,
            share: 1,
            open_wall: Duration::ZERO,
        }
    }

    /// Records how long the caller spent opening the stores (surfaced as
    /// the map-side job's index-open time).
    #[must_use]
    pub fn open_wall(mut self, open_wall: Duration) -> Self {
        self.open_wall = open_wall;
        self
    }

    /// Pins the algorithm instead of letting the optimizer choose.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets count-only mode explicitly.
    #[must_use]
    pub fn count_only(mut self, count_only: bool) -> Self {
        self.count_only = count_only;
        self
    }

    /// Counts output tuples without materializing them.
    #[must_use]
    pub fn counting(self) -> Self {
        self.count_only(true)
    }

    /// Attaches a trace sink to any engine jobs of this run.
    #[must_use]
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Bounds the run's wall-clock time.
    #[must_use]
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Sets the slot-scheduler priority (materialized fallback only).
    #[must_use]
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fair-share weight (materialized fallback only).
    #[must_use]
    pub fn share(mut self, share: u32) -> Self {
        self.share = share;
        self
    }
}
