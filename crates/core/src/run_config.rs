use mwsj_geom::Rect;
use mwsj_mapreduce::TraceSink;
use mwsj_query::Query;

use crate::Algorithm;

/// A fully-described join run for [`Cluster::submit`](crate::Cluster::submit):
/// the query, the datasets bound to its relation positions, the algorithm,
/// and the run options (count-only mode, a per-run trace sink).
///
/// Built with [`JoinRun::new`] plus chained options:
///
/// ```
/// use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
/// use mwsj_core::mapreduce::TraceSink;
/// use mwsj_geom::Rect;
/// use mwsj_query::Query;
///
/// let r1 = vec![Rect::new(10.0, 90.0, 5.0, 5.0)];
/// let r2 = vec![Rect::new(12.0, 88.0, 5.0, 5.0)];
/// let query = Query::parse("R1 overlaps R2").unwrap();
/// let cluster = Cluster::new(ClusterConfig::for_space((0.0, 100.0), (0.0, 100.0), 4));
///
/// let trace = TraceSink::recording();
/// let output = cluster
///     .submit(
///         &JoinRun::new(&query, &[&r1, &r2], Algorithm::ControlledReplicate)
///             .counting()
///             .trace(trace.clone()),
///     )
///     .expect("join failed");
/// assert_eq!(output.tuple_count, 1);
/// assert!(trace.to_jsonl().contains("c-rep-round2-join"));
/// ```
#[derive(Debug, Clone)]
pub struct JoinRun<'a> {
    /// The multi-way spatial join query.
    pub query: &'a Query,
    /// Datasets bound to the query's relation positions: `relations[i]`
    /// binds position `i`; a self-join binds the same slice several times.
    pub relations: &'a [&'a [Rect]],
    /// Which distributed algorithm evaluates the query.
    pub algorithm: Algorithm,
    /// Count output tuples instead of materializing them. The heavier
    /// experiment rows of the paper produce outputs far larger than memory;
    /// the evaluation tables only report times and replication counts, so
    /// the bench harness runs in this mode.
    pub count_only: bool,
    /// Trace sink recording job/phase/attempt spans for this run's jobs.
    /// Disabled by default; an enabled sink here takes precedence over any
    /// engine-wide sink configured on the cluster.
    pub trace: TraceSink,
}

impl<'a> JoinRun<'a> {
    /// Describes a run with default options: materialized tuples, no trace.
    #[must_use]
    pub fn new(query: &'a Query, relations: &'a [&'a [Rect]], algorithm: Algorithm) -> Self {
        Self {
            query,
            relations,
            algorithm,
            count_only: false,
            trace: TraceSink::disabled(),
        }
    }

    /// Sets count-only mode explicitly.
    #[must_use]
    pub fn count_only(mut self, count_only: bool) -> Self {
        self.count_only = count_only;
        self
    }

    /// Counts output tuples without materializing them.
    #[must_use]
    pub fn counting(self) -> Self {
        self.count_only(true)
    }

    /// Attaches a trace sink to every job of this run.
    #[must_use]
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }
}
