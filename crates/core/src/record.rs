use mwsj_geom::Rect;
use mwsj_mapreduce::{Fnv64, RecordSize, StableHash};
use mwsj_query::RelationId;
use serde::{Deserialize, Serialize};

/// A rectangle tagged with its provenance: which relation position it
/// belongs to and its record id within that relation. This is the value
/// type of every intermediate key-value pair in the join algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggedRect {
    /// Relation position in the query.
    pub relation: RelationId,
    /// Record id within the relation (its index in the input slice).
    pub id: u32,
    /// The rectangle.
    pub rect: Rect,
}

impl TaggedRect {
    /// Creates a tagged rectangle.
    #[must_use]
    pub fn new(relation: RelationId, id: u32, rect: Rect) -> Self {
        Self { relation, id, rect }
    }
}

impl RecordSize for TaggedRect {
    fn size_bytes(&self) -> usize {
        // relation tag (2) + id (4) + four f64 corners (32).
        2 + 4 + 32
    }
}

// Manual impl (the orphan rule bars one on `Rect` itself): hash exactly
// the fields the encoded record carries, coordinates as IEEE bit patterns.
impl StableHash for TaggedRect {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.relation.0.stable_hash(h);
        self.id.stable_hash(h);
        h.write_u64(self.rect.min_x().to_bits());
        h.write_u64(self.rect.min_y().to_bits());
        h.write_u64(self.rect.max_x().to_bits());
        h.write_u64(self.rect.max_y().to_bits());
    }
}

/// Groups reducer-received tagged rectangles into positional per-relation
/// lists, as the local algorithms expect.
#[must_use]
pub fn group_by_relation(
    num_relations: usize,
    values: impl IntoIterator<Item = TaggedRect>,
) -> Vec<Vec<mwsj_local::LocalRect>> {
    let mut rels: Vec<Vec<mwsj_local::LocalRect>> = vec![Vec::new(); num_relations];
    for tr in values {
        rels[tr.relation.index()].push((tr.rect, tr.id));
    }
    rels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_stable() {
        let tr = TaggedRect::new(RelationId(1), 7, Rect::new(0.0, 1.0, 2.0, 1.0));
        assert_eq!(tr.size_bytes(), 38);
    }

    #[test]
    fn grouping_respects_positions() {
        let trs = vec![
            TaggedRect::new(RelationId(1), 5, Rect::new(0.0, 1.0, 1.0, 1.0)),
            TaggedRect::new(RelationId(0), 3, Rect::new(2.0, 1.0, 1.0, 1.0)),
            TaggedRect::new(RelationId(1), 6, Rect::new(4.0, 1.0, 1.0, 1.0)),
        ];
        let groups = group_by_relation(3, trs);
        assert_eq!(groups[0].len(), 1);
        assert_eq!(groups[1].len(), 2);
        assert!(groups[2].is_empty());
        assert_eq!(groups[0][0].1, 3);
        assert_eq!(groups[1][1].1, 6);
    }
}
