use mwsj_geom::{Coord, Rect};
use mwsj_mapreduce::{Engine, EngineConfig, Fnv64, TraceSink};
use mwsj_partition::Grid;
use mwsj_query::Query;
use mwsj_store::StoredDataset;

use crate::algorithms::{self, AlgoCtx, Algorithm};
use crate::{JoinError, JoinOutput, JoinRun, StoredRun};

/// Cluster configuration: the partitioned space, the reducer grid and the
/// engine parallelism.
///
/// The paper runs 64 reducers as an 8×8 grid over the data space (§7.8.1);
/// [`ClusterConfig::for_space`] mirrors that construction.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// x extent of the space (all rectangles must lie inside).
    pub x_range: (Coord, Coord),
    /// y extent of the space.
    pub y_range: (Coord, Coord),
    /// Grid columns (reducers per row).
    pub grid_cols: u32,
    /// Grid rows.
    pub grid_rows: u32,
    /// Number of physical reducers (shuffle partitions). `None` (the
    /// default, and the paper's setup) uses one reducer per grid cell.
    /// Setting it **below** the cell count decouples *logical* cells from
    /// *physical* reducers — the standard skew mitigation: a finer grid
    /// spreads hot regions over many cells, which hash onto the available
    /// reducers. All key-value pairs of one cell still meet at a single
    /// reducer, so every correctness argument is untouched.
    pub num_reducers: Option<u32>,
    /// Engine thread parallelism.
    pub engine: EngineConfig,
}

impl ClusterConfig {
    /// A square `side × side` reducer grid over the given space — `side²`
    /// reducers, as in the paper's 8×8 / 64-reducer setup.
    #[must_use]
    pub fn for_space(x_range: (Coord, Coord), y_range: (Coord, Coord), side: u32) -> Self {
        Self {
            x_range,
            y_range,
            grid_cols: side,
            grid_rows: side,
            num_reducers: None,
            engine: EngineConfig::default(),
        }
    }

    /// Uses a fixed number of physical reducers independent of the grid
    /// resolution (cells hash onto reducers).
    #[must_use]
    pub fn with_reducers(mut self, reducers: u32) -> Self {
        assert!(reducers > 0);
        self.num_reducers = Some(reducers);
        self
    }

    /// Overrides the engine parallelism.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a trace sink to the engine: every job of every run on this
    /// cluster records spans into it. An enabled per-run sink
    /// ([`JoinRun::trace`]) takes precedence for that run's jobs.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.engine = self.engine.with_trace(trace);
        self
    }
}

/// A simulated map-reduce cluster: the engine plus the grid partitioning
/// shared by every job of a join run.
pub struct Cluster {
    engine: Engine,
    grid: Grid,
    num_reducers: u32,
}

impl Cluster {
    /// Creates a cluster.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        let grid = Grid::new(
            config.x_range,
            config.y_range,
            config.grid_cols,
            config.grid_rows,
        );
        let num_reducers = config
            .num_reducers
            .unwrap_or_else(|| grid.num_cells())
            .min(grid.num_cells());
        Self {
            engine: Engine::new(config.engine),
            grid,
            num_reducers,
        }
    }

    /// Number of physical reducers (shuffle partitions) used by the join
    /// jobs.
    #[must_use]
    pub fn num_reducers(&self) -> u32 {
        self.num_reducers
    }

    /// The grid partitioning (one reducer per cell).
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The underlying engine (exposed for inspection; the join algorithms
    /// drive it internally).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs a multi-way spatial join with default options — the
    /// convenience form of [`Cluster::submit`].
    ///
    /// `relations[i]` is the dataset bound to query position `i`; a
    /// self-join binds the same slice to several positions. Output ids are
    /// indices into these slices. Each run's jobs deliver their metrics to
    /// a run-private hub, so [`JoinOutput::report`] covers exactly this
    /// run's jobs even when runs share the cluster concurrently.
    ///
    /// # Panics
    /// Panics if the number of datasets does not match the query's relation
    /// positions, a rectangle lies outside the configured space, or — under
    /// a fault plan — a job fails outright (see [`Cluster::submit`]).
    #[must_use]
    pub fn run(&self, query: &Query, relations: &[&[Rect]], algorithm: Algorithm) -> JoinOutput {
        self.submit(&JoinRun::new(query, relations).algorithm(algorithm))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the cost-based execution plan for a query over bound
    /// datasets — what [`Algorithm::Auto`] resolves to at submit time,
    /// exposed for `explain`-style inspection. Deterministic for fixed
    /// inputs (see [`crate::optimizer`]).
    ///
    /// # Panics
    /// Panics if the number of datasets does not match the query's
    /// relation positions.
    #[must_use]
    pub fn plan(&self, query: &Query, relations: &[&[Rect]]) -> crate::optimizer::Plan {
        crate::optimizer::plan(query, relations, &self.grid, self.num_reducers)
    }

    /// Submits a fully-described join run — the single entry point behind
    /// every other run method. The [`JoinRun`] carries the query, the
    /// datasets, the algorithm and the run options (count-only mode, a
    /// per-run [`TraceSink`]).
    ///
    /// Failed jobs surface as a [`JoinError`] instead of panicking: a task
    /// that exhausts its attempt budget under a fault plan (or an
    /// intermediate dataset whose DFS read retries run out) fails the
    /// join, not the process.
    ///
    /// # Errors
    /// [`JoinError::Job`] when a map-reduce job fails;
    /// [`JoinError::Dfs`] when an intermediate dataset stays unreadable.
    ///
    /// # Panics
    /// Panics on *caller* errors: dataset count not matching the query, or
    /// rectangles outside the space.
    pub fn submit(&self, run: &JoinRun<'_>) -> Result<JoinOutput, JoinError> {
        assert_eq!(
            run.relations.len(),
            run.query.num_relations(),
            "one dataset per query relation position"
        );
        let extent = self.grid.extent();
        for (i, rel) in run.relations.iter().enumerate() {
            assert!(
                rel.iter().all(|r| extent.contains_rect(r)),
                "relation {i} contains rectangles outside the cluster space"
            );
        }
        if let Some(timeout) = run.deadline {
            run.cancel.deadline_in(timeout);
        }
        // Resolve `Auto` to the optimizer's concrete choice (and its share
        // vector) before building the context, so the dispatch below only
        // ever sees executable algorithms. A pinned hypercube run derives
        // the same shares itself — the plan and the algorithm share one
        // deterministic derivation, so auto and pinned runs stay
        // byte-identical.
        let (algorithm, shares) = match run.algorithm {
            Algorithm::Auto => {
                let plan = self.plan(run.query, run.relations);
                let shares = (plan.algorithm == Algorithm::Hypercube)
                    .then(|| plan.shares.clone())
                    .flatten();
                (plan.algorithm, shares)
            }
            pinned => (pinned, None),
        };
        let ctx = AlgoCtx {
            engine: &self.engine,
            grid: &self.grid,
            num_reducers: self.num_reducers,
            count_only: run.count_only,
            trace: &run.trace,
            cancel: run.cancel.clone(),
            hub: mwsj_mapreduce::MetricsHub::new(),
            priority: run.priority,
            share: run.share,
            input_fingerprint: run.input_fingerprint,
            shares,
            dfs_base: (
                self.engine.dfs.read_bytes(),
                self.engine.dfs.write_bytes(),
                self.engine.dfs.transient_read_failures(),
            ),
        };
        match algorithm {
            Algorithm::TwoWayCascade => algorithms::cascade::run(&ctx, run.query, run.relations),
            Algorithm::AllReplicate => {
                algorithms::all_replicate::run(&ctx, run.query, run.relations)
            }
            Algorithm::ControlledReplicate => {
                algorithms::controlled_replicate::run(&ctx, run.query, run.relations, false)
            }
            Algorithm::ControlledReplicateLimit => {
                algorithms::controlled_replicate::run(&ctx, run.query, run.relations, true)
            }
            Algorithm::Hypercube => algorithms::hypercube::run(&ctx, run.query, run.relations),
            Algorithm::MapSide => {
                panic!("the map-side join needs stored datasets; use Cluster::submit_stored")
            }
            Algorithm::Auto => unreachable!("Auto resolved to a concrete algorithm above"),
        }
    }

    /// Builds the cost-based execution plan for a query over *stored*
    /// datasets — what [`Algorithm::Auto`] resolves to in
    /// [`Cluster::submit_stored`]. Adds the shuffle-free
    /// [`Algorithm::MapSide`] as a sixth candidate (zero communication;
    /// the inputs are already partitioned and indexed on disk) alongside
    /// the five shuffle algorithms.
    ///
    /// # Panics
    /// Panics if the number of stores does not match the query's relation
    /// positions, or a store was ingested with a different grid than this
    /// cluster's.
    #[must_use]
    pub fn plan_stored(&self, query: &Query, stores: &[&StoredDataset]) -> crate::optimizer::Plan {
        self.check_stored(query, stores);
        crate::optimizer::plan_stored(query, stores, &self.grid, self.num_reducers)
    }

    /// Submits a join run over stored datasets.
    ///
    /// When the resolved algorithm is [`Algorithm::MapSide`], the join
    /// runs directly over the per-cell stored R-trees — no map, sort,
    /// shuffle or merge phase, and the relations are never materialized in
    /// memory. Any other algorithm materializes the stored relations and
    /// goes through [`Cluster::submit`] unchanged, so outputs and logical
    /// counters are byte-identical across both paths.
    ///
    /// The combined input fingerprint is derived from the stores' recorded
    /// fingerprints exactly as [`Cluster::submit`] callers derive it from
    /// in-memory datasets, so result-cache keys are unaffected by where
    /// the data lives.
    ///
    /// # Errors
    /// Like [`Cluster::submit`]; the map-side path can only fail by
    /// cancellation or deadline.
    ///
    /// # Panics
    /// Panics on caller errors: store count not matching the query, or a
    /// store ingested with a different grid than this cluster's.
    pub fn submit_stored(&self, run: &StoredRun<'_>) -> Result<JoinOutput, JoinError> {
        self.check_stored(run.query, run.stores);
        if let Some(timeout) = run.deadline {
            run.cancel.deadline_in(timeout);
        }
        let algorithm = match run.algorithm {
            Algorithm::Auto => self.plan_stored(run.query, run.stores).algorithm,
            pinned => pinned,
        };
        let fingerprint = combined_fingerprint(run.stores);
        if algorithm == Algorithm::MapSide {
            let ctx = AlgoCtx {
                engine: &self.engine,
                grid: &self.grid,
                num_reducers: self.num_reducers,
                count_only: run.count_only,
                trace: &run.trace,
                cancel: run.cancel.clone(),
                hub: mwsj_mapreduce::MetricsHub::new(),
                priority: run.priority,
                share: run.share,
                input_fingerprint: fingerprint,
                shares: None,
                dfs_base: (
                    self.engine.dfs.read_bytes(),
                    self.engine.dfs.write_bytes(),
                    self.engine.dfs.transient_read_failures(),
                ),
            };
            return algorithms::map_side::run(&ctx, run.query, run.stores, run.open_wall);
        }
        let materialized: Vec<Vec<Rect>> = run.stores.iter().map(|s| s.materialize()).collect();
        let relations: Vec<&[Rect]> = materialized.iter().map(Vec::as_slice).collect();
        self.submit(
            &JoinRun::new(run.query, &relations)
                .algorithm(algorithm)
                .count_only(run.count_only)
                .trace(run.trace.clone())
                .cancel(run.cancel.clone())
                .priority(run.priority)
                .share(run.share)
                .input_fingerprint(fingerprint),
        )
    }

    /// Runs one shard's slice of a map-side join over stored datasets:
    /// seeds only from start-relation rectangles homed in `seed_cells`,
    /// probes everything, and returns the raw tuples and per-cell tally
    /// for [`crate::shards::gather`] to merge.
    ///
    /// Unlike [`Cluster::submit_stored`] this never arms a deadline on
    /// the run's cancel token — the scatter caller owns the token and
    /// arms it once across all shards. The algorithm is always
    /// [`Algorithm::MapSide`]; `run.algorithm` is ignored.
    ///
    /// # Errors
    /// Only by cancellation or deadline on the shared token.
    ///
    /// # Panics
    /// Panics on caller errors: store count not matching the query, or a
    /// store ingested with a different grid than this cluster's.
    pub fn submit_stored_partial(
        &self,
        run: &StoredRun<'_>,
        seed_cells: std::ops::Range<u32>,
    ) -> Result<crate::shards::ShardPartial, JoinError> {
        self.check_stored(run.query, run.stores);
        let ctx = AlgoCtx {
            engine: &self.engine,
            grid: &self.grid,
            num_reducers: self.num_reducers,
            count_only: run.count_only,
            trace: &run.trace,
            cancel: run.cancel.clone(),
            hub: mwsj_mapreduce::MetricsHub::new(),
            priority: run.priority,
            share: run.share,
            input_fingerprint: combined_fingerprint(run.stores),
            shares: None,
            dfs_base: (
                self.engine.dfs.read_bytes(),
                self.engine.dfs.write_bytes(),
                self.engine.dfs.transient_read_failures(),
            ),
        };
        let partial = algorithms::map_side::execute(&ctx, run.query, run.stores, Some(seed_cells))?;
        Ok(crate::shards::ShardPartial {
            tuples: partial.tuples,
            tally: partial.tally,
        })
    }

    /// The shared caller-error checks of the stored entry points.
    fn check_stored(&self, query: &Query, stores: &[&StoredDataset]) {
        assert_eq!(
            stores.len(),
            query.num_relations(),
            "one stored dataset per query relation position"
        );
        for (i, s) in stores.iter().enumerate() {
            assert!(
                s.grid() == &self.grid,
                "stored dataset {i} was ingested with a different grid than the cluster's"
            );
        }
    }
}

/// The combined fingerprint of a run's stored inputs: the same recipe
/// (record count, then each dataset fingerprint) the server applies to
/// in-memory bindings, so cache keys do not depend on where data lives.
#[must_use]
pub(crate) fn combined_fingerprint(stores: &[&StoredDataset]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(stores.len() as u64);
    for s in stores {
        h.write_u64(s.fingerprint());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_square_grid() {
        let c = Cluster::new(ClusterConfig::for_space((0.0, 80.0), (0.0, 80.0), 8));
        assert_eq!(c.grid().num_cells(), 64);
    }

    #[test]
    #[should_panic(expected = "outside the cluster space")]
    fn rejects_out_of_space_rectangles() {
        let cluster = Cluster::new(ClusterConfig::for_space((0.0, 10.0), (0.0, 10.0), 2));
        let q = Query::parse("a ov b").unwrap();
        let bad = vec![Rect::new(5.0, 5.0, 20.0, 2.0)];
        let ok = vec![Rect::new(1.0, 9.0, 1.0, 1.0)];
        let _ = cluster.run(&q, &[&bad, &ok], Algorithm::AllReplicate);
    }

    #[test]
    #[should_panic(expected = "one dataset per query relation position")]
    fn rejects_wrong_arity() {
        let cluster = Cluster::new(ClusterConfig::for_space((0.0, 10.0), (0.0, 10.0), 2));
        let q = Query::parse("a ov b").unwrap();
        let r = vec![Rect::new(1.0, 9.0, 1.0, 1.0)];
        let _ = cluster.run(&q, &[&r], Algorithm::AllReplicate);
    }

    #[test]
    #[should_panic(expected = "needs stored datasets")]
    fn map_side_requires_the_stored_entry_point() {
        let cluster = Cluster::new(ClusterConfig::for_space((0.0, 10.0), (0.0, 10.0), 2));
        let q = Query::parse("a ov b").unwrap();
        let r = vec![Rect::new(1.0, 9.0, 1.0, 1.0)];
        let _ = cluster.run(&q, &[&r, &r], Algorithm::MapSide);
    }

    #[test]
    #[should_panic(expected = "different grid")]
    fn stored_runs_reject_grid_mismatch() {
        let cluster = Cluster::new(ClusterConfig::for_space((0.0, 10.0), (0.0, 10.0), 2));
        let other = Grid::square((0.0, 10.0), (0.0, 10.0), 4);
        let bytes = mwsj_store::StoreBuilder::new(&other)
            .build(&[Rect::new(1.0, 9.0, 1.0, 1.0)])
            .unwrap();
        let store = StoredDataset::from_bytes(&bytes).unwrap();
        let q = Query::parse("a ov b").unwrap();
        let _ = cluster.submit_stored(&crate::StoredRun::new(&q, &[&store, &store]));
    }
}
