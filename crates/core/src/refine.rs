//! The *refinement* step (§1.1).
//!
//! The distributed algorithms implement the **filter** step over MBRs and
//! may therefore report tuples whose exact geometries do not actually
//! satisfy the predicates. When the spatial objects are polygons, this
//! module re-checks each candidate tuple against the exact geometry and
//! keeps only true results.

use mwsj_geom::Polygon;
use mwsj_query::{Predicate, Query};

/// Retains the candidate tuples whose exact polygon geometries satisfy
/// every predicate of the query.
///
/// `polygons[i]` holds the exact geometries of the dataset bound to query
/// position `i`, indexed by the same record ids the filter step reported.
///
/// # Panics
/// Panics if a tuple references a record id outside its relation.
#[must_use]
pub fn refine_tuples(
    query: &Query,
    polygons: &[&[Polygon]],
    candidates: &[Vec<u32>],
) -> Vec<Vec<u32>> {
    assert_eq!(polygons.len(), query.num_relations());
    candidates
        .iter()
        .filter(|tuple| {
            query.triples().iter().all(|t| {
                let a = &polygons[t.left.index()][tuple[t.left.index()] as usize];
                let b = &polygons[t.right.index()][tuple[t.right.index()] as usize];
                match t.predicate {
                    Predicate::Overlap => a.intersects(b),
                    Predicate::Range(d) => a.within_distance(b, d),
                    // Exact polygon containment: every vertex of b inside a
                    // and no boundary crossing (a simple polygon contains
                    // another iff all its vertices are inside and the
                    // boundaries do not properly cross; vertex containment
                    // plus mutual intersection already implies that here,
                    // so check all vertices).
                    Predicate::Contains => b.vertices().iter().all(|v| a.contains_point(v)),
                }
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_geom::Point;

    /// A right triangle with legs along the top-left corner.
    fn tri(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + s, y),
            Point::new(x, y - s),
        ])
    }

    #[test]
    fn refinement_removes_mbr_false_positives() {
        let q = Query::parse("a ov b").unwrap();
        // Two triangles whose MBRs overlap but whose exact shapes do not
        // touch (b sits below a's hypotenuse): the filter reports them, the
        // refinement drops them.
        let a = vec![tri(0.0, 10.0, 4.0)];
        let b = vec![tri(2.8, 6.4, 0.3)];
        assert!(a[0].mbr().overlaps(&b[0].mbr()));
        assert!(!a[0].intersects(&b[0]));
        let candidates = vec![vec![0, 0]];
        assert!(refine_tuples(&q, &[&a, &b], &candidates).is_empty());
    }

    #[test]
    fn refinement_keeps_true_positives() {
        let q = Query::parse("a ov b and b within 5 of c").unwrap();
        let a = vec![tri(0.0, 10.0, 4.0)];
        let b = vec![tri(1.0, 9.5, 4.0)];
        let c = vec![tri(7.0, 9.0, 2.0)];
        let candidates = vec![vec![0, 0, 0]];
        assert_eq!(refine_tuples(&q, &[&a, &b, &c], &candidates), candidates);
    }

    #[test]
    fn range_refinement_checks_exact_distance() {
        let q = Query::parse("a within 2 of b").unwrap();
        let a = vec![tri(0.0, 10.0, 2.0)];
        let near = vec![tri(3.5, 10.0, 2.0)];
        let far = vec![tri(8.0, 10.0, 2.0)];
        assert_eq!(
            refine_tuples(&q, &[&a, &near], &[vec![0, 0]]),
            vec![vec![0, 0]]
        );
        assert!(refine_tuples(&q, &[&a, &far], &[vec![0, 0]]).is_empty());
    }
}
