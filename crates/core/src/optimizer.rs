//! The cost-based algorithm optimizer behind [`Algorithm::Auto`].
//!
//! The paper fixes the algorithm per experiment; ROADMAP item 1 asks the
//! system to *choose*. This module generalises the cascade-only
//! [`crate::planner`]: from cheap, seeded samples of the bound datasets it
//! estimates — per candidate algorithm — the records communicated, the
//! records materialized on the DFS, the number of map-reduce rounds and
//! the local join work, combines them into one scalar cost, and picks the
//! cheapest plan. For the hypercube it also derives the share vector; the
//! spatial algorithms inherit the cluster's reducer grid.
//!
//! Everything is a pure function of `(query, relations, grid, reducers)`:
//! sampling uses a fixed seed, shares are enumerated deterministically,
//! and cost arithmetic avoids platform-dependent operations — so planner
//! decisions can be pinned in golden tests and cache keys can rely on the
//! same query always resolving to the same concrete algorithm.
//!
//! # Cost model
//!
//! For each candidate the model estimates, in units of *records*:
//!
//! - `comm_records` — map output records over all rounds: the shuffle
//!   volume, the dominant term of every algorithm's runtime here and in
//!   the paper's tables.
//! - `dfs_records` — records written to and re-read from the DFS between
//!   rounds (the cascade's intermediates, C-Rep's marked stream), charged
//!   `DFS_WEIGHT` each: a DFS round-trip costs more than a shuffled
//!   record (checksummed write + read + decode).
//! - `jobs` — map-reduce rounds, charged `JOB_OVERHEAD` records each:
//!   per-job setup, task scheduling and commit barriers.
//! - `local_pairs` — candidate pairs the reducers' join kernels must
//!   consider, charged `PAIR_WEIGHT` each. The spatial algorithms
//!   deliver pre-filtered, co-located rectangles, so their pair term is
//!   folded into `comm_records`; the hypercube delivers *every* pair of
//!   co-hashed rectangles unfiltered, so its kernel work scales with
//!   `Σ_t n_l·n_r·Π_{j∉{l,r}} s_j` and must be charged explicitly —
//!   without this term the hypercube's modest communication would always
//!   win and the optimizer would lose the paper's Table 2 rows.
//!
//! Weights are calibrated against this repo's in-process engine via the
//! `opt` bench (`BENCH_opt.json`), not Hadoop: the acceptance bar is that
//! `auto` lands within ~15% of the best manual choice on every Table 2
//! row of *this* implementation.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mwsj_geom::Rect;
use mwsj_partition::Grid;
use mwsj_query::{replication_bounds, Query, Triple};
use mwsj_store::{dataset_fingerprint, StoredDataset};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::algorithms::hypercube::derive_shares;
use crate::algorithms::{max_diagonal, Algorithm};
use crate::planner::{estimate_selectivity, sample_relations};

/// Fixed sampling seed: planner decisions must be a pure function of the
/// inputs (golden-pinnable, cache-key safe), never of run-to-run entropy.
const PLAN_SEED: u64 = 0xC0_57;

/// Sample size per relation. Larger than the cascade reorderer's
/// [`crate::planner::DEFAULT_SAMPLE`]: the optimizer compares *algorithms*,
/// and the cascade's cost hinges on pairwise selectivities estimated from
/// `sample²` pairs — at Table 2 densities a 200-rect sample expects only a
/// handful of matches, and that Poisson noise is enough to flip the
/// cascade/C-Rep-L decision. 600 rects per relation keeps sampling cheap
/// (sub-millisecond) while cutting the estimate's relative error ~3x.
const PLAN_SAMPLE: usize = 600;

/// Cost charged per map-reduce round, in record units.
const JOB_OVERHEAD: f64 = 2_000.0;

/// Cost multiplier for a DFS round-trip record relative to a shuffled one.
const DFS_WEIGHT: f64 = 3.0;

/// Cost per unfiltered candidate pair at a hypercube reducer.
const PAIR_WEIGHT: f64 = 0.02;

/// Entries kept in the planning-sample cache before it is cleared. Plans
/// are cheap relative to joins; the cache only needs to absorb the common
/// case of the same datasets being planned over and over (a server
/// answering repeated `auto`/`explain` calls), not act as a real LRU.
const SAMPLE_CACHE_CAP: usize = 64;

/// Tag words separating the two sampling procedures in the cache key:
/// in-memory relations sample by input order, stored datasets by storage
/// (leaf-pack) order, so identical data yields different (equally valid)
/// samples on the two paths and the entries must not alias.
const SAMPLES_IN_MEMORY: u64 = 0;
const SAMPLES_STORED: u64 = 1;

/// Process-wide cache of the seeded 600-rect planning samples, keyed by
/// the ordered per-relation dataset fingerprints. Sampling shuffles an
/// index vector per relation (O(n) work per plan); a server resolving
/// `auto` or answering `explain` for the same bound datasets repeats that
/// on every call without this. Caching the *sampled output* keyed by
/// content fingerprints is bit-transparent: same datasets, same samples,
/// same plan — the golden planner pins cannot observe the cache.
type SampleCache = Mutex<HashMap<Vec<u64>, Arc<Vec<Vec<Rect>>>>>;

fn sample_cache() -> &'static SampleCache {
    static CACHE: OnceLock<SampleCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cached(key: Vec<u64>, build: impl FnOnce() -> Vec<Vec<Rect>>) -> Arc<Vec<Vec<Rect>>> {
    if let Some(hit) = sample_cache().lock().expect("sample cache").get(&key) {
        return Arc::clone(hit);
    }
    let samples = Arc::new(build());
    let mut cache = sample_cache().lock().expect("sample cache");
    if cache.len() >= SAMPLE_CACHE_CAP {
        cache.clear();
    }
    cache
        .entry(key)
        .or_insert_with(|| Arc::clone(&samples))
        .clone()
}

fn cached_samples(relations: &[&[Rect]]) -> Arc<Vec<Vec<Rect>>> {
    let mut key = Vec::with_capacity(relations.len() + 1);
    key.push(SAMPLES_IN_MEMORY);
    key.extend(relations.iter().map(|r| dataset_fingerprint(r)));
    cached(key, || sample_relations(relations, PLAN_SAMPLE, PLAN_SEED))
}

/// Like [`cached_samples`] over stored datasets: a seeded uniform sample
/// without replacement, drawn by *storage* position so no relation is
/// ever materialized. One shared RNG across relations, mirroring
/// [`sample_relations`].
fn cached_stored_samples(stores: &[&StoredDataset]) -> Arc<Vec<Vec<Rect>>> {
    let mut key = Vec::with_capacity(stores.len() + 1);
    key.push(SAMPLES_STORED);
    key.extend(stores.iter().map(|s| s.fingerprint()));
    cached(key, || {
        let mut rng = StdRng::seed_from_u64(PLAN_SEED);
        stores
            .iter()
            .map(|s| {
                let mut idx: Vec<usize> = (0..s.record_count() as usize).collect();
                idx.shuffle(&mut rng);
                idx.truncate(PLAN_SAMPLE);
                idx.into_iter().map(|i| s.nth_rect(i)).collect()
            })
            .collect()
    })
}

/// The estimated cost breakdown of one candidate algorithm.
#[derive(Debug, Clone)]
pub struct CandidateCost {
    /// The candidate.
    pub algorithm: Algorithm,
    /// Map-reduce rounds the candidate needs.
    pub jobs: u32,
    /// Estimated map output records over all rounds.
    pub comm_records: f64,
    /// Estimated records round-tripped through the DFS between rounds.
    pub dfs_records: f64,
    /// Estimated unfiltered candidate pairs at the reducers (hypercube
    /// only; 0 for the spatial algorithms, whose local work is folded
    /// into `comm_records`).
    pub local_pairs: f64,
    /// The combined scalar cost the optimizer minimizes.
    pub cost: f64,
}

impl CandidateCost {
    fn new(algorithm: Algorithm, jobs: u32, comm: f64, dfs: f64, pairs: f64) -> Self {
        Self {
            algorithm,
            jobs,
            comm_records: comm,
            dfs_records: dfs,
            local_pairs: pairs,
            cost: comm + DFS_WEIGHT * dfs + JOB_OVERHEAD * f64::from(jobs) + PAIR_WEIGHT * pairs,
        }
    }
}

/// A costed execution plan: the chosen algorithm plus the granularity
/// parameters and the full candidate table (for `explain`).
#[derive(Debug, Clone)]
pub struct Plan {
    /// The optimizer's choice — always a concrete algorithm, never
    /// [`Algorithm::Auto`].
    pub algorithm: Algorithm,
    /// Physical reducers the plan runs on.
    pub reducers: u32,
    /// The reducer grid granularity `(cols, rows)` of the spatial
    /// algorithms.
    pub grid: (u32, u32),
    /// The hypercube share vector (one share per relation position) —
    /// populated whenever the hypercube was costed, used when it is
    /// chosen.
    pub shares: Option<Vec<u32>>,
    /// Every candidate's estimated cost, cheapest first.
    pub candidates: Vec<CandidateCost>,
}

impl Plan {
    /// Renders the plan as a JSON object (the `explain` wire format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"algorithm\":\"{}\",\"reducers\":{},\"grid\":[{},{}],\"shares\":",
            self.algorithm, self.reducers, self.grid.0, self.grid.1
        ));
        match &self.shares {
            Some(shares) => {
                s.push('[');
                for (i, sh) in shares.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&sh.to_string());
                }
                s.push(']');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"candidates\":[");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"algorithm\":\"{}\",\"jobs\":{},\"comm_records\":{:.1},\"dfs_records\":{:.1},\"local_pairs\":{:.1},\"cost\":{:.1}}}",
                c.algorithm, c.jobs, c.comm_records, c.dfs_records, c.local_pairs, c.cost
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Per-relation sampled statistics feeding the candidate cost formulas.
struct RelationStats {
    /// Relation cardinality.
    n: f64,
    /// Mean 4th-quadrant replication factor (`f1`) over the sample.
    q4: f64,
    /// Mean split factor (cells a rectangle overlaps).
    split: f64,
    /// Fraction of the sample estimated to be *marked* by C-Rep round 1:
    /// rectangles whose `d`-enlargement overlaps more than one cell. An
    /// interior rectangle with `d` of margin can never satisfy C1-C4, so
    /// this upper-bounds the marking rate while scaling the same way
    /// (rect size + d versus cell size).
    marked: f64,
    /// Mean `f1` factor conditioned on the marked sample (marked
    /// rectangles are the large ones, so their replication factor is
    /// above the relation mean).
    q4_marked: f64,
    /// Like `q4_marked` under the C-Rep-L bound.
    q4_bounded_marked: f64,
}

/// Clamps a rectangle to the grid extent (enlarged probe rectangles may
/// poke outside the space, which the grid treats as a caller error).
fn clamp_to(extent: &Rect, r: &Rect) -> Rect {
    let left = r.min_x().max(extent.min_x());
    let right = r.max_x().min(extent.max_x());
    let top = r.max_y().min(extent.max_y());
    let bottom = r.min_y().max(extent.min_y());
    Rect::new(left, top, (right - left).max(0.0), (top - bottom).max(0.0))
}

fn relation_stats(
    sizes: &[f64],
    samples: &[Vec<Rect>],
    grid: &Grid,
    bounds: &[f64],
    d: f64,
) -> Vec<RelationStats> {
    let extent = grid.extent();
    sizes
        .iter()
        .zip(samples.iter())
        .zip(bounds.iter())
        .map(|((&n, sample), &bound)| {
            if sample.is_empty() {
                return RelationStats {
                    n,
                    q4: 1.0,
                    split: 1.0,
                    marked: 0.0,
                    q4_marked: 1.0,
                    q4_bounded_marked: 1.0,
                };
            }
            let mut q4 = 0.0;
            let mut split = 0.0;
            let mut marked = 0usize;
            let mut q4_m = 0.0;
            let mut q4b_m = 0.0;
            for r in sample {
                let f1 = grid.fourth_quadrant_cells(r).len() as f64;
                let f2 = grid.fourth_quadrant_cells_within(r, bound).len() as f64;
                q4 += f1;
                split += grid.split_cells(r).len() as f64;
                let probe = clamp_to(&extent, &r.enlarge(d));
                if grid.split_cells(&probe).len() > 1 {
                    marked += 1;
                    q4_m += f1;
                    q4b_m += f2;
                }
            }
            let count = sample.len() as f64;
            RelationStats {
                n,
                q4: q4 / count,
                split: split / count,
                marked: marked as f64 / count,
                q4_marked: if marked > 0 {
                    q4_m / marked as f64
                } else {
                    1.0
                },
                q4_bounded_marked: if marked > 0 {
                    q4b_m / marked as f64
                } else {
                    1.0
                },
            }
        })
        .collect()
}

/// Estimated communication and DFS volume of the 2-way cascade in the
/// query's (unreordered) condition order, from sampled selectivities:
/// each stage shuffles the previous intermediate plus the newly-bound
/// base relation and materializes its output on the DFS for the next.
fn cascade_cost(query: &Query, sizes: &[f64], samples: &[Vec<Rect>]) -> CandidateCost {
    let triples = query.triples();
    let mut bound = vec![false; query.num_relations()];
    let mut comm = 0.0;
    let mut dfs = 0.0;
    let mut intermediate = 0.0;
    for (stage, t) in triples.iter().enumerate() {
        let sel = estimate_selectivity(t, samples);
        let (l, r) = (t.left.index(), t.right.index());
        let nl = sizes[l];
        let nr = sizes[r];
        if stage == 0 {
            comm += nl + nr;
            intermediate = sel * nl * nr;
        } else {
            let new = match (bound[l], bound[r]) {
                (true, true) => None,
                (true, false) => Some(nr),
                (false, true) => Some(nl),
                // A disconnected prefix never executes (the cascade
                // requires connectivity); cost it like a fresh pair.
                (false, false) => Some(nl + nr),
            };
            match new {
                Some(n_new) => {
                    comm += intermediate + n_new;
                    intermediate *= sel * n_new;
                }
                None => {
                    // A filter only shrinks the intermediate.
                    comm += intermediate;
                    intermediate *= sel.min(1.0);
                }
            }
            // The previous stage's output made a DFS round-trip to reach
            // this stage.
            dfs += intermediate;
        }
        bound[l] = true;
        bound[r] = true;
    }
    CandidateCost::new(
        Algorithm::TwoWayCascade,
        triples.len() as u32,
        comm,
        dfs,
        0.0,
    )
}

/// Total unfiltered candidate pairs at the hypercube reducers: a pair of
/// rectangles from the relations of triple `t` is co-hashed at
/// `Π_{j∉{l,r}} s_j` reducers.
fn hypercube_pairs(triples: &[Triple], sizes: &[f64], shares: &[u32]) -> f64 {
    let product: f64 = shares.iter().map(|&s| f64::from(s)).product();
    triples
        .iter()
        .map(|t| {
            let (l, r) = (t.left.index(), t.right.index());
            sizes[l] * sizes[r] * product / (f64::from(shares[l]) * f64::from(shares[r]))
        })
        .sum()
}

/// Builds the costed plan for a query over bound datasets on a cluster of
/// `reducers` physical reducers partitioning the space by `grid`.
///
/// Deterministic: same inputs, same plan (see the module docs).
#[must_use]
pub fn plan(query: &Query, relations: &[&[Rect]], grid: &Grid, reducers: u32) -> Plan {
    assert_eq!(relations.len(), query.num_relations());
    let samples = cached_samples(relations);
    let sizes: Vec<f64> = relations.iter().map(|r| r.len() as f64).collect();
    plan_from_stats(
        query,
        &sizes,
        &samples,
        max_diagonal(relations),
        grid,
        reducers,
        false,
    )
}

/// Builds the costed plan for a query over *stored* datasets: the five
/// shuffle candidates of [`plan`], costed from storage-order samples
/// (nothing is materialized), plus the shuffle-free
/// [`Algorithm::MapSide`] as a sixth candidate. Map-side moves zero
/// records — the inputs are already partitioned and indexed on disk — so
/// its cost is one round of overhead plus the estimated matched pairs the
/// local kernels touch, and it wins whenever the datasets are stored
/// co-partitioned (which is the only situation this entry point serves).
///
/// Deterministic like [`plan`]: same stores, same plan.
#[must_use]
pub fn plan_stored(query: &Query, stores: &[&StoredDataset], grid: &Grid, reducers: u32) -> Plan {
    assert_eq!(stores.len(), query.num_relations());
    let samples = cached_stored_samples(stores);
    let sizes: Vec<f64> = stores.iter().map(|s| s.record_count() as f64).collect();
    let max_diag = stores
        .iter()
        .flat_map(|s| s.iter())
        .map(|(r, _)| r.diagonal())
        .fold(0.0, f64::max);
    plan_from_stats(query, &sizes, &samples, max_diag, grid, reducers, true)
}

/// The shared candidate costing behind [`plan`] and [`plan_stored`]:
/// everything downstream of the dataset statistics (sizes, samples, the
/// `d_max` diagonal) is identical on the two paths.
fn plan_from_stats(
    query: &Query,
    sizes: &[f64],
    samples: &[Vec<Rect>],
    max_diag: f64,
    grid: &Grid,
    reducers: u32,
    stored: bool,
) -> Plan {
    let d = query.max_range_distance();
    let bounds: Vec<f64> = replication_bounds(query, max_diag)
        .into_iter()
        .map(|b| b * std::f64::consts::SQRT_2)
        .collect();
    let stats = relation_stats(sizes, samples, grid, &bounds, d);
    let total: f64 = sizes.iter().sum();

    // All-Replicate: one round, every rectangle shuffled q4-fold.
    let all_rep_comm: f64 = stats.iter().map(|s| s.n * s.q4).sum();
    // C-Rep: round 1 splits everything; round 2 replicates the marked
    // rectangles f1-fold and projects the rest once. The marked stream
    // makes one DFS round-trip between the rounds.
    let round1: f64 = stats.iter().map(|s| s.n * s.split).sum();
    let crep_round2: f64 = stats
        .iter()
        .map(|s| s.n * (s.marked * s.q4_marked + (1.0 - s.marked)))
        .sum();
    let crep_l_round2: f64 = stats
        .iter()
        .map(|s| s.n * (s.marked * s.q4_bounded_marked + (1.0 - s.marked)))
        .sum();
    // Hypercube: one round, relation i shuffled Π_{j≠i} s_j-fold.
    let share_sizes: Vec<u64> = sizes.iter().map(|&n| n as u64).collect();
    let shares = derive_shares(&share_sizes, reducers);
    let hyper_comm: f64 = {
        let product: f64 = shares.iter().map(|&s| f64::from(s)).product();
        stats
            .iter()
            .zip(shares.iter())
            .map(|(s, &sh)| s.n * product / f64::from(sh))
            .sum()
    };
    let pairs = hypercube_pairs(query.triples(), sizes, &shares);

    let mut candidates = vec![
        cascade_cost(query, sizes, samples),
        CandidateCost::new(Algorithm::AllReplicate, 1, all_rep_comm, 0.0, 0.0),
        CandidateCost::new(
            Algorithm::ControlledReplicate,
            2,
            round1 + crep_round2,
            total,
            0.0,
        ),
        CandidateCost::new(
            Algorithm::ControlledReplicateLimit,
            2,
            round1 + crep_l_round2,
            total,
            0.0,
        ),
        CandidateCost::new(Algorithm::Hypercube, 1, hyper_comm, 0.0, pairs),
    ];
    if stored {
        // Map-side over stored co-partitioned inputs: zero communication,
        // zero DFS traffic, one round of driving overhead, and local work
        // proportional to the matched pairs the kernels enumerate.
        let matched: f64 = query
            .triples()
            .iter()
            .map(|t| {
                estimate_selectivity(t, samples) * sizes[t.left.index()] * sizes[t.right.index()]
            })
            .sum();
        candidates.push(CandidateCost::new(Algorithm::MapSide, 1, 0.0, 0.0, matched));
    }
    // Cheapest first; f64 costs are finite by construction. The sort is
    // stable, so equal costs keep the `Algorithm::ALL` order — another
    // determinism guarantee for the golden pins.
    candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));

    Plan {
        algorithm: candidates[0].algorithm,
        reducers,
        grid: (grid.cols(), grid.rows()),
        shares: Some(shares),
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn relation(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1000.0 - side);
                let y = rng.random_range(side..1000.0);
                Rect::new(
                    x,
                    y,
                    rng.random_range(0.0..side),
                    rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    fn grid8() -> Grid {
        Grid::new((0.0, 1000.0), (0.0, 1000.0), 8, 8)
    }

    #[test]
    fn plan_is_deterministic() {
        let q = Query::parse("A ov B and B ov C").unwrap();
        let a = relation(300, 1, 30.0);
        let b = relation(300, 2, 30.0);
        let c = relation(300, 3, 30.0);
        let grid = grid8();
        let p1 = plan(&q, &[&a, &b, &c], &grid, 64);
        let p2 = plan(&q, &[&a, &b, &c], &grid, 64);
        assert_eq!(p1.algorithm, p2.algorithm);
        assert_eq!(p1.to_json(), p2.to_json());
        assert_ne!(p1.algorithm, Algorithm::Auto);
        assert_eq!(p1.candidates.len(), Algorithm::ALL.len());
    }

    #[test]
    fn tiny_inputs_avoid_multi_round_plans() {
        // With a handful of rectangles, per-job overhead dominates: the
        // plan must be a single-round algorithm.
        let q = Query::parse("A ov B").unwrap();
        let a = relation(5, 4, 10.0);
        let b = relation(5, 5, 10.0);
        let grid = grid8();
        let p = plan(&q, &[&a, &b], &grid, 64);
        assert_eq!(p.candidates[0].jobs, 1, "plan: {}", p.to_json());
    }

    #[test]
    fn stored_plan_adds_map_side_and_picks_it() {
        let q = Query::parse("A ov B and B ov C").unwrap();
        let grid = grid8();
        let builder = mwsj_store::StoreBuilder::new(&grid);
        let stores: Vec<StoredDataset> = [(300, 1), (300, 2), (300, 3)]
            .iter()
            .map(|&(n, seed)| {
                let bytes = builder.build(&relation(n, seed, 30.0)).unwrap();
                StoredDataset::from_bytes(&bytes).unwrap()
            })
            .collect();
        let refs: Vec<&StoredDataset> = stores.iter().collect();
        let p = plan_stored(&q, &refs, &grid, 64);
        assert_eq!(p.candidates.len(), Algorithm::ALL.len() + 1);
        assert_eq!(p.algorithm, Algorithm::MapSide, "plan: {}", p.to_json());
        // Deterministic (second call is also the cache-hit path).
        assert_eq!(p.to_json(), plan_stored(&q, &refs, &grid, 64).to_json());
        // Map-side never infects the in-memory plan.
        let (a, b, c) = (
            relation(300, 1, 30.0),
            relation(300, 2, 30.0),
            relation(300, 3, 30.0),
        );
        let in_memory = plan(&q, &[&a, &b, &c], &grid, 64);
        assert!(in_memory
            .candidates
            .iter()
            .all(|c| c.algorithm != Algorithm::MapSide));
    }

    #[test]
    fn plan_json_is_valid_shape() {
        let q = Query::parse("A ov B").unwrap();
        let a = relation(50, 6, 20.0);
        let b = relation(50, 7, 20.0);
        let grid = grid8();
        let json = plan(&q, &[&a, &b], &grid, 64).to_json();
        assert!(json.starts_with("{\"algorithm\":\""));
        assert!(json.contains("\"candidates\":["));
        assert!(json.contains("\"shares\":["));
        assert!(json.ends_with("]}"));
    }
}
