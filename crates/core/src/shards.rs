//! Cell-range planning and counter gathering for sharded serving.
//!
//! The serving tier can split a stored-dataset map-side join across N
//! engine shards: each shard owns a disjoint, contiguous range of grid
//! cells and enumerates exactly the tuples whose *start-relation seed*
//! is homed in its range (probes still traverse every cell tree, so no
//! shard needs another shard's data to finish its slice). Because the
//! map-side join already attributes every tuple to its §6.2
//! designated cell for accounting, the per-cell tallies of the shards
//! are disjoint and sum element-wise — gathering reconstructs the
//! *identical* logical counters a single-node run reports:
//!
//! * `reduce_input_groups` — non-empty designated cells of the summed
//!   tally;
//! * `max_partition_records` — max of the summed tally (a designated
//!   cell's tuples all come from the one shard owning their seeds, so
//!   the sum preserves per-cell maxima);
//! * `tuple_count` / `reduce_output_records` — tally sums;
//! * tuples — the concatenation, normalized exactly like the
//!   single-node run (disjoint seeding makes this a pure merge).
//!
//! Only wall-clock fields (`reduce_wall`, `total_wall`,
//! `index_open_wall`) are physical rather than logical; the gatherer
//! stamps them from its own clock, and the service's counter JSON
//! never includes them — which is what "sharded results are
//! byte-identical to single-node" means and what the shard smoke gate
//! asserts.

use std::ops::Range;
use std::time::Duration;

use mwsj_mapreduce::{JobMetrics, MetricsReport};

use crate::algorithms::{normalize_tuples, Algorithm};
use crate::{JoinOutput, ReplicationStats};

/// Splits `num_cells` grid cells into at most `shards` disjoint,
/// contiguous, near-equal ranges covering `0..num_cells`.
///
/// Degenerate inputs clamp: zero shards plans like one, and more
/// shards than cells yields one range per cell (never an empty range).
#[must_use]
pub fn seed_cell_ranges(num_cells: u32, shards: u32) -> Vec<Range<u32>> {
    if num_cells == 0 {
        #[allow(clippy::single_range_in_vec_init)] // one empty range, not a Vec of 0
        return vec![0..0];
    }
    let shards = shards.clamp(1, num_cells);
    let base = num_cells / shards;
    let extra = num_cells % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut at = 0;
    for i in 0..shards {
        let len = base + u32::from(i < extra);
        ranges.push(at..at + len);
        at += len;
    }
    ranges
}

/// The combined input fingerprint of a run's stored inputs — the same
/// recipe [`crate::Cluster::submit_stored`] stamps into its metrics, so
/// a gathering front-end can fill [`GatherSpec::input_fingerprint`]
/// without submitting a full run.
#[must_use]
pub fn combined_fingerprint(stores: &[&mwsj_store::StoredDataset]) -> u64 {
    crate::cluster::combined_fingerprint(stores)
}

/// One shard's slice of a map-side run: the tuples seeded from its
/// cell range and the per-designated-cell tally they produced.
#[derive(Debug, Default)]
pub struct ShardPartial {
    /// Unnormalized output tuples (empty in count-only mode).
    pub tuples: Vec<Vec<u32>>,
    /// Per-designated-cell tuple counts, length `num_cells`.
    pub tally: Vec<u64>,
}

/// The run-level context [`gather`] needs to reconstruct the exact
/// single-node [`JobMetrics`].
#[derive(Debug, Clone)]
pub struct GatherSpec {
    /// Total records across every bound store (`map_input_records`).
    pub record_total: u64,
    /// Whether the run was count-only.
    pub count_only: bool,
    /// Summed index-open wall across the bindings.
    pub open_wall: Duration,
    /// Wall time of the scatter/gather join phase.
    pub join_wall: Duration,
    /// The combined input fingerprint of the bound stores.
    pub input_fingerprint: u64,
}

/// Merges shard partials into the [`JoinOutput`] a single-node
/// map-side run over the same stores would produce (logical fields
/// byte-identical; wall-clock fields stamped from `spec`).
#[must_use]
pub fn gather(partials: Vec<ShardPartial>, spec: &GatherSpec) -> JoinOutput {
    let num_cells = partials.iter().map(|p| p.tally.len()).max().unwrap_or(0);
    let mut tally = vec![0u64; num_cells];
    let mut tuples: Vec<Vec<u32>> = Vec::new();
    for p in partials {
        for (total, part) in tally.iter_mut().zip(p.tally) {
            *total += part;
        }
        tuples.extend(p.tuples);
    }
    let tuple_count: u64 = tally.iter().sum();
    let groups = tally.iter().filter(|&&t| t > 0).count() as u64;
    let metrics = JobMetrics {
        job_name: "map-side".to_string(),
        map_input_records: spec.record_total,
        reduce_input_groups: groups,
        max_partition_records: tally.iter().copied().max().unwrap_or(0),
        reduce_output_records: if spec.count_only { groups } else { tuple_count },
        reduce_wall: spec.join_wall,
        total_wall: spec.open_wall + spec.join_wall,
        index_open_wall: spec.open_wall,
        input_fingerprint: spec.input_fingerprint,
        ..JobMetrics::default()
    };
    let tuples = if spec.count_only {
        Vec::new()
    } else {
        normalize_tuples(tuples)
    };
    JoinOutput {
        algorithm: Algorithm::MapSide,
        tuples,
        tuple_count,
        stats: ReplicationStats::default(),
        report: MetricsReport {
            jobs: vec![metrics],
            dfs_read_bytes: 0,
            dfs_write_bytes: 0,
            dfs_transient_read_failures: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_cells() {
        for (cells, shards) in [(64, 4), (64, 5), (7, 3), (1, 8), (16, 16), (9, 1), (5, 0)] {
            let ranges = seed_cell_ranges(cells, shards);
            assert!(!ranges.is_empty());
            let mut at = 0;
            for r in &ranges {
                assert_eq!(r.start, at, "{cells} cells / {shards} shards");
                assert!(r.end > r.start, "no empty ranges");
                at = r.end;
            }
            assert_eq!(at, cells);
            let spread: Vec<u32> = ranges.iter().map(|r| r.end - r.start).collect();
            let (min, max) = (
                *spread.iter().min().expect("nonempty"),
                *spread.iter().max().expect("nonempty"),
            );
            assert!(max - min <= 1, "near-equal split: {spread:?}");
        }
    }

    #[test]
    fn zero_cells_degenerate_to_one_empty_range() {
        assert_eq!(seed_cell_ranges(0, 4), vec![0..0]);
    }

    #[test]
    fn gather_sums_tallies_and_normalizes_tuples() {
        let partials = vec![
            ShardPartial {
                tuples: vec![vec![2, 0], vec![1, 1]],
                tally: vec![1, 1, 0, 0],
            },
            ShardPartial {
                tuples: vec![vec![0, 0]],
                tally: vec![0, 0, 1, 0],
            },
        ];
        let spec = GatherSpec {
            record_total: 6,
            count_only: false,
            open_wall: Duration::from_millis(2),
            join_wall: Duration::from_millis(5),
            input_fingerprint: 0xABCD,
        };
        let out = gather(partials, &spec);
        assert_eq!(out.algorithm, Algorithm::MapSide);
        assert_eq!(out.tuple_count, 3);
        assert_eq!(out.tuples, vec![vec![0, 0], vec![1, 1], vec![2, 0]]);
        let job = &out.report.jobs[0];
        assert_eq!(job.job_name, "map-side");
        assert_eq!(job.map_input_records, 6);
        assert_eq!(job.reduce_input_groups, 3);
        assert_eq!(job.max_partition_records, 1);
        assert_eq!(job.reduce_output_records, 3);
        assert_eq!(job.input_fingerprint, 0xABCD);
    }

    #[test]
    fn sharded_gather_matches_the_single_node_run() {
        use crate::{Algorithm, Cluster, ClusterConfig, StoredRun};
        use mwsj_geom::Rect;
        use mwsj_query::Query;
        use mwsj_store::{StoreBuilder, StoredDataset};

        let cluster = Cluster::new(ClusterConfig::for_space((0.0, 100.0), (0.0, 100.0), 6));
        let grid = cluster.grid().clone();
        let mut state = 0x9E37_79B9_u64;
        let mut rects = |n: usize, lmax: f64| -> Vec<Rect> {
            (0..n)
                .map(|_| {
                    let mut next = || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state >> 11) as f64 / (1u64 << 53) as f64
                    };
                    let x = next() * (100.0 - lmax);
                    let y = next() * (100.0 - lmax) + lmax;
                    Rect::new(x, y, next() * lmax + 0.01, next() * lmax + 0.01)
                })
                .collect()
        };
        let bytes: Vec<Vec<u8>> = [rects(160, 8.0), rects(120, 6.0), rects(90, 7.0)]
            .iter()
            .map(|r| StoreBuilder::new(&grid).build(r).expect("build store"))
            .collect();
        let stores: Vec<StoredDataset> = bytes
            .iter()
            .map(|b| StoredDataset::from_bytes(b).expect("open store"))
            .collect();
        let refs: Vec<&StoredDataset> = stores.iter().collect();
        let query = Query::parse("a ov b and b within 4 of c").expect("query");

        for count_only in [false, true] {
            let single = cluster
                .submit_stored(
                    &StoredRun::new(&query, &refs)
                        .algorithm(Algorithm::MapSide)
                        .count_only(count_only),
                )
                .expect("single-node run");

            let partials: Vec<ShardPartial> = seed_cell_ranges(grid.num_cells(), 4)
                .into_iter()
                .map(|range| {
                    cluster
                        .submit_stored_partial(
                            &StoredRun::new(&query, &refs)
                                .algorithm(Algorithm::MapSide)
                                .count_only(count_only),
                            range,
                        )
                        .expect("shard run")
                })
                .collect();
            let spec = GatherSpec {
                record_total: refs.iter().map(|s| s.record_count()).sum(),
                count_only,
                open_wall: Duration::ZERO,
                join_wall: Duration::ZERO,
                input_fingerprint: combined_fingerprint(&refs),
            };
            let gathered = gather(partials, &spec);

            assert!(single.tuple_count > 0, "test data should join");
            assert_eq!(gathered.tuple_count, single.tuple_count);
            assert_eq!(gathered.tuples, single.tuples);
            let (g, s) = (&gathered.report.jobs[0], &single.report.jobs[0]);
            assert_eq!(g.job_name, s.job_name);
            assert_eq!(g.map_input_records, s.map_input_records);
            assert_eq!(g.reduce_input_groups, s.reduce_input_groups);
            assert_eq!(g.max_partition_records, s.max_partition_records);
            assert_eq!(g.reduce_output_records, s.reduce_output_records);
            assert_eq!(g.input_fingerprint, s.input_fingerprint);
        }
    }

    #[test]
    fn count_only_gather_reports_groups_not_tuples() {
        let partials = vec![ShardPartial {
            tuples: Vec::new(),
            tally: vec![4, 0, 2, 0],
        }];
        let spec = GatherSpec {
            record_total: 10,
            count_only: true,
            open_wall: Duration::ZERO,
            join_wall: Duration::ZERO,
            input_fingerprint: 1,
        };
        let out = gather(partials, &spec);
        assert_eq!(out.tuple_count, 6);
        assert!(out.tuples.is_empty());
        assert_eq!(out.report.jobs[0].reduce_output_records, 2);
    }
}
