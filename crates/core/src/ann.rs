//! Nearest-neighbor joins on the map-reduce framework — the
//! nearest-neighbor processing the paper's §10 (and its related work, §3)
//! name as the next query class for the grid approach: [`ann_join`] (each
//! outer rectangle's single nearest inner rectangle) and its
//! generalization [`knn_join`] (the k nearest).
//!
//! For every rectangle of the *outer* relation, find its nearest
//! rectangle(s) in the *inner* relation (minimum closed
//! rectangle-to-rectangle distance; ties broken toward the smaller record
//! id). The classic grid scheme:
//!
//! 1. **Candidate round.** The inner relation is *split*; outer rectangles
//!    are *projected*. Each reducer answers every local outer rectangle
//!    from its local R-tree, producing a correct **upper bound** on the
//!    true NN distance (any local neighbor is at least as far as the true
//!    one). Outer rectangles whose cell holds no inner rectangle fall back
//!    to the space diagonal.
//! 2. **Verification round.** Each outer rectangle is re-routed to every
//!    cell within its upper bound (the enlarged-split transform of §5.3);
//!    the inner relation is split again. Reducers emit their local best
//!    per outer id, keyed by id, and a final aggregation keeps the global
//!    minimum. Since the true NN lies within the upper bound of some cell
//!    the rectangle reaches, the global minimum is exact.
//!
//! The by-id aggregation runs as a third map-reduce job, mirroring how the
//! Hadoop implementation would fold results.

use mwsj_geom::{Coord, Rect};
use mwsj_mapreduce::JobSpec;
use mwsj_rtree::RTree;

use crate::{Cluster, JoinError};

/// One ANN result: the outer record, its nearest inner record and their
/// distance. Outer rectangles are always resolved when the inner relation
/// is non-empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestNeighbor {
    /// Outer record id (index into the outer slice).
    pub outer: u32,
    /// Nearest inner record id.
    pub inner: u32,
    /// Their closed rectangle distance.
    pub distance: Coord,
}

/// Computes the all-nearest-neighbor join of `outer` against `inner` on
/// the cluster. Returns one entry per outer rectangle, sorted by outer id;
/// empty when `inner` is empty.
///
/// # Panics
/// Panics if any rectangle lies outside the cluster space, or — under a
/// fault plan — if a job fails outright (use [`try_ann_join`] to handle
/// that case).
#[must_use]
pub fn ann_join(cluster: &Cluster, outer: &[Rect], inner: &[Rect]) -> Vec<NearestNeighbor> {
    try_ann_join(cluster, outer, inner).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`ann_join`], surfacing failed jobs as a [`JoinError`] instead of
/// panicking.
///
/// # Errors
/// [`JoinError::Job`] when a map-reduce job exhausts its attempt budget
/// under a fault plan.
///
/// # Panics
/// Panics if any rectangle lies outside the cluster space.
pub fn try_ann_join(
    cluster: &Cluster,
    outer: &[Rect],
    inner: &[Rect],
) -> Result<Vec<NearestNeighbor>, JoinError> {
    let grid = cluster.grid();
    let engine = cluster.engine();
    let extent = grid.extent();
    for r in outer.iter().chain(inner) {
        assert!(
            extent.contains_rect(r),
            "rectangle outside the cluster space"
        );
    }
    if inner.is_empty() || outer.is_empty() {
        return Ok(Vec::new());
    }
    engine.reset_metrics();

    // The worst-possible NN distance: the space diagonal.
    let diag = extent.diagonal();

    let mut input: Vec<Record> = Vec::with_capacity(outer.len() + inner.len());
    input.extend(
        outer
            .iter()
            .enumerate()
            .map(|(i, r)| Record::Outer(i as u32, *r)),
    );
    input.extend(
        inner
            .iter()
            .enumerate()
            .map(|(i, r)| Record::Inner(i as u32, *r)),
    );

    // ---- Round 1: local candidate bounds ------------------------------
    let bounds: Vec<(u32, Coord)> = engine.run(
        JobSpec::new("ann-round1-candidates")
            .reducers(grid.num_cells() as usize)
            .map(|record: &Record, emit| match record {
                Record::Outer(id, r) => emit(grid.cell_of(r).0, Record::Outer(*id, *r)),
                Record::Inner(id, r) => {
                    for cell in grid.split_cells(r) {
                        emit(cell.0, Record::Inner(*id, *r));
                    }
                }
            })
            .partition(|&k: &u32, _| k as usize)
            .reduce(|_: &u32, values: &[Record], out| {
                let (outers, inners) = partition_records(values);
                let tree = RTree::bulk_load(inners);
                for (id, r) in outers {
                    let ub = tree.nearest(&r).map_or(diag, |(_, _, d)| d);
                    out((id, ub));
                }
            }),
        &input,
    )?;

    // ---- Round 2: verified local bests --------------------------------
    let ub_of: Vec<Coord> = {
        let mut v = vec![diag; outer.len()];
        for &(id, ub) in &bounds {
            v[id as usize] = ub;
        }
        v
    };
    let locals: Vec<NearestNeighbor> = engine.run(
        JobSpec::new("ann-round2-verify")
            .reducers(grid.num_cells() as usize)
            .map(|record: &Record, emit| match record {
                Record::Outer(id, r) => {
                    let reach = r
                        .enlarge(ub_of[*id as usize])
                        .intersection(&extent)
                        .expect("outer rectangle inside the space");
                    for cell in grid.split_cells(&reach) {
                        emit(cell.0, Record::Outer(*id, *r));
                    }
                }
                Record::Inner(id, r) => {
                    for cell in grid.split_cells(r) {
                        emit(cell.0, Record::Inner(*id, *r));
                    }
                }
            })
            .partition(|&k: &u32, _| k as usize)
            .reduce(|_: &u32, values: &[Record], out| {
                let (outers, inners) = partition_records(values);
                if inners.is_empty() {
                    return;
                }
                let tree = RTree::bulk_load(inners);
                for (id, r) in outers {
                    if let Some((nn_rect, &nn_id, d)) = tree.nearest(&r) {
                        // Re-scan the ≤ d ball tracking (distance², id) so
                        // distance ties resolve toward the smallest inner id —
                        // the tree's own tie-break follows storage order, which
                        // would make the global aggregation nondeterministic.
                        // Seed with the nearest entry itself: `d` is a rounded
                        // sqrt, so the ball query may exclude it.
                        let mut best: (Coord, u32) = (nn_rect.distance_sq(&r), nn_id);
                        tree.query_within(&r, d, |rect, &nn| {
                            let ds = rect.distance_sq(&r);
                            if ds < best.0 || (ds == best.0 && nn < best.1) {
                                best = (ds, nn);
                            }
                        });
                        let (ds, nn) = best;
                        out(NearestNeighbor {
                            outer: id,
                            inner: nn,
                            distance: ds.sqrt(),
                        });
                    }
                }
            }),
        &input,
    )?;

    // ---- Round 3: global minimum per outer id --------------------------
    let mut result: Vec<NearestNeighbor> = engine.run(
        JobSpec::new("ann-round3-aggregate")
            .reducers(engine_partitions(outer.len()))
            .map(|nn: &NearestNeighbor, emit| emit(nn.outer, *nn))
            .partition(|&k: &u32, n| k as usize % n)
            .reduce(|_: &u32, candidates: &[NearestNeighbor], out| {
                let best = candidates
                    .iter()
                    .min_by(|a, b| {
                        a.distance
                            .total_cmp(&b.distance)
                            .then(a.inner.cmp(&b.inner))
                    })
                    .expect("at least one candidate per group");
                out(*best);
            }),
        &locals,
    )?;
    result.sort_by_key(|nn| nn.outer);
    debug_assert_eq!(result.len(), outer.len(), "every outer rectangle resolves");
    Ok(result)
}

impl mwsj_mapreduce::RecordSize for NearestNeighbor {
    fn size_bytes(&self) -> usize {
        4 + 4 + 8
    }
}

fn engine_partitions(n: usize) -> usize {
    n.clamp(1, 64)
}

/// A round-1/2 shuffle record: an outer or inner rectangle with its id.
#[derive(Clone, Copy)]
enum Record {
    Outer(u32, Rect),
    Inner(u32, Rect),
}

impl mwsj_mapreduce::RecordSize for Record {
    fn size_bytes(&self) -> usize {
        1 + 4 + 32
    }
}

/// Outer rectangles at a reducer, as `(id, rect)`.
type OuterList = Vec<(u32, Rect)>;
/// Inner rectangles at a reducer, shaped for R-tree bulk loading.
type InnerList = Vec<(Rect, u32)>;

/// Splits reducer input into `(outer, inner)` lists.
fn partition_records(values: &[Record]) -> (OuterList, InnerList) {
    let mut outers = Vec::new();
    let mut inners = Vec::new();
    for &v in values {
        match v {
            Record::Outer(id, r) => outers.push((id, r)),
            Record::Inner(id, r) => inners.push((r, id)),
        }
    }
    (outers, inners)
}

/// Computes the k-nearest-neighbor join: for every outer rectangle, its
/// `k` nearest inner rectangles (fewer when `|inner| < k`), each inner
/// list sorted by `(distance, inner id)`. `k = 1` degenerates to
/// [`ann_join`]. Same three-round scheme, with the round-1 bound taken at
/// the k-th local neighbor.
///
/// # Panics
/// Panics if any rectangle lies outside the cluster space or `k == 0`, or
/// — under a fault plan — if a job fails outright (use [`try_knn_join`]).
#[must_use]
pub fn knn_join(
    cluster: &Cluster,
    outer: &[Rect],
    inner: &[Rect],
    k: usize,
) -> Vec<Vec<NearestNeighbor>> {
    try_knn_join(cluster, outer, inner, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`knn_join`], surfacing failed jobs as a [`JoinError`] instead of
/// panicking.
///
/// # Errors
/// [`JoinError::Job`] when a map-reduce job exhausts its attempt budget
/// under a fault plan.
///
/// # Panics
/// Panics if any rectangle lies outside the cluster space or `k == 0`.
pub fn try_knn_join(
    cluster: &Cluster,
    outer: &[Rect],
    inner: &[Rect],
    k: usize,
) -> Result<Vec<Vec<NearestNeighbor>>, JoinError> {
    assert!(k > 0, "k must be positive");
    let grid = cluster.grid();
    let engine = cluster.engine();
    let extent = grid.extent();
    for r in outer.iter().chain(inner) {
        assert!(
            extent.contains_rect(r),
            "rectangle outside the cluster space"
        );
    }
    if inner.is_empty() || outer.is_empty() {
        return Ok(vec![Vec::new(); outer.len()]);
    }
    engine.reset_metrics();
    let diag = extent.diagonal();

    let mut input: Vec<Record> = Vec::with_capacity(outer.len() + inner.len());
    input.extend(
        outer
            .iter()
            .enumerate()
            .map(|(i, r)| Record::Outer(i as u32, *r)),
    );
    input.extend(
        inner
            .iter()
            .enumerate()
            .map(|(i, r)| Record::Inner(i as u32, *r)),
    );

    // ---- Round 1: k-th-neighbor candidate bounds ----------------------
    let bounds: Vec<(u32, Coord)> = engine.run(
        JobSpec::new("knn-round1-candidates")
            .reducers(grid.num_cells() as usize)
            .map(|record: &Record, emit| match record {
                Record::Outer(id, r) => emit(grid.cell_of(r).0, Record::Outer(*id, *r)),
                Record::Inner(id, r) => {
                    for cell in grid.split_cells(r) {
                        emit(cell.0, Record::Inner(*id, *r));
                    }
                }
            })
            .partition(|&kk: &u32, _| kk as usize)
            .reduce(|_: &u32, values: &[Record], out| {
                let (outers, inners) = partition_records(values);
                let tree = RTree::bulk_load(inners);
                for (id, r) in outers {
                    let knn = tree.k_nearest(&r, k);
                    // A valid bound needs k local neighbors; otherwise the
                    // true k-th neighbor may be anywhere.
                    let ub = if knn.len() == k { knn[k - 1].2 } else { diag };
                    out((id, ub));
                }
            }),
        &input,
    )?;

    // ---- Round 2: local k-best lists -----------------------------------
    let ub_of: Vec<Coord> = {
        let mut v = vec![diag; outer.len()];
        for &(id, ub) in &bounds {
            v[id as usize] = ub;
        }
        v
    };
    let locals: Vec<NearestNeighbor> = engine.run(
        JobSpec::new("knn-round2-verify")
            .reducers(grid.num_cells() as usize)
            .map(|record: &Record, emit| match record {
                Record::Outer(id, r) => {
                    let reach = r
                        .enlarge(ub_of[*id as usize])
                        .intersection(&extent)
                        .expect("outer rectangle inside the space");
                    for cell in grid.split_cells(&reach) {
                        emit(cell.0, Record::Outer(*id, *r));
                    }
                }
                Record::Inner(id, r) => {
                    for cell in grid.split_cells(r) {
                        emit(cell.0, Record::Inner(*id, *r));
                    }
                }
            })
            .partition(|&kk: &u32, _| kk as usize)
            .reduce(|_: &u32, values: &[Record], out| {
                let (outers, inners) = partition_records(values);
                if inners.is_empty() {
                    return;
                }
                let tree = RTree::bulk_load(inners);
                for (id, r) in outers {
                    for nn in local_k_best(&tree, &r, k) {
                        out(NearestNeighbor {
                            outer: id,
                            inner: nn.1,
                            distance: nn.0.sqrt(),
                        });
                    }
                }
            }),
        &input,
    )?;

    // ---- Round 3: global top-k per outer id ----------------------------
    let merged: Vec<(u32, Vec<NearestNeighbor>)> = engine.run(
        JobSpec::new("knn-round3-aggregate")
            .reducers(engine_partitions(outer.len()))
            .map(|nn: &NearestNeighbor, emit| emit(nn.outer, *nn))
            .partition(|&kk: &u32, n| kk as usize % n)
            .reduce(|&oid: &u32, candidates: &[NearestNeighbor], out| {
                // The same inner can be reported by several reducers.
                let mut candidates = candidates.to_vec();
                candidates.sort_unstable_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then(a.inner.cmp(&b.inner))
                });
                candidates.dedup_by_key(|nn| nn.inner);
                // Deduping by id after the (distance, id) sort can reorder
                // only equal-id entries (same distance); re-sort is
                // unnecessary.
                candidates.truncate(k);
                out((oid, candidates));
            }),
        &locals,
    )?;
    let mut result = vec![Vec::new(); outer.len()];
    for (oid, list) in merged {
        result[oid as usize] = list;
    }
    Ok(result)
}

/// The local top-k by `(distance², inner id)`: exact even under the
/// sqrt-rounding of the k-th distance, by unioning the tree's k-nearest
/// with the ≤ d_k ball.
fn local_k_best(tree: &RTree<u32>, r: &Rect, k: usize) -> Vec<(Coord, u32)> {
    let knn = tree.k_nearest(r, k);
    let Some(&(_, _, d_k)) = knn.last() else {
        return Vec::new();
    };
    let mut cands: Vec<(Coord, u32)> = knn
        .iter()
        .map(|&(rect, &id, _)| (rect.distance_sq(r), id))
        .collect();
    tree.query_within(r, d_k, |rect, &id| {
        cands.push((rect.distance_sq(r), id));
    });
    cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    cands.dedup_by_key(|c| c.1);
    // dedup_by_key only merges adjacent duplicates; equal ids always have
    // equal distances here, so adjacency holds after the sort.
    cands.truncate(k);
    cands
}

/// Reference kNN implementation: brute-force scan.
#[must_use]
pub fn knn_brute_force(outer: &[Rect], inner: &[Rect], k: usize) -> Vec<Vec<NearestNeighbor>> {
    outer
        .iter()
        .enumerate()
        .map(|(oid, o)| {
            let mut all: Vec<NearestNeighbor> = inner
                .iter()
                .enumerate()
                .map(|(i, r)| NearestNeighbor {
                    outer: oid as u32,
                    inner: i as u32,
                    distance: o.distance(r),
                })
                .collect();
            all.sort_unstable_by(|a, b| {
                a.distance
                    .total_cmp(&b.distance)
                    .then(a.inner.cmp(&b.inner))
            });
            all.truncate(k);
            all
        })
        .collect()
}

/// Reference implementation: brute-force scan. Exact, O(|outer|·|inner|).
#[must_use]
pub fn ann_brute_force(outer: &[Rect], inner: &[Rect]) -> Vec<NearestNeighbor> {
    if inner.is_empty() {
        return Vec::new();
    }
    outer
        .iter()
        .enumerate()
        .map(|(oid, o)| {
            let (iid, d) = inner
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, o.distance(r)))
                .min_by(|(i1, d1), (i2, d2)| d1.total_cmp(d2).then(i1.cmp(i2)))
                .expect("non-empty inner");
            NearestNeighbor {
                outer: oid as u32,
                inner: iid,
                distance: d,
            }
        })
        .collect()
}
