//! *Controlled-Replicate* and *C-Rep-L* (§7, §8, §9).
//!
//! Two map-reduce rounds:
//!
//! 1. **Mark.** All relations are *split*; the reducer of each cell runs
//!    the C1-C4 marking procedure (`mwsj_local::marking`) and emits every
//!    rectangle **starting** in its cell, flagged marked or unmarked. Each
//!    rectangle starts in exactly one cell (and is always split onto it),
//!    so round 1 emits each input rectangle exactly once. The flagged
//!    stream is materialized on the DFS, as Hadoop would between jobs.
//! 2. **Join.** Marked rectangles are replicated — with `f1` (C-Rep) or
//!    with `f2` under per-relation distance bounds (C-Rep-L) — and
//!    unmarked rectangles are projected. Each reducer computes the local
//!    multi-way join; the designated cell of §6.2 emits each tuple once.
//!
//! # Why projecting unmarked rectangles is safe
//!
//! For an output tuple `U'` and an unmarked member `v` starting in cell
//! `c_v`: if some member of `U'` did not overlap `c_v`, the members of
//! `U'` overlapping `c_v` would satisfy C1-C3 there (the paper's §7.5
//! argument) and `v` would have been marked. So *all* members overlap
//! `c_v` — and under the half-open cell-region semantics of
//! `mwsj-partition`, the duplicate-avoidance point `(u_r.x, u_l.y)` then
//! lies in `c_v` itself (the region contains `u_r.x` because `u_r`
//! overlaps the region and starts right of `v`; symmetrically for
//! `u_l.y`). Hence the designated cell is `c_v`, which receives `v` by
//! projection, every other unmarked member by the same argument, and every
//! marked member because the designated cell lies in each member's 4th
//! quadrant.
//!
//! # The C-Rep-L bound
//!
//! §7.9/§8 bound the distance between *joined rectangles* along join-graph
//! paths (`replication_bounds`). The designated cell, however, combines
//! the x of the rightmost and the y of the lowermost member, so its
//! distance from a member `m` is at most `√2 ×` the member-to-member
//! bound (each axis gap is bounded by a distance to one member). We
//! therefore replicate to `√2 × replication_bounds(...)` — the paper does
//! not spell this factor out, but without it boundary configurations lose
//! tuples (our property tests find them).

use mwsj_geom::Rect;
use mwsj_local::{marking, JoinKernel};
use mwsj_partition::CellId;
use mwsj_query::{replication_bounds, Query};

use super::{
    count_record, finish_tuples, flatten_input, is_designated_cell, max_diagonal, tuple_ids,
    AlgoCtx,
};
use crate::record::group_by_relation;
use crate::{JoinError, JoinOutput, ReplicationStats, TaggedRect};

#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    relations: &[&[Rect]],
    limit: bool,
) -> Result<JoinOutput, JoinError> {
    let engine = ctx.engine;
    let grid = ctx.grid;
    let count_only = ctx.count_only;
    let input = flatten_input(relations);
    let n = query.num_relations();

    // ---- Round 1: split everything, mark per cell --------------------
    let round1: Vec<(TaggedRect, bool)> = engine.run(
        ctx.spec("c-rep-round1-mark")
            .map(|tr: &TaggedRect, emit| {
                for cell in grid.split_cells(&tr.rect) {
                    emit(cell.0, *tr);
                }
            })
            .partition(|&k: &u32, p| k as usize % p)
            .reduce(|&cell: &u32, values: &[TaggedRect], out| {
                let cell_id = CellId(cell);
                let rels = group_by_relation(n, values.iter().copied());
                let flags = marking::mark_for_replication(query, grid, cell_id, &rels);
                for (pos, (rel_rects, rel_flags)) in rels.iter().zip(&flags).enumerate() {
                    for (&(rect, id), &marked) in rel_rects.iter().zip(rel_flags) {
                        if grid.cell_of(&rect) == cell_id {
                            out((
                                TaggedRect::new(mwsj_query::RelationId(pos as u16), id, rect),
                                marked,
                            ));
                        }
                    }
                }
            }),
        &input,
    )?;
    debug_assert_eq!(
        round1.len(),
        input.len(),
        "round 1 re-emits each rectangle once"
    );

    // Materialize the flagged stream between jobs, as Hadoop does. Under
    // fault injection the read-back may hit transient failures; exhausted
    // retries surface as a `JoinError::Dfs`.
    engine.dfs.write("c-rep/marked", round1);
    let round1 = engine.dfs.read::<(TaggedRect, bool)>("c-rep/marked")?;

    let marked_count = round1.iter().filter(|(_, m)| *m).count() as u64;
    let unmarked_count = round1.len() as u64 - marked_count;

    // C-Rep-L per-relation replication bounds (with the √2 designated-cell
    // factor; see the module docs).
    let bounds: Option<Vec<f64>> = limit.then(|| {
        let d_max = max_diagonal(relations);
        replication_bounds(query, d_max)
            .into_iter()
            .map(|b| b * std::f64::consts::SQRT_2)
            .collect()
    });

    // ---- Round 2: replicate marked / project unmarked, join ----------
    // One kernel compilation serves every round-2 reducer group.
    let kernel = JoinKernel::new(query);
    let raw: Vec<Vec<u32>> = engine.run(
        ctx.spec(if limit {
            "c-rep-l-round2-join"
        } else {
            "c-rep-round2-join"
        })
        .map(|(tr, marked): &(TaggedRect, bool), emit| {
            let targets = if *marked {
                match &bounds {
                    Some(b) => grid.fourth_quadrant_cells_within(&tr.rect, b[tr.relation.index()]),
                    None => grid.fourth_quadrant_cells(&tr.rect),
                }
            } else {
                vec![grid.cell_of(&tr.rect)]
            };
            for cell in targets {
                emit(cell.0, *tr);
            }
        })
        .partition(|&k: &u32, p| k as usize % p)
        .reduce(|&cell: &u32, values: &[TaggedRect], out| {
            let rels = group_by_relation(n, values.iter().copied());
            // Faithful enumerate-then-filter, as in All-Replicate's reducer
            // (see the comment there and the `ablation_pruning` bench).
            let mut found = 0u64;
            kernel.execute(&rels, |tuple| {
                if is_designated_cell(grid, CellId(cell), tuple) {
                    found += 1;
                    if !count_only {
                        out(tuple_ids(tuple));
                    }
                }
            });
            if count_only && found > 0 {
                out(count_record(found));
            }
        }),
        &round1,
    )?;

    let report = ctx.report();
    // Round 2 emits one pair per replication target for marked rectangles
    // plus exactly one projected pair per unmarked rectangle.
    let after_replication = report.jobs[1].map_output_records - unmarked_count;
    let stats = ReplicationStats {
        rectangles_replicated: marked_count,
        rectangles_after_replication: after_replication,
    };
    let (tuples, tuple_count) = finish_tuples(raw, count_only);
    Ok(JoinOutput {
        tuples,
        tuple_count,
        stats,
        report,
        algorithm: if limit {
            super::Algorithm::ControlledReplicateLimit
        } else {
            super::Algorithm::ControlledReplicate
        },
    })
}
