//! The *All-Replicate* baseline (§6.1).
//!
//! Every rectangle is replicated to all cells in its 4th quadrant
//! (replication function `f1`), which guarantees that for every output
//! tuple at least one reducer receives all members (§6.3 shows mere
//! splitting does not). Each reducer then computes the local multi-way
//! join and the designated-cell rule of §6.2 keeps exactly one copy of
//! each tuple.
//!
//! One round, but a huge communication cost — a rectangle near the
//! top-left corner travels to almost every reducer, whether or not it
//! joins anything (the paper's `u_4` example).

use mwsj_local::JoinKernel;
use mwsj_partition::CellId;
use mwsj_query::Query;

use super::{count_record, finish_tuples, flatten_input, is_designated_cell, tuple_ids, AlgoCtx};
use crate::record::group_by_relation;
use crate::{JoinError, JoinOutput, ReplicationStats, TaggedRect};

pub(crate) fn run(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    relations: &[&[mwsj_geom::Rect]],
) -> Result<JoinOutput, JoinError> {
    let grid = ctx.grid;
    let count_only = ctx.count_only;
    let input = flatten_input(relations);
    let n = query.num_relations();
    // Compile the local-join kernel once; the reduce closure shares it
    // across every reducer group (per-thread scratch inside).
    let kernel = JoinKernel::new(query);

    let raw: Vec<Vec<u32>> = ctx.engine.run(
        ctx.spec("all-replicate")
            .map(|tr: &TaggedRect, emit| {
                for cell in grid.fourth_quadrant_cells(&tr.rect) {
                    emit(cell.0, *tr);
                }
            })
            .partition(|&k: &u32, p| k as usize % p)
            .reduce(|&cell: &u32, values: &[TaggedRect], out| {
                let rels = group_by_relation(n, values.iter().copied());
                // Faithful to the paper's reducers: enumerate the local join
                // of everything received, emit only at the designated cell
                // (§6.2). (A designated-cell-aware matcher exists in
                // `mwsj_local::multiway_cell`; the `ablation_pruning` bench
                // shows it does not pay off under 4th-quadrant delivery, and
                // using it would give our reducers a shortcut the paper's
                // evaluation does not have.)
                let mut found = 0u64;
                kernel.execute(&rels, |tuple| {
                    if is_designated_cell(grid, CellId(cell), tuple) {
                        found += 1;
                        if !count_only {
                            out(tuple_ids(tuple));
                        }
                    }
                });
                if count_only && found > 0 {
                    out(count_record(found));
                }
            }),
        &input,
    )?;

    let report = ctx.report();
    let stats = ReplicationStats {
        rectangles_replicated: input.len() as u64,
        rectangles_after_replication: report.jobs[0].map_output_records,
    };
    let (tuples, tuple_count) = finish_tuples(raw, count_only);
    Ok(JoinOutput {
        tuples,
        tuple_count,
        stats,
        report,
        algorithm: super::Algorithm::AllReplicate,
    })
}
