//! The *2-way Cascade* baseline (§6.1).
//!
//! The multi-way query is evaluated as a sequence of 2-way joins, one
//! map-reduce job per join condition, in the order the query lists them
//! (the paper assumes the given order is the optimal one, §6.1 footnote).
//! Each job joins the growing intermediate result with the next base
//! relation using the 2-way blueprint of §5: the bound side is routed to
//! every cell its (enlarged, for range predicates) anchor rectangle
//! overlaps, the new relation is split, and the §5.3 designated-cell rule
//! keeps one copy of each pair. Between jobs the intermediate result is
//! materialized on the DFS — the "huge reading and writing cost" of §6.4
//! shows up in the DFS byte counters.
//!
//! A join condition whose endpoints are both already bound (only possible
//! for cyclic queries; the paper's queries are chains and stars) is
//! applied as a filter over the intermediate result instead of a join —
//! Hadoop would fold that predicate into the following job's reducer.

use mwsj_geom::Rect;
use mwsj_mapreduce::{Fnv64, RecordSize, StableHash};
use mwsj_partition::CellId;
use mwsj_query::{Predicate, Query, RelationId, Triple};
use mwsj_rtree::RTree;

use super::{normalize_tuples, AlgoCtx};
use crate::{JoinError, JoinOutput, ReplicationStats, TaggedRect};

/// A partially-joined tuple: one optional `(id, rect)` slot per relation
/// position.
#[derive(Debug, Clone, PartialEq)]
struct Partial {
    slots: Vec<Option<(u32, Rect)>>,
}

impl Partial {
    fn bind(&self, pos: usize, id: u32, rect: Rect) -> Partial {
        let mut slots = self.slots.clone();
        debug_assert!(slots[pos].is_none());
        slots[pos] = Some((id, rect));
        Partial { slots }
    }

    fn rect(&self, pos: usize) -> Rect {
        self.slots[pos].expect("position bound").1
    }
}

impl RecordSize for Partial {
    fn size_bytes(&self) -> usize {
        // One presence byte per slot; bound slots carry id + 4 corners.
        self.slots.iter().map(|s| 1 + s.map_or(0, |_| 4 + 32)).sum()
    }
}

// Intermediate cascade results are materialized on the DFS, so they need a
// fingerprint encoding; mirror the presence-byte layout of `size_bytes`.
impl StableHash for Partial {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(self.slots.len() as u64);
        for s in &self.slots {
            match s {
                None => h.write(&[0]),
                Some((id, rect)) => {
                    h.write(&[1]);
                    id.stable_hash(h);
                    h.write_u64(rect.min_x().to_bits());
                    h.write_u64(rect.min_y().to_bits());
                    h.write_u64(rect.max_x().to_bits());
                    h.write_u64(rect.max_y().to_bits());
                }
            }
        }
    }
}

/// One record of a cascade stage's input: either an intermediate tuple or
/// a base rectangle of the relation being joined in.
#[derive(Debug, Clone)]
enum Side {
    Tuple(Partial),
    Base(TaggedRect),
}

impl RecordSize for Side {
    fn size_bytes(&self) -> usize {
        1 + match self {
            Side::Tuple(p) => p.size_bytes(),
            Side::Base(tr) => tr.size_bytes(),
        }
    }
}

/// One output record of a cascade stage. In count-only mode the final
/// stage emits per-reducer [`StageOut::Count`] records instead of bound
/// tuples: the count travels through the engine's task-commit protocol, so
/// retried or speculative attempts (whose output is discarded) cannot
/// double-count — a shared counter bumped from the reduce closure would.
enum StageOut {
    Tuple(Partial),
    Count(u64),
}

pub(crate) fn run(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    relations: &[&[Rect]],
) -> Result<JoinOutput, JoinError> {
    let engine = ctx.engine;
    let n = query.num_relations();
    let mut bound = vec![false; n];
    let mut remaining: Vec<Triple> = query.triples().to_vec();
    let mut intermediate: Vec<Partial> = Vec::new();
    let mut stage = 0usize;
    // In count-only mode the *final* stage only counts its output — every
    // earlier stage must still materialize (its result feeds the next job;
    // that materialization is precisely the cascade's cost).
    let mut counted_final: Option<u64> = None;

    while !remaining.is_empty() {
        // Pick the next join condition: the first one touching the bound
        // set (any one for the first stage). Connectivity guarantees one
        // exists.
        let idx = if stage == 0 {
            0
        } else {
            remaining
                .iter()
                .position(|t| bound[t.left.index()] || bound[t.right.index()])
                .expect("connected query graph")
        };
        let triple = remaining.remove(idx);
        let (l, r) = (triple.left, triple.right);
        let last_stage = remaining.is_empty();
        let counting = ctx.count_only && last_stage;

        let (result, count) = match (bound[l.index()], bound[r.index()]) {
            (false, false) => {
                debug_assert_eq!(stage, 0);
                base_base_join(ctx, relations, n, triple, stage, counting)?
            }
            (true, false) => stage_join(
                ctx,
                relations,
                triple,
                l,
                r,
                false,
                &intermediate,
                stage,
                counting,
            )?,
            (false, true) => stage_join(
                ctx,
                relations,
                triple,
                r,
                l,
                true,
                &intermediate,
                stage,
                counting,
            )?,
            (true, true) => {
                // Cycle-closing predicate: filter in place.
                let kept: Vec<Partial> = intermediate
                    .into_iter()
                    .filter(|p| {
                        triple
                            .predicate
                            .eval(&p.rect(l.index()), &p.rect(r.index()))
                    })
                    .collect();
                let c = kept.len() as u64;
                (if counting { Vec::new() } else { kept }, c)
            }
        };
        intermediate = result;
        if counting {
            counted_final = Some(count);
        }
        bound[l.index()] = true;
        bound[r.index()] = true;

        // Materialize the intermediate result between jobs, as a Hadoop
        // cascade must (§6.4).
        if !remaining.is_empty() {
            let name = format!("cascade/stage-{stage}");
            engine.dfs.write(&name, intermediate.clone());
            intermediate = engine.dfs.read::<Partial>(&name)?.as_ref().clone();
        }
        stage += 1;
    }

    let tuples: Vec<Vec<u32>> = intermediate
        .iter()
        .map(|p| {
            p.slots
                .iter()
                .map(|s| s.expect("all positions bound at the end").0)
                .collect()
        })
        .collect();
    let tuple_count = counted_final.unwrap_or(tuples.len() as u64);

    Ok(JoinOutput {
        tuples: normalize_tuples(tuples),
        tuple_count,
        // The cascade never replicates; its cost lives in the DFS and
        // shuffle counters of the report.
        stats: ReplicationStats::default(),
        report: ctx.report(),
        algorithm: super::Algorithm::TwoWayCascade,
    })
}

/// Stage 0: join two base relations (§5.2/§5.3). The left side is routed
/// by its enlarged rectangle, the right side is split.
fn base_base_join(
    ctx: &AlgoCtx<'_>,
    relations: &[&[Rect]],
    n: usize,
    triple: Triple,
    stage: usize,
    counting: bool,
) -> Result<(Vec<Partial>, u64), JoinError> {
    let (l, r) = (triple.left, triple.right);
    let mut input: Vec<Side> = Vec::new();
    for (id, rect) in relations[l.index()].iter().enumerate() {
        input.push(Side::Base(TaggedRect::new(l, id as u32, *rect)));
    }
    for (id, rect) in relations[r.index()].iter().enumerate() {
        input.push(Side::Base(TaggedRect::new(r, id as u32, *rect)));
    }

    let empty = Partial {
        slots: vec![None; n],
    };
    run_pair_job(
        ctx,
        &format!("cascade-stage-{stage}"),
        &input,
        triple.predicate,
        l,
        false,
        move |tr| {
            // Anchor side: wrap the base rectangle as a fresh partial.
            empty.bind(l.index(), tr.id, tr.rect)
        },
        r,
        counting,
    )
}

/// Later stages: join the intermediate result (anchored at `anchor_pos`)
/// with base relation `new_pos`.
#[allow(clippy::too_many_arguments)]
fn stage_join(
    ctx: &AlgoCtx<'_>,
    relations: &[&[Rect]],
    triple: Triple,
    anchor_pos: RelationId,
    new_pos: RelationId,
    anchor_is_right: bool,
    intermediate: &[Partial],
    stage: usize,
    counting: bool,
) -> Result<(Vec<Partial>, u64), JoinError> {
    let mut input: Vec<Side> = intermediate
        .iter()
        .map(|p| Side::Tuple(p.clone()))
        .collect();
    for (id, rect) in relations[new_pos.index()].iter().enumerate() {
        input.push(Side::Base(TaggedRect::new(new_pos, id as u32, *rect)));
    }
    run_pair_job(
        ctx,
        &format!("cascade-stage-{stage}"),
        &input,
        triple.predicate,
        anchor_pos,
        anchor_is_right,
        |tr| panic!("unexpected base record for anchor relation {tr:?}"),
        new_pos,
        counting,
    )
}

/// The shared 2-way job: anchor-side records (intermediate tuples, or base
/// rectangles lifted by `lift`) are routed by their enlarged anchor
/// rectangle; `new_pos` base rectangles are split. Each reducer pairs them
/// with an R-tree probe and keeps a pair only at its designated cell.
#[allow(clippy::too_many_arguments)]
fn run_pair_job(
    ctx: &AlgoCtx<'_>,
    name: &str,
    input: &[Side],
    predicate: Predicate,
    anchor_pos: RelationId,
    anchor_is_right: bool,
    lift: impl Fn(&TaggedRect) -> Partial + Sync,
    new_pos: RelationId,
    counting: bool,
) -> Result<(Vec<Partial>, u64), JoinError> {
    let grid = ctx.grid;
    let d = predicate.distance();
    let extent = grid.extent();
    let outputs: Vec<StageOut> = ctx.engine.run(
        ctx.spec(name)
            .map(|record: &Side, emit| match record {
                Side::Tuple(p) => {
                    let anchor = p.rect(anchor_pos.index());
                    let enlarged = anchor
                        .enlarge(d)
                        .intersection(&extent)
                        .expect("anchor inside the space");
                    for cell in grid.split_cells(&enlarged) {
                        emit(cell.0, Side::Tuple(p.clone()));
                    }
                }
                Side::Base(tr) if tr.relation == anchor_pos => {
                    // Stage 0 anchor side: lift to a partial, route enlarged.
                    let p = lift(tr);
                    let enlarged = tr
                        .rect
                        .enlarge(d)
                        .intersection(&extent)
                        .expect("rect inside the space");
                    for cell in grid.split_cells(&enlarged) {
                        emit(cell.0, Side::Tuple(p.clone()));
                    }
                }
                Side::Base(tr) => {
                    for cell in grid.split_cells(&tr.rect) {
                        emit(cell.0, Side::Base(*tr));
                    }
                }
            })
            .partition(|&k: &u32, p| k as usize % p)
            .reduce(|&cell: &u32, values: &[Side], out| {
                // Borrow the partial tuples straight out of the shuffle
                // slice; only the (small) base pairs are copied out.
                let mut tuples: Vec<&Partial> = Vec::new();
                let mut base: Vec<(Rect, u32)> = Vec::new();
                for v in values {
                    match v {
                        Side::Tuple(p) => tuples.push(p),
                        Side::Base(tr) => base.push((tr.rect, tr.id)),
                    }
                }
                if tuples.is_empty() || base.is_empty() {
                    return;
                }
                let tree = RTree::bulk_load(base);
                let mut found = 0u64;
                for p in &tuples {
                    let anchor = p.rect(anchor_pos.index());
                    tree.query_within(&anchor, d, |rect, &id| {
                        // The distance probe equals the predicate for Overlap
                        // and Range; asymmetric predicates (Contains) need the
                        // exact oriented check on top.
                        if !predicate.eval_oriented(&anchor, rect, anchor_is_right) {
                            return;
                        }
                        // Designated cell (§5.3): the start of the overlap
                        // between the enlarged anchor and the partner.
                        let designated = mwsj_local::dedup::range_pair_cell(grid, &anchor, rect, d)
                            .expect("within distance implies enlarged overlap");
                        if designated == CellId(cell) {
                            if counting {
                                found += 1;
                            } else {
                                out(StageOut::Tuple(p.bind(new_pos.index(), id, *rect)));
                            }
                        }
                    });
                }
                if found > 0 {
                    out(StageOut::Count(found));
                }
            }),
        input,
    )?;

    let mut partials = Vec::with_capacity(outputs.len());
    let mut count = 0u64;
    for o in outputs {
        match o {
            StageOut::Tuple(p) => {
                count += 1;
                partials.push(p);
            }
            StageOut::Count(c) => count += c,
        }
    }
    Ok((partials, count))
}
