//! The Shares-style *hypercube* join (Afrati/Ullman; Kimmett et al.).
//!
//! Instead of partitioning *space* (the paper's grid), the reducers form a
//! hypercube with one dimension per query position: dimension `i` has
//! `s_i` coordinates ("shares"), and reducer `(c_0, .., c_{n-1})` is
//! responsible for exactly the candidate tuples whose member of relation
//! `i` hashes to `c_i`. The map phase hashes each rectangle on its *own*
//! dimension and replicates it across all combinations of the other
//! dimensions; the reduce phase runs the precompiled [`JoinKernel`] over
//! whatever arrived.
//!
//! Two properties make this attractive as a fifth algorithm:
//!
//! - **Exactly-once delivery.** A candidate tuple `(t_0, .., t_{n-1})`
//!   meets at precisely one reducer — the cell `(h_0(t_0), ..,
//!   h_{n-1}(t_{n-1}))` — so no designated-cell duplicate filter is
//!   needed, and the output is trivially equal to the oracle's.
//! - **Predicate-independent replication.** Each rectangle of relation
//!   `i` is sent to exactly `Π_{j≠i} s_j` reducers regardless of its
//!   size, position, or the query's range distance `d` — the exact
//!   opposite of the 4th-quadrant schemes, whose replication grows with
//!   `d` and rectangle extent.
//!
//! The price is that *every* pair of rectangles from different relations
//! is a candidate at some reducer: local pruning only happens inside the
//! kernel. The [`crate::optimizer`] weighs this against the spatial
//! algorithms per query.

use mwsj_local::JoinKernel;
use mwsj_mapreduce::Fnv64;
use mwsj_query::Query;

use super::{count_record, finish_tuples, flatten_input, AlgoCtx};
use crate::record::group_by_relation;
use crate::{JoinError, JoinOutput, ReplicationStats, TaggedRect};

/// Derives the share vector `s` for relation cardinalities `sizes` and a
/// reducer budget `k`: the deterministic exact optimum of the Shares
/// load model, i.e. the vector minimizing the expected per-reducer input
///
/// ```text
///   load(s) = Σ_i n_i / s_i          subject to   Π_i s_i ≤ k
/// ```
///
/// with ties broken first by total communication `Σ_i n_i · Π_{j≠i} s_j`
/// (equivalently: by a smaller hypercube, since comm = load · Πs), then
/// lexicographically — so the result is a pure function of its inputs
/// and safe to pin in golden tests. Found by exhaustive enumeration of
/// the (small) lattice of share vectors with product ≤ `k`.
pub(crate) fn derive_shares(sizes: &[u64], reducers: u32) -> Vec<u32> {
    let n = sizes.len();
    let k = u64::from(reducers.max(1));
    let mut best: Option<(u128, u128, Vec<u32>)> = None;
    let mut current = vec![1u32; n];

    // Recursive odometer over all share vectors with Π ≤ k. `comm_num`
    // accumulates Σ n_i · Π_{j≠i} s_j exactly; load(s) = comm_num / Πs is
    // compared as a fraction in u128 so no float round-off can make the
    // pick machine-dependent.
    fn recurse(
        sizes: &[u64],
        dim: usize,
        budget: u64,
        current: &mut Vec<u32>,
        best: &mut Option<(u128, u128, Vec<u32>)>,
    ) {
        if dim == sizes.len() {
            let product: u128 = current.iter().map(|&s| u128::from(s)).product();
            let comm: u128 = sizes
                .iter()
                .zip(current.iter())
                .map(|(&n, &s)| u128::from(n) * (product / u128::from(s)))
                .sum();
            // load = comm / product; compare (load, comm, vector).
            let better = match best {
                None => true,
                Some((b_comm, b_product, b_vec)) => {
                    let lhs = comm * *b_product;
                    let rhs = *b_comm * product;
                    lhs < rhs
                        || (lhs == rhs && (comm < *b_comm || (comm == *b_comm && current < b_vec)))
                }
            };
            if better {
                *best = Some((comm, product, current.clone()));
            }
            return;
        }
        let mut s = 1u64;
        while s <= budget {
            current[dim] = s as u32;
            recurse(sizes, dim + 1, budget / s, current, best);
            s += 1;
        }
        current[dim] = 1;
    }

    recurse(sizes, 0, k, &mut current, &mut best);
    best.map(|(_, _, v)| v).unwrap_or_default()
}

/// Row-major strides for linearizing a hypercube coordinate into a
/// single reduce key.
fn strides(shares: &[u32]) -> Vec<u32> {
    let mut strides = vec![1u32; shares.len()];
    for i in (0..shares.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shares[i + 1];
    }
    strides
}

/// The hash placing a rectangle on its own hypercube dimension. Stable
/// across platforms and attempts (FNV-1a over the relation position and
/// record id), which keeps retried map tasks byte-identical.
fn own_coordinate(tr: &TaggedRect, share: u32) -> u32 {
    let mut h = Fnv64::new();
    h.write_u64(u64::from(tr.relation.index() as u32));
    h.write_u64(u64::from(tr.id));
    (h.finish() % u64::from(share.max(1))) as u32
}

pub(crate) fn run(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    relations: &[&[mwsj_geom::Rect]],
) -> Result<JoinOutput, JoinError> {
    let count_only = ctx.count_only;
    let input = flatten_input(relations);
    let n = query.num_relations();
    let sizes: Vec<u64> = relations.iter().map(|r| r.len() as u64).collect();
    let shares = ctx
        .shares
        .clone()
        .unwrap_or_else(|| derive_shares(&sizes, ctx.num_reducers));
    debug_assert_eq!(shares.len(), n);
    let strides = strides(&shares);
    let kernel = JoinKernel::new(query);

    let raw: Vec<Vec<u32>> = ctx.engine.run(
        ctx.spec("hypercube")
            .map(|tr: &TaggedRect, emit| {
                // Fix this rectangle's own dimension, spin an odometer over
                // every other dimension: one emit per hypercube cell whose
                // dim-i coordinate matches the rectangle's hash.
                let i = tr.relation.index();
                let own = own_coordinate(tr, shares[i]);
                let mut coords = vec![0u32; shares.len()];
                coords[i] = own;
                loop {
                    let key: u32 = coords
                        .iter()
                        .zip(strides.iter())
                        .map(|(&c, &st)| c * st)
                        .sum();
                    emit(key, *tr);
                    // Advance the odometer, skipping the fixed dimension.
                    let mut dim = shares.len();
                    loop {
                        if dim == 0 {
                            return;
                        }
                        dim -= 1;
                        if dim == i {
                            continue;
                        }
                        coords[dim] += 1;
                        if coords[dim] < shares[dim] {
                            break;
                        }
                        coords[dim] = 0;
                    }
                }
            })
            .partition(|&k: &u32, p| k as usize % p)
            .reduce(|_key: &u32, values: &[TaggedRect], out| {
                let rels = group_by_relation(n, values.iter().copied());
                // No duplicate filter: the members of any joining tuple
                // share exactly one hypercube cell (their joint hash
                // vector), so each result is produced exactly once.
                let mut found = 0u64;
                kernel.execute(&rels, |tuple| {
                    found += 1;
                    if !count_only {
                        out(super::tuple_ids(tuple));
                    }
                });
                if count_only && found > 0 {
                    out(count_record(found));
                }
            }),
        &input,
    )?;

    let report = ctx.report();
    let stats = ReplicationStats {
        rectangles_replicated: input.len() as u64,
        rectangles_after_replication: report.jobs[0].map_output_records,
    };
    let (tuples, tuple_count) = finish_tuples(raw, count_only);
    Ok(JoinOutput {
        tuples,
        tuple_count,
        stats,
        report,
        algorithm: super::Algorithm::Hypercube,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_follow_relation_sizes() {
        // Equal relations split the budget evenly.
        assert_eq!(derive_shares(&[1000, 1000, 1000], 64), vec![4, 4, 4]);
        // A dominant relation takes the larger share.
        let s = derive_shares(&[100_000, 1000, 1000], 64);
        assert!(s.iter().product::<u32>() <= 64);
        assert!(s[0] > s[1] && s[0] > s[2], "shares {s:?}");
        // Empty relations get share 1: replicating along their dimension
        // buys nothing.
        assert_eq!(derive_shares(&[1000, 0], 16), vec![16, 1]);
    }

    #[test]
    fn shares_are_deterministic() {
        let a = derive_shares(&[123, 456, 789], 60);
        let b = derive_shares(&[123, 456, 789], 60);
        assert_eq!(a, b);
        assert!(a.iter().product::<u32>() <= 60);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[4, 4, 4]), vec![16, 4, 1]);
        assert_eq!(strides(&[2, 8]), vec![8, 1]);
    }
}
