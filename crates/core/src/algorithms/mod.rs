//! The distributed join algorithms: the paper's four plus the
//! Shares-style hypercube join.
//!
//! All of them share the same contract: input relations bound to query
//! positions, output tuples of record ids (exactly the in-memory reference
//! result of [`crate::reference::in_memory_join`]), and a metrics report
//! exposing the communication behaviour the paper compares.

pub(crate) mod all_replicate;
pub(crate) mod cascade;
pub(crate) mod controlled_replicate;
pub(crate) mod hypercube;
pub(crate) mod map_side;

use mwsj_geom::Rect;
use mwsj_mapreduce::{CancelToken, Engine, JobSpec, MetricsHub, MetricsReport, TraceSink, Unset};
use mwsj_partition::Grid;
use mwsj_query::RelationId;
use serde::{Deserialize, Serialize};

use crate::TaggedRect;

/// Everything an algorithm needs from the cluster plus the per-run
/// options, threaded as one context so the four `run` entry points share a
/// signature and every job they submit can attach the run's trace sink,
/// cancellation token and scheduling parameters.
pub(crate) struct AlgoCtx<'a> {
    /// The map-reduce engine executing the jobs.
    pub engine: &'a Engine,
    /// The grid partitioning of the space.
    pub grid: &'a Grid,
    /// Number of physical reducers (shuffle partitions).
    pub num_reducers: u32,
    /// Count output tuples instead of materializing them.
    pub count_only: bool,
    /// Per-run trace sink (disabled unless the caller attached one).
    pub trace: &'a TraceSink,
    /// Cooperative cancellation token threaded into every job of the run.
    pub cancel: CancelToken,
    /// Per-run metrics hub: this run's jobs deliver their metrics here
    /// instead of the engine-global vector, so concurrent runs on a shared
    /// cluster read exactly their own jobs.
    pub hub: MetricsHub,
    /// Slot-scheduler priority of this run's jobs.
    pub priority: i32,
    /// Slot-scheduler fair-share weight of this run's jobs.
    pub share: u32,
    /// Combined fingerprint of the datasets bound to the query positions
    /// (0 when the caller did not supply one).
    pub input_fingerprint: u64,
    /// Planner-chosen hypercube share vector (one share per relation
    /// position). `None` lets the hypercube algorithm derive shares from
    /// the relation sizes; ignored by the spatial algorithms.
    pub shares: Option<Vec<u32>>,
    /// DFS counters (read bytes, write bytes, transient failures) at
    /// submit time; [`AlgoCtx::report`] subtracts them so a run's report
    /// covers its own DFS traffic without resetting shared engine state.
    pub dfs_base: (u64, u64, u64),
}

impl AlgoCtx<'_> {
    /// A [`JobSpec`] pre-wired with this run's reducer count, trace sink,
    /// cancellation token, metrics hub, scheduling parameters and input
    /// fingerprint — every job an algorithm submits starts from this.
    pub fn spec(&self, name: impl Into<String>) -> JobSpec<Unset, Unset, Unset> {
        JobSpec::new(name)
            .reducers(self.num_reducers as usize)
            .trace(self.trace.clone())
            .cancel(self.cancel.clone())
            .collect_into(self.hub.clone())
            .priority(self.priority)
            .share(self.share)
            .input_fingerprint(self.input_fingerprint)
    }

    /// This run's metrics report: the hub's jobs plus the DFS counter
    /// deltas since submit. Exact for a solo run; under concurrent runs
    /// the DFS deltas are approximate (the byte counters are shared), but
    /// each run's per-job metrics are exactly its own.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            jobs: self.hub.snapshot(),
            dfs_read_bytes: self.engine.dfs.read_bytes().saturating_sub(self.dfs_base.0),
            dfs_write_bytes: self
                .engine
                .dfs
                .write_bytes()
                .saturating_sub(self.dfs_base.1),
            dfs_transient_read_failures: self
                .engine
                .dfs
                .transient_read_failures()
                .saturating_sub(self.dfs_base.2),
        }
    }
}

/// Which distributed algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Naive baseline (§6.1): evaluate the query as a cascade of 2-way
    /// joins, one map-reduce job per join, materializing every intermediate
    /// result on the DFS.
    TwoWayCascade,
    /// Naive baseline (§6.1): replicate every rectangle to all cells in its
    /// 4th quadrant and join in a single round.
    AllReplicate,
    /// The paper's *Controlled-Replicate* (§7): round 1 marks the
    /// rectangles satisfying conditions C1-C4; round 2 replicates only
    /// those and projects the rest.
    ControlledReplicate,
    /// *C-Rep-L* (§7.9): like C-Rep, but marked rectangles are replicated
    /// only to 4th-quadrant cells within a per-relation distance bound
    /// derived from the join graph.
    ControlledReplicateLimit,
    /// Shares-style hypercube join (Afrati/Ullman): the reducers form a
    /// hypercube with one dimension per relation *position*; each tuple is
    /// hashed on its own dimension and replicated along all unconstrained
    /// dimensions, so every candidate tuple meets at exactly one reducer.
    /// One round, predicate-agnostic, replication independent of the range
    /// distance `d`.
    Hypercube,
    /// Shuffle-free join over *stored* datasets: when every relation is
    /// pre-partitioned on the cluster grid by `mwsj ingest`, the join runs
    /// the local kernel directly over the per-cell stored R-trees — no
    /// map, sort, shuffle or merge phase at all. Only executable through
    /// [`Cluster::submit_stored`](crate::Cluster::submit_stored); it is
    /// not in [`Algorithm::ALL`] because it needs stored inputs.
    MapSide,
    /// Let the cost-based optimizer ([`crate::optimizer`]) pick one of the
    /// concrete algorithms from dataset statistics, sampled selectivities
    /// and the query's join graph.
    Auto,
}

impl Algorithm {
    /// All *concrete* algorithms, in the order the paper's tables list
    /// them (plus the hypercube join). `Auto` is a planner directive, not
    /// an executable algorithm, so it is not listed here.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::TwoWayCascade,
        Algorithm::AllReplicate,
        Algorithm::ControlledReplicate,
        Algorithm::ControlledReplicateLimit,
        Algorithm::Hypercube,
    ];

    /// Short display name used by the bench tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::TwoWayCascade => "2-way Cascade",
            Algorithm::AllReplicate => "All-Rep",
            Algorithm::ControlledReplicate => "C-Rep",
            Algorithm::ControlledReplicateLimit => "C-Rep-L",
            Algorithm::Hypercube => "Hypercube",
            Algorithm::MapSide => "Map-Side",
            Algorithm::Auto => "Auto",
        }
    }

    /// The wire name: the spelling the CLI, the server protocol and the
    /// result-cache keys use. Inverse of the [`std::str::FromStr`] impl.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            Algorithm::TwoWayCascade => "cascade",
            Algorithm::AllReplicate => "allrep",
            Algorithm::ControlledReplicate => "crep",
            Algorithm::ControlledReplicateLimit => "crep-l",
            Algorithm::Hypercube => "hypercube",
            Algorithm::MapSide => "map-side",
            Algorithm::Auto => "auto",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire_name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses an algorithm by its wire name (plus the historical aliases
    /// the CLI accepted).
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        Ok(match name {
            "cascade" => Algorithm::TwoWayCascade,
            "allrep" | "all-rep" => Algorithm::AllReplicate,
            "crep" | "c-rep" => Algorithm::ControlledReplicate,
            "crep-l" | "c-rep-l" | "crepl" => Algorithm::ControlledReplicateLimit,
            "hypercube" | "shares" => Algorithm::Hypercube,
            "map-side" | "mapside" => Algorithm::MapSide,
            "auto" => Algorithm::Auto,
            other => return Err(format!("unknown algorithm `{other}`")),
        })
    }
}

/// Flattens positional datasets into the tagged-rectangle records the map
/// phase consumes.
pub(crate) fn flatten_input(relations: &[&[Rect]]) -> Vec<TaggedRect> {
    let mut out = Vec::with_capacity(relations.iter().map(|r| r.len()).sum());
    for (pos, rel) in relations.iter().enumerate() {
        for (id, rect) in rel.iter().enumerate() {
            out.push(TaggedRect::new(RelationId(pos as u16), id as u32, *rect));
        }
    }
    out
}

/// Sorts and dedups output tuples into the canonical order. The duplicate
/// avoidance rules make duplicates impossible; normalizing keeps the
/// contract obvious and the comparison with the reference trivial.
pub(crate) fn normalize_tuples(mut tuples: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    tuples.sort();
    tuples.dedup();
    tuples
}

/// The designated-cell test shared by the single-round reducers: emit the
/// tuple only at the cell of the multi-way duplicate-avoidance point
/// (§6.2). Runs once per *candidate* tuple at every receiving reducer —
/// allocation-free (the extrema stream through
/// [`mwsj_local::dedup::multiway_tuple_cell_of`]).
pub(crate) fn is_designated_cell(
    grid: &mwsj_partition::Grid,
    cell: mwsj_partition::CellId,
    tuple: &[mwsj_local::LocalRect],
) -> bool {
    mwsj_local::dedup::multiway_tuple_cell_of(grid, tuple.iter().map(|(r, _)| r)) == cell
}

/// The ids of a tuple's members, in position order. The returned `Vec` is
/// the output record itself (only built for tuples that passed the
/// designated-cell filter), so this is the one allocation the materialized
/// path keeps.
pub(crate) fn tuple_ids(tuple: &[mwsj_local::LocalRect]) -> Vec<u32> {
    tuple.iter().map(|&(_, id)| id).collect()
}

/// Encodes a per-reducer output-tuple count as a job output record.
///
/// In count-only mode the reducers do not materialize tuples, but the
/// count must still travel through the engine's task-commit protocol:
/// anything tallied in shared state outside of it (e.g. an `AtomicU64`
/// bumped from the reduce closure) is double-counted by retried or
/// speculative task attempts whose output the engine discards. A count
/// record is attempt-local like any other output, so it commits exactly
/// once per task no matter how many attempts ran.
pub(crate) fn count_record(count: u64) -> Vec<u32> {
    vec![(count >> 32) as u32, count as u32]
}

/// Sums the [`count_record`]s committed by a count-only job.
pub(crate) fn sum_count_records(records: &[Vec<u32>]) -> u64 {
    records
        .iter()
        .map(|r| (u64::from(r[0]) << 32) | u64::from(r[1]))
        .sum()
}

/// Turns raw job output into the `(tuples, tuple_count)` pair of a
/// [`crate::JoinOutput`]: decodes [`count_record`]s in count-only mode,
/// normalizes real tuples otherwise. Both derive the count from
/// *committed* output, never from side effects of reduce attempts.
pub(crate) fn finish_tuples(raw: Vec<Vec<u32>>, count_only: bool) -> (Vec<Vec<u32>>, u64) {
    if count_only {
        (Vec::new(), sum_count_records(&raw))
    } else {
        let tuples = normalize_tuples(raw);
        let count = tuples.len() as u64;
        (tuples, count)
    }
}

/// The largest rectangle diagonal across all inputs — the `d_max` dataset
/// statistic the C-Rep-L bounds assume known (§7.9).
pub(crate) fn max_diagonal(relations: &[&[Rect]]) -> f64 {
    relations
        .iter()
        .flat_map(|rel| rel.iter())
        .map(Rect::diagonal)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_tags_positions_and_ids() {
        let a = vec![Rect::new(0.0, 1.0, 1.0, 1.0)];
        let b = vec![Rect::new(2.0, 1.0, 1.0, 1.0), Rect::new(3.0, 1.0, 1.0, 1.0)];
        let flat = flatten_input(&[&a, &b]);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].relation, RelationId(0));
        assert_eq!(flat[2].relation, RelationId(1));
        assert_eq!(flat[2].id, 1);
    }

    #[test]
    fn max_diagonal_over_relations() {
        let a = vec![Rect::new(0.0, 10.0, 3.0, 4.0)];
        let b = vec![Rect::new(0.0, 10.0, 6.0, 8.0)];
        assert_eq!(max_diagonal(&[&a, &b]), 10.0);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::ControlledReplicate.name(), "C-Rep");
        assert_eq!(Algorithm::ALL.len(), 5);
        assert!(!Algorithm::ALL.contains(&Algorithm::Auto));
        // Map-side needs stored inputs, so it is not a shuffle candidate.
        assert!(!Algorithm::ALL.contains(&Algorithm::MapSide));
    }

    #[test]
    fn wire_names_round_trip() {
        for alg in Algorithm::ALL
            .into_iter()
            .chain([Algorithm::MapSide, Algorithm::Auto])
        {
            assert_eq!(alg.to_string().parse::<Algorithm>(), Ok(alg));
        }
        assert_eq!("shares".parse::<Algorithm>(), Ok(Algorithm::Hypercube));
        assert_eq!(
            "c-rep-l".parse::<Algorithm>(),
            Ok(Algorithm::ControlledReplicateLimit)
        );
        assert!("mystery".parse::<Algorithm>().is_err());
    }
}
