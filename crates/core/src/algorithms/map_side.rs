//! The shuffle-free map-side join over stored datasets.
//!
//! When every relation was ingested with the *same* grid the cluster
//! partitions on, the expensive half of every shuffle algorithm — map,
//! sort, shuffle, merge — is already done and sitting on disk: each cell
//! holds an STR-packed R-tree over exactly the rectangles homed there.
//! This module joins directly over those trees with the precompiled
//! [`JoinKernel`], one logical task per grid cell, no engine job at all.
//!
//! # Exactly-once enumeration
//!
//! The shuffle algorithms replicate rectangles so every candidate tuple
//! *meets* somewhere, then keep one copy via the designated-cell rule.
//! Stored datasets need neither: each rectangle is stored exactly once at
//! its home cell, so the join picks one *start* relation (the smallest)
//! and, per cell, seeds the kernel with the start rectangles homed there.
//! The other relations are probed through the whole forest of per-cell
//! trees (each tree's root MBR prunes non-overlapping cells in one
//! comparison). Every output tuple contains exactly one start-relation
//! member, which is homed at exactly one cell — so every tuple is
//! enumerated exactly once globally, with no duplicate filtering.
//!
//! The designated-cell rule still matters for *accounting*: tuples are
//! attributed to their §6.2 duplicate-avoidance cell, so the per-cell
//! logical counters (groups, max partition load) mean the same thing they
//! mean for the shuffle algorithms and the equivalence goldens can pin
//! them byte-for-byte.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mwsj_local::dedup::multiway_tuple_cell_of;
use mwsj_local::{JoinKernel, LocalRect};
use mwsj_mapreduce::{JobError, JobErrorKind, JobMetrics, Phase};
use mwsj_query::Query;
use mwsj_store::StoredDataset;

use super::{normalize_tuples, tuple_ids, AlgoCtx, Algorithm};
use crate::{JoinError, JoinOutput, ReplicationStats};

/// The raw output of one (possibly range-scoped) map-side execution:
/// unnormalized tuples, the per-designated-cell tally, and the join
/// wall time. [`run`] finalizes these into a [`JoinOutput`]; sharded
/// serving gathers several of them first (see [`crate::shards`]).
pub(crate) struct Partial {
    pub tuples: Vec<Vec<u32>>,
    pub tally: Vec<u64>,
    pub join_wall: Duration,
}

/// Runs the map-side kernel, seeding only from cells in `seed_range`
/// (`None` seeds from every cell). Probes always traverse the whole
/// forest — the scope restricts which tuples are *enumerated*, not
/// which rectangles participate, so disjoint seed ranges partition the
/// output exactly.
pub(crate) fn execute(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    stores: &[&StoredDataset],
    seed_range: Option<std::ops::Range<u32>>,
) -> Result<Partial, JoinError> {
    let grid = ctx.grid;
    let num_cells = grid.num_cells() as usize;
    let count_only = ctx.count_only;

    // The start relation: smallest cardinality, first on a tie. Every
    // tuple has exactly one member from it, so seeding from it enumerates
    // each tuple exactly once; picking the smallest minimizes seed count.
    let start = stores
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.record_count())
        .map(|(i, _)| i)
        .expect("queries bind at least one relation");

    // Validate every cell tree once up front; probes borrow these views.
    let forests: Vec<Vec<mwsj_rtree::PackedRTree<'_>>> = stores
        .iter()
        .map(|s| grid.cells().map(|c| s.cell_tree(c)).collect())
        .collect();

    // Per-relation reach: a stored rectangle's body extends right by at
    // most `max_l` and down by at most `max_b` from its home (start)
    // point. A probe therefore only needs the cell trees whose cells can
    // contain the home point of a qualifying rectangle — a handful of
    // cells instead of the whole forest (the dominant cost at scale).
    let reach: Vec<(f64, f64)> = stores
        .iter()
        .map(|s| {
            s.iter().fold((0.0f64, 0.0f64), |(l, b), (r, _)| {
                (l.max(r.l()), b.max(r.b()))
            })
        })
        .collect();
    let (x0, xn) = grid.x_range();
    let (y0, yn) = grid.y_range();
    let (cols, rows) = (grid.cols(), grid.rows());

    // Flat per-relation root MBRs (corner coordinates), `None` for empty
    // cells: probing checks these inline with the exact arithmetic of the
    // tree's own root prune, so most trees in the candidate cell span are
    // rejected without a traversal call at all.
    type RootMbrs = Vec<Vec<Option<(f64, f64, f64, f64)>>>;
    let mbrs: RootMbrs = forests
        .iter()
        .map(|trees| {
            trees
                .iter()
                .map(|t| {
                    t.root_mbr()
                        .map(|m| (m.min_x(), m.min_y(), m.max_x(), m.max_y()))
                })
                .collect()
        })
        .collect();

    let kernel = JoinKernel::new(query);
    let in_scope = |c: usize| {
        seed_range
            .as_ref()
            .is_none_or(|r| (c as u64) >= u64::from(r.start) && (c as u64) < u64::from(r.end))
    };
    let cells: Vec<usize> = (0..num_cells)
        .filter(|&c| in_scope(c) && !forests[start][c].is_empty())
        .collect();
    let workers = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(cells.len().max(1));

    let join_started = Instant::now();
    let next = AtomicUsize::new(0);
    let mut tuples: Vec<Vec<u32>> = Vec::new();
    let mut tally: Vec<u64> = vec![0; num_cells];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let forests = &forests;
                let reach = &reach;
                let mbrs = &mbrs;
                let kernel = &kernel;
                let cells = &cells;
                let next = &next;
                scope.spawn(move || {
                    let mut out: Vec<Vec<u32>> = Vec::new();
                    let mut tally: Vec<u64> = vec![0; num_cells];
                    let mut stack: Vec<u32> = Vec::new();
                    let mut seeds: Vec<LocalRect> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&cell) = cells.get(i) else { break };
                        if ctx.cancel.is_cancelled() {
                            break;
                        }
                        seeds.clear();
                        seeds.extend(forests[start][cell].iter());
                        kernel.execute_seeded(
                            start,
                            &seeds,
                            |w, rect, d, acc| {
                                // Home points of rectangles within d of the
                                // probe lie in the probe window grown by d,
                                // plus the relation's reach to the left/top
                                // (bodies extend right/down from the home
                                // point). Widened by one cell to absorb
                                // floating-point rounding; each tree's root
                                // MBR check exactly re-filters.
                                let (max_l, max_b) = reach[w];
                                let c0 = grid
                                    .col_of_x((rect.min_x() - d - max_l).clamp(x0, xn))
                                    .saturating_sub(1);
                                let c1 = (grid.col_of_x((rect.max_x() + d).clamp(x0, xn)) + 1)
                                    .min(cols - 1);
                                let r0 = grid
                                    .row_of_y((rect.max_y() + d + max_b).clamp(y0, yn))
                                    .saturating_sub(1);
                                let r1 = (grid.row_of_y((rect.min_y() - d).clamp(y0, yn)) + 1)
                                    .min(rows - 1);
                                let (p_min_x, p_min_y, p_max_x, p_max_y) =
                                    (rect.min_x(), rect.min_y(), rect.max_x(), rect.max_y());
                                for row in r0..=r1 {
                                    for col in c0..=c1 {
                                        let idx = (row * cols + col) as usize;
                                        let Some((mn_x, mn_y, mx_x, mx_y)) = mbrs[w][idx] else {
                                            continue;
                                        };
                                        // The tree's own root prune, inlined.
                                        let hit = if d == 0.0 {
                                            mn_x <= p_max_x
                                                && p_min_x <= mx_x
                                                && mn_y <= p_max_y
                                                && p_min_y <= mx_y
                                        } else {
                                            let dx = (p_min_x - mx_x).max(mn_x - p_max_x).max(0.0);
                                            let dy = (p_min_y - mx_y).max(mn_y - p_max_y).max(0.0);
                                            dx * dx + dy * dy <= d * d
                                        };
                                        if !hit {
                                            continue;
                                        }
                                        forests[w][idx].query_within_scratch(
                                            rect,
                                            d,
                                            &mut stack,
                                            |r, id| acc.push((r, id)),
                                        );
                                    }
                                }
                            },
                            |tuple| {
                                let dc = multiway_tuple_cell_of(grid, tuple.iter().map(|(r, _)| r));
                                tally[dc.0 as usize] += 1;
                                if !count_only {
                                    out.push(tuple_ids(tuple));
                                }
                            },
                        );
                    }
                    (out, tally)
                })
            })
            .collect();
        for h in handles {
            let (out, t) = h.join().expect("map-side worker panicked");
            tuples.extend(out);
            for (total, part) in tally.iter_mut().zip(t) {
                *total += part;
            }
        }
    });
    let join_wall = join_started.elapsed();

    if ctx.cancel.is_cancelled() {
        return Err(cancelled_error(&ctx.cancel));
    }

    Ok(Partial {
        tuples,
        tally,
        join_wall,
    })
}

/// The typed cancellation error every map-side path reports.
pub(crate) fn cancelled_error(cancel: &mwsj_mapreduce::CancelToken) -> JoinError {
    JoinError::Job(JobError {
        job: "map-side".to_string(),
        phase: Phase::Reduce,
        task: 0,
        attempts: 1,
        kind: JobErrorKind::Cancelled {
            deadline_exceeded: cancel.cancelled_by_deadline(),
        },
    })
}

pub(crate) fn run(
    ctx: &AlgoCtx<'_>,
    query: &Query,
    stores: &[&StoredDataset],
    open_wall: Duration,
) -> Result<JoinOutput, JoinError> {
    let Partial {
        tuples,
        tally,
        join_wall,
    } = execute(ctx, query, stores, None)?;
    let count_only = ctx.count_only;

    let tuple_count: u64 = tally.iter().sum();
    let groups = tally.iter().filter(|&&t| t > 0).count() as u64;
    // Synthetic job metrics: no engine job ran, but the run still reports
    // the counters the shuffle algorithms report — all communication
    // counters are genuinely zero, and the index-open cost is surfaced so
    // "shuffle-free" wall time accounts for everything the run did.
    ctx.hub.push(JobMetrics {
        job_name: "map-side".to_string(),
        map_input_records: stores.iter().map(|s| s.record_count()).sum(),
        reduce_input_groups: groups,
        max_partition_records: tally.iter().copied().max().unwrap_or(0),
        // Mirrors count-record semantics: one committed record per
        // designated cell with output in count-only mode, else the tuples.
        reduce_output_records: if count_only { groups } else { tuple_count },
        reduce_wall: join_wall,
        total_wall: open_wall + join_wall,
        index_open_wall: open_wall,
        input_fingerprint: ctx.input_fingerprint,
        ..JobMetrics::default()
    });

    let tuples = if count_only {
        Vec::new()
    } else {
        normalize_tuples(tuples)
    };
    Ok(JoinOutput {
        algorithm: Algorithm::MapSide,
        tuples,
        tuple_count,
        stats: ReplicationStats::default(),
        report: ctx.report(),
    })
}
