//! Multi-way spatial joins on a (simulated) map-reduce cluster — a
//! from-scratch reproduction of *Processing Multi-Way Spatial Joins on
//! Map-Reduce* (Gupta et al., EDBT 2013).
//!
//! The crate distributes a multi-way spatial join query (conjunctions of
//! `Overlap` and `Range(d)` predicates over rectangle relations) across a
//! grid of reducers and implements all four algorithms the paper studies,
//! plus a Shares-style hypercube join and a cost-based optimizer:
//!
//! * [`Algorithm::TwoWayCascade`] — the naive cascade of 2-way joins (§6);
//! * [`Algorithm::AllReplicate`] — the naive single-round 4th-quadrant
//!   replication (§6);
//! * [`Algorithm::ControlledReplicate`] — the paper's contribution: a
//!   two-round framework that replicates only rectangles satisfying the
//!   C1-C4 conditions (§7, §8, §9);
//! * [`Algorithm::ControlledReplicateLimit`] — *C-Rep-L*, which further
//!   limits how far marked rectangles travel using per-relation distance
//!   bounds derived from the join graph (§7.9);
//! * [`Algorithm::Hypercube`] — the Shares-style hypercube join: a
//!   reducer grid over per-relation *shares* instead of space;
//! * [`Algorithm::Auto`] (the default) — the [`optimizer`] picks among
//!   the above from sampled dataset statistics.
//!
//! # Quickstart
//!
//! ```
//! use mwsj_core::{Algorithm, Cluster, ClusterConfig};
//! use mwsj_geom::Rect;
//! use mwsj_query::Query;
//!
//! // Three tiny relations in a [0, 100]^2 space.
//! let r1 = vec![Rect::new(10.0, 90.0, 5.0, 5.0)];
//! let r2 = vec![Rect::new(12.0, 88.0, 5.0, 5.0)];
//! let r3 = vec![Rect::new(14.0, 86.0, 5.0, 5.0)];
//!
//! let query = Query::parse("R1 overlaps R2 and R2 overlaps R3").unwrap();
//! let cluster = Cluster::new(ClusterConfig::for_space((0.0, 100.0), (0.0, 100.0), 4));
//! let output = cluster.run(&query, &[&r1, &r2, &r3], Algorithm::Auto);
//! assert_eq!(output.tuples, vec![vec![0, 0, 0]]);
//! assert_ne!(output.algorithm, Algorithm::Auto); // the optimizer's pick
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod ann;
mod cluster;
mod error;
pub mod optimizer;
pub mod planner;
mod record;
pub mod reference;
pub mod refine;
mod result;
mod run_config;
pub mod shards;

pub use algorithms::Algorithm;
pub use cluster::{Cluster, ClusterConfig};
pub use error::JoinError;
pub use record::TaggedRect;
pub use result::{JoinOutput, ReplicationStats};
pub use run_config::{JoinRun, StoredRun};

// Re-export the building blocks a downstream user needs alongside the core
// API, so `mwsj-core` is usable as a single dependency.
pub use mwsj_geom as geom;
pub use mwsj_local as local;
pub use mwsj_mapreduce as mapreduce;
pub use mwsj_partition as partition;
pub use mwsj_query as query;
pub use mwsj_rtree as rtree;
pub use mwsj_store as store;
