use mwsj_mapreduce::{DfsError, JobError};

/// A distributed join run that failed.
///
/// The join algorithms drive the engine through its fallible
/// [`run`](mwsj_mapreduce::Engine::run) path, so a task exhausting its
/// attempt budget (or a DFS dataset staying unreadable between rounds)
/// surfaces here instead of aborting the process.
/// [`Cluster::run`](crate::Cluster::run) panics on these;
/// [`Cluster::submit`](crate::Cluster::submit) returns them.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// A map-reduce job failed: the error names the job, phase, task and
    /// attempt count.
    Job(JobError),
    /// An intermediate dataset could not be read back from the DFS between
    /// rounds.
    Dfs(DfsError),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Job(e) => e.fmt(f),
            JoinError::Dfs(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Job(e) => Some(e),
            JoinError::Dfs(e) => Some(e),
        }
    }
}

impl From<JobError> for JoinError {
    fn from(e: JobError) -> Self {
        JoinError::Job(e)
    }
}

impl From<DfsError> for JoinError {
    fn from(e: DfsError) -> Self {
        JoinError::Dfs(e)
    }
}
