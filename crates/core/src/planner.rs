//! Join-order planning for the 2-way cascade.
//!
//! §6.1's footnote assumes the cascade evaluates join conditions "in the
//! optimal order" without saying how to find it. This module provides a
//! classic sampling-based greedy planner: pairwise predicate selectivities
//! are estimated on small uniform samples, then conditions are ordered so
//! the estimated intermediate result stays minimal — start with the most
//! selective condition, repeatedly append the connected condition whose
//! estimated growth factor is smallest.
//!
//! Reordering conjuncts never changes the query's semantics (the result is
//! the same set of tuples), only the cascade's intermediate sizes.

use mwsj_geom::Rect;
use mwsj_query::{Query, Triple};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Default number of rectangles sampled per relation for estimation.
pub const DEFAULT_SAMPLE: usize = 200;

/// Draws a seeded uniform sample of up to `sample_size` rectangles from
/// each relation — shared by the cascade-order planner and the cost-based
/// optimizer ([`crate::optimizer`]), so both see the same statistics for
/// the same seed.
pub(crate) fn sample_relations(
    relations: &[&[Rect]],
    sample_size: usize,
    seed: u64,
) -> Vec<Vec<Rect>> {
    let mut rng = StdRng::seed_from_u64(seed);
    relations
        .iter()
        .map(|rel| {
            let mut idx: Vec<usize> = (0..rel.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(sample_size);
            idx.into_iter().map(|i| rel[i]).collect()
        })
        .collect()
}

/// Estimates the selectivity of one triple on samples of its two
/// relations: the fraction of sampled pairs satisfying the predicate.
pub(crate) fn estimate_selectivity(t: &Triple, samples: &[Vec<Rect>]) -> f64 {
    let left = &samples[t.left.index()];
    let right = &samples[t.right.index()];
    if left.is_empty() || right.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for a in left {
        for b in right {
            if t.predicate.eval(a, b) {
                hits += 1;
            }
        }
    }
    hits as f64 / (left.len() * right.len()) as f64
}

/// Returns a query with the same conditions reordered for the cascade:
/// greedy smallest-estimated-intermediate-first, keeping every prefix
/// connected (the cascade requires each step to touch a bound relation).
///
/// `relations[i]` is the dataset bound to position `i`; selectivities are
/// estimated on a seeded uniform sample of `sample_size` rectangles per
/// relation.
///
/// ```
/// use mwsj_core::planner::optimize_cascade_order;
/// use mwsj_geom::Rect;
/// use mwsj_query::Query;
///
/// let q = Query::parse("A ov B and B ov C").unwrap();
/// let a = vec![Rect::new(0.0, 10.0, 5.0, 5.0)];
/// let b = vec![Rect::new(4.0, 10.0, 5.0, 5.0)];
/// let c = vec![Rect::new(8.0, 10.0, 5.0, 5.0)];
/// let planned = optimize_cascade_order(&q, &[&a, &b, &c], 10, 7);
/// assert_eq!(planned.triples().len(), q.triples().len());
/// ```
#[must_use]
pub fn optimize_cascade_order(
    query: &Query,
    relations: &[&[Rect]],
    sample_size: usize,
    seed: u64,
) -> Query {
    assert_eq!(relations.len(), query.num_relations());
    let samples = sample_relations(relations, sample_size, seed);
    order_greedily(query, relations, |t| estimate_selectivity(t, &samples))
}

/// Like [`optimize_cascade_order`], but estimating selectivities from
/// [`mwsj_query::GridHistogram`] statistics instead of samples — the
/// catalog-statistics flavor: the histograms can be built once per dataset
/// and reused across queries.
#[must_use]
pub fn optimize_cascade_order_with_histograms(
    query: &Query,
    relations: &[&[Rect]],
    x_range: (f64, f64),
    y_range: (f64, f64),
    buckets: usize,
) -> Query {
    assert_eq!(relations.len(), query.num_relations());
    let hists: Vec<mwsj_query::GridHistogram> = relations
        .iter()
        .map(|rel| mwsj_query::GridHistogram::build(rel, x_range, y_range, buckets, buckets))
        .collect();
    order_greedily(query, relations, |t| {
        let (l, r) = (t.left.index(), t.right.index());
        let card = (relations[l].len() * relations[r].len()) as f64;
        if card == 0.0 {
            return 0.0;
        }
        // Contains implies overlap: the d = 0 estimate is its upper bound.
        hists[l].estimate_join(&hists[r], t.predicate.distance()) / card
    })
}

/// The shared greedy: order conditions smallest-estimated-growth-first,
/// keeping every prefix connected.
fn order_greedily(
    query: &Query,
    relations: &[&[Rect]],
    selectivity: impl Fn(&Triple) -> f64,
) -> Query {
    // Estimated output cardinality of each condition alone.
    let mut remaining: Vec<(Triple, f64)> = query
        .triples()
        .iter()
        .map(|t| {
            let sel = selectivity(t);
            let card = sel
                * relations[t.left.index()].len() as f64
                * relations[t.right.index()].len() as f64;
            (*t, card)
        })
        .collect();

    let mut ordered: Vec<Triple> = Vec::with_capacity(remaining.len());
    let mut bound = vec![false; query.num_relations()];
    while !remaining.is_empty() {
        let pick = if ordered.is_empty() {
            // Cheapest standalone join first.
            remaining
                .iter()
                .enumerate()
                .min_by(|(_, (_, a)), (_, (_, b))| a.partial_cmp(b).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        } else {
            // Among the conditions touching the bound set, pick the one
            // with the smallest growth: both-bound filters (growth <= 1)
            // first, then the smallest selectivity x new-relation-size.
            remaining
                .iter()
                .enumerate()
                .filter(|(_, (t, _))| bound[t.left.index()] || bound[t.right.index()])
                .min_by(|(_, (t1, _)), (_, (t2, _))| {
                    let growth = |t: &Triple| {
                        let both = bound[t.left.index()] && bound[t.right.index()];
                        if both {
                            // A filter can only shrink the intermediate.
                            0.0
                        } else {
                            let new = if bound[t.left.index()] {
                                t.right
                            } else {
                                t.left
                            };
                            selectivity(t) * relations[new.index()].len() as f64
                        }
                    };
                    growth(t1).partial_cmp(&growth(t2)).expect("finite")
                })
                .map(|(i, _)| i)
                .expect("connected query graph")
        };
        let (t, _) = remaining.remove(pick);
        bound[t.left.index()] = true;
        bound[t.right.index()] = true;
        ordered.push(t);
    }

    // Rebuild the query with the conditions in the new order. Declaring
    // every relation first pins the original position numbering, so the
    // caller's positional dataset bindings stay valid.
    let mut builder = Query::builder();
    for r in query.relations() {
        builder = builder.declare(query.name(r));
    }
    for t in &ordered {
        builder = builder.condition(t.predicate, query.name(t.left), query.name(t.right));
    }
    builder
        .build()
        .expect("reordering a valid query keeps it valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::Rng;

    fn relation(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1000.0 - side);
                let y = rng.random_range(side..1000.0);
                Rect::new(
                    x,
                    y,
                    rng.random_range(0.0..side),
                    rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn reordering_preserves_semantics() {
        let q = Query::parse("A ov B and B ra(30) C and C ov D").unwrap();
        let a = relation(60, 1, 40.0);
        let b = relation(60, 2, 40.0);
        let c = relation(60, 3, 40.0);
        let d = relation(60, 4, 40.0);
        let planned = optimize_cascade_order(&q, &[&a, &b, &c, &d], 30, 9);
        assert_eq!(planned.triples().len(), 3);
        // Same relation names in the same positions.
        for i in 0..4u16 {
            assert_eq!(
                planned.name(mwsj_query::RelationId(i)),
                q.name(mwsj_query::RelationId(i))
            );
        }
        assert_eq!(
            reference::in_memory_join(&planned, &[&a, &b, &c, &d]),
            reference::in_memory_join(&q, &[&a, &b, &c, &d])
        );
    }

    #[test]
    fn planner_starts_with_the_most_selective_condition() {
        // B-C barely joins (tiny rectangles far apart classes); A-B joins a
        // lot (big rectangles). The planner must start with B-C.
        let a = relation(80, 11, 120.0);
        let b = relation(80, 12, 120.0);
        let c = vec![Rect::new(0.5, 1.0, 0.2, 0.2); 80]; // far corner, tiny
        let q = Query::parse("A ov B and B ov C").unwrap();
        let planned = optimize_cascade_order(&q, &[&a, &b, &c], 60, 5);
        let first = planned.triples()[0];
        assert_eq!(
            (planned.name(first.left), planned.name(first.right)),
            ("B", "C"),
            "planned order: {planned}"
        );
    }

    #[test]
    fn histogram_planner_agrees_on_the_selective_start() {
        let a = relation(80, 11, 120.0);
        let b = relation(80, 12, 120.0);
        let c = vec![Rect::new(0.5, 1.0, 0.2, 0.2); 80];
        let q = Query::parse("A ov B and B ov C").unwrap();
        let planned = optimize_cascade_order_with_histograms(
            &q,
            &[&a, &b, &c],
            (0.0, 1000.0),
            (0.0, 1000.0),
            16,
        );
        let first = planned.triples()[0];
        assert_eq!(
            (planned.name(first.left), planned.name(first.right)),
            ("B", "C"),
            "planned order: {planned}"
        );
        // And reordering preserves semantics here too.
        assert_eq!(
            reference::in_memory_join(&planned, &[&a, &b, &c]),
            reference::in_memory_join(&q, &[&a, &b, &c])
        );
    }

    #[test]
    fn sample_larger_than_relation_is_fine() {
        let q = Query::parse("A ov B").unwrap();
        let a = relation(5, 21, 40.0);
        let b = relation(5, 22, 40.0);
        let planned = optimize_cascade_order(&q, &[&a, &b], 1_000, 1);
        assert_eq!(planned.triples().len(), 1);
    }
}
