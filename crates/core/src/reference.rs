//! In-memory reference implementation: the ground truth every distributed
//! algorithm must reproduce.
//!
//! [`in_memory_join`] runs the (well-tested) local multi-way matcher over
//! the *entire* datasets with no partitioning, no shuffle and no duplicate
//! avoidance — a single-machine oracle. The test suites assert that 2-way
//! Cascade, All-Replicate, C-Rep and C-Rep-L all return exactly this
//! result.
//!
//! Deliberately runs the *naive* recursive matcher, not the precompiled
//! kernel the distributed reducers use: the oracle and the implementation
//! under test share no execution path beyond the R-tree.

use mwsj_geom::Rect;
use mwsj_local::multiway;
use mwsj_query::Query;

/// Computes the full join result in memory. Output tuples are sorted and
/// duplicate-free, matching the [`crate::JoinOutput::tuples`] convention.
#[must_use]
pub fn in_memory_join(query: &Query, relations: &[&[Rect]]) -> Vec<Vec<u32>> {
    let local: Vec<Vec<mwsj_local::LocalRect>> = relations
        .iter()
        .map(|rel| {
            rel.iter()
                .enumerate()
                .map(|(i, r)| (*r, i as u32))
                .collect()
        })
        .collect();
    multiway::normalized(multiway::multiway_join_ids_naive(query, &local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain() {
        let q = Query::parse("a ov b and b ov c").unwrap();
        let a = vec![Rect::new(0.0, 10.0, 5.0, 5.0)];
        let b = vec![
            Rect::new(4.0, 10.0, 5.0, 5.0),
            Rect::new(50.0, 10.0, 5.0, 5.0),
        ];
        let c = vec![Rect::new(8.0, 10.0, 5.0, 5.0)];
        assert_eq!(in_memory_join(&q, &[&a, &b, &c]), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn self_join_positions_share_data() {
        let q = Query::parse("a ov b").unwrap();
        let r = vec![
            Rect::new(0.0, 10.0, 5.0, 5.0),
            Rect::new(4.0, 10.0, 5.0, 5.0),
        ];
        let got = in_memory_join(&q, &[&r, &r]);
        // Both orders and both self-pairs.
        assert_eq!(got, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }
}
