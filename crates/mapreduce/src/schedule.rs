//! Fair-share slot scheduling and cooperative cancellation.
//!
//! Up to this layer the engine let one job own every worker thread; the
//! serving path multiplexes many concurrent [`Engine::run`] calls over one
//! engine, so task execution is now gated by a fixed pool of *slots* (the
//! analogue of Hadoop's map/reduce slots). A [`SlotScheduler`] hands slots
//! to the registered job that is furthest below its fair share — highest
//! priority first, then smallest `in_use / share` ratio — so a high-share
//! job gets proportionally more concurrent tasks without starving the
//! others.
//!
//! [`CancelToken`] is the cooperative cancellation handle threaded through
//! the map/shuffle/reduce task loops: a cancelled (or past-deadline) job
//! stops claiming tasks, is never retried, and releases its slots within
//! one task granularity.
//!
//! [`Engine::run`]: crate::engine::Engine::run

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cooperative cancellation handle shared between a job's submitter and the
/// engine's task loops.
///
/// Cloning is cheap (an [`Arc`]); all clones observe the same state. A job
/// is considered cancelled once [`CancelToken::cancel`] has been called *or*
/// its deadline (if any) has passed — both latch: once observed cancelled, a
/// token stays cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    has_deadline: AtomicBool,
    deadline_hit: AtomicBool,
    deadline: parking_lot::Mutex<Option<Instant>>,
}

impl CancelToken {
    /// Creates a token that is not cancelled and has no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels the job(s) observing this token. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Relaxed);
    }

    /// Sets (or tightens) an absolute deadline; the token reports cancelled
    /// once `Instant::now()` reaches it. A later deadline never loosens an
    /// earlier one.
    pub fn set_deadline(&self, deadline: Instant) {
        let mut slot = self.inner.deadline.lock();
        match *slot {
            Some(existing) if existing <= deadline => {}
            _ => *slot = Some(deadline),
        }
        self.inner.has_deadline.store(true, Relaxed);
    }

    /// Sets a deadline `timeout` from now — see [`CancelToken::set_deadline`].
    pub fn deadline_in(&self, timeout: Duration) {
        self.set_deadline(Instant::now() + timeout);
    }

    /// Whether the token has been cancelled explicitly or by deadline.
    /// Latching: once this returns `true` it always will.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Relaxed) || self.inner.deadline_hit.load(Relaxed) {
            return true;
        }
        if !self.inner.has_deadline.load(Relaxed) {
            return false;
        }
        let hit = self
            .inner
            .deadline
            .lock()
            .is_some_and(|d| Instant::now() >= d);
        if hit {
            self.inner.deadline_hit.store(true, Relaxed);
        }
        hit
    }

    /// Whether cancellation was triggered by the deadline (as opposed to an
    /// explicit [`CancelToken::cancel`] call). Meaningful after
    /// [`CancelToken::is_cancelled`] has returned `true`.
    #[must_use]
    pub fn cancelled_by_deadline(&self) -> bool {
        self.inner.deadline_hit.load(Relaxed) && !self.inner.cancelled.load(Relaxed)
    }
}

/// A fixed pool of task slots shared by every job an engine runs, handed
/// out fair-share style.
///
/// Jobs [`register`](SlotScheduler::register) with a priority and a share,
/// then [`acquire`](SlotScheduler::acquire) one slot per concurrently
/// running task and [`release`](SlotScheduler::release) it when the task
/// (including all its retries and speculative duplicates) finishes. When a
/// slot frees up it goes to the waiting job with the highest priority;
/// among equal priorities, to the job with the smallest weighted usage
/// `in_use / share` (compared exactly by cross-multiplication), with
/// registration order as the final tie-break.
#[derive(Debug)]
pub struct SlotScheduler {
    slots: usize,
    state: Mutex<SchedState>,
    freed: Condvar,
}

#[derive(Debug, Default)]
struct SchedState {
    in_use_total: usize,
    next_seq: u64,
    jobs: HashMap<u64, JobSlotState>,
}

#[derive(Debug)]
struct JobSlotState {
    priority: i32,
    share: u32,
    in_use: usize,
    waiting: usize,
    seq: u64,
}

impl SlotScheduler {
    /// Creates a scheduler with `slots` task slots.
    ///
    /// # Panics
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "scheduler needs at least one slot");
        Self {
            slots,
            state: Mutex::new(SchedState::default()),
            freed: Condvar::new(),
        }
    }

    /// Total number of slots in the pool.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots currently free (not held by any job).
    #[must_use]
    pub fn available(&self) -> usize {
        self.slots - self.state.lock().unwrap().in_use_total
    }

    /// Registers a job with the scheduler. The returned guard unregisters
    /// the job on drop; every `acquire` must be matched by a `release`
    /// before the guard drops.
    ///
    /// `share` is clamped to at least 1.
    #[must_use]
    pub fn register(&self, job: u64, priority: i32, share: u32) -> JobRegistration<'_> {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.jobs.insert(
            job,
            JobSlotState {
                priority,
                share: share.max(1),
                in_use: 0,
                waiting: 0,
                seq,
            },
        );
        JobRegistration { sched: self, job }
    }

    /// Blocks until the calling job is entitled to a free slot, takes it,
    /// and returns how long the call waited (the task's queue wait).
    ///
    /// # Panics
    /// Panics if `job` is not registered.
    pub fn acquire(&self, job: u64) -> Duration {
        let start = Instant::now();
        let mut st = self.state.lock().unwrap();
        st.jobs
            .get_mut(&job)
            .expect("acquire on an unregistered job")
            .waiting += 1;
        loop {
            if st.in_use_total < self.slots && Self::next_job(&st) == Some(job) {
                let j = st.jobs.get_mut(&job).unwrap();
                j.waiting -= 1;
                j.in_use += 1;
                st.in_use_total += 1;
                // Another slot may still be free for a different waiter.
                self.freed.notify_all();
                return start.elapsed();
            }
            st = self.freed.wait(st).unwrap();
        }
    }

    /// Returns a slot taken by [`SlotScheduler::acquire`].
    ///
    /// # Panics
    /// Panics if `job` is not registered or holds no slot.
    pub fn release(&self, job: u64) {
        let mut st = self.state.lock().unwrap();
        let j = st
            .jobs
            .get_mut(&job)
            .expect("release on an unregistered job");
        assert!(j.in_use > 0, "release without a matching acquire");
        j.in_use -= 1;
        st.in_use_total -= 1;
        self.freed.notify_all();
    }

    /// The waiting job next in line for a slot, if any.
    fn next_job(st: &SchedState) -> Option<u64> {
        st.jobs
            .iter()
            .filter(|(_, j)| j.waiting > 0)
            .min_by(|(_, a), (_, b)| {
                // Highest priority first; then lowest weighted usage
                // (a.in_use / a.share < b.in_use / b.share, cross-multiplied
                // to stay exact in integers); then registration order.
                b.priority
                    .cmp(&a.priority)
                    .then_with(|| {
                        let au = a.in_use as u64 * u64::from(b.share);
                        let bu = b.in_use as u64 * u64::from(a.share);
                        au.cmp(&bu)
                    })
                    .then_with(|| a.seq.cmp(&b.seq))
            })
            .map(|(id, _)| *id)
    }

    fn unregister(&self, job: u64) {
        let mut st = self.state.lock().unwrap();
        if let Some(j) = st.jobs.remove(&job) {
            debug_assert_eq!(j.in_use, 0, "job unregistered while holding slots");
            debug_assert_eq!(j.waiting, 0, "job unregistered while waiting");
        }
        // A departing job changes who is next in line.
        self.freed.notify_all();
    }
}

/// Guard returned by [`SlotScheduler::register`]; unregisters the job on
/// drop.
#[derive(Debug)]
pub struct JobRegistration<'a> {
    sched: &'a SlotScheduler,
    job: u64,
}

impl Drop for JobRegistration<'_> {
    fn drop(&mut self) {
        self.sched.unregister(self.job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cancel_latches_and_reports_source() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.cancelled_by_deadline());
        let clone = t.clone();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_trips_token() {
        let t = CancelToken::new();
        t.deadline_in(Duration::from_millis(5));
        assert!(!t.cancelled_by_deadline());
        while !t.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.cancelled_by_deadline());
    }

    #[test]
    fn tighter_deadline_wins() {
        let t = CancelToken::new();
        t.deadline_in(Duration::from_millis(2));
        t.deadline_in(Duration::from_secs(3600)); // must not loosen
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
    }

    #[test]
    fn solo_job_never_waits() {
        let s = SlotScheduler::new(2);
        let _reg = s.register(1, 0, 1);
        let w1 = s.acquire(1);
        let w2 = s.acquire(1);
        assert_eq!(s.available(), 0);
        assert!(w1 < Duration::from_secs(1) && w2 < Duration::from_secs(1));
        s.release(1);
        s.release(1);
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn contended_jobs_all_complete() {
        // One slot, two jobs pulling as fast as they can: no deadlock, no
        // lost wakeups, every acquire eventually granted.
        let s = SlotScheduler::new(1);
        let _a = s.register(1, 0, 3);
        let _b = s.register(2, 0, 1);
        let grants = [AtomicUsize::new(0), AtomicUsize::new(0)];
        std::thread::scope(|scope| {
            for (idx, job) in [(0usize, 1u64), (1, 2)] {
                let grants = &grants;
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..20 {
                        s.acquire(job);
                        grants[idx].fetch_add(1, Relaxed);
                        std::thread::sleep(Duration::from_micros(200));
                        s.release(job);
                    }
                });
            }
        });
        assert_eq!(grants[0].load(Relaxed), 20);
        assert_eq!(grants[1].load(Relaxed), 20);
    }

    #[test]
    fn fair_share_picks_least_loaded_job() {
        let s = SlotScheduler::new(4);
        let _a = s.register(1, 0, 3);
        let _b = s.register(2, 0, 1);
        // Job 1 holds 2 slots, job 2 holds 1: weighted usage 2/3 vs 1/1,
        // so the next slot goes to job 1.
        s.acquire(1);
        s.acquire(1);
        s.acquire(2);
        let st = s.state.lock().unwrap();
        assert_eq!(SlotScheduler::next_job(&st), None); // nobody waiting
        drop(st);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                s.acquire(1); // 2*1 < 1*3 → job 1 is next in line
                done.store(true, Relaxed);
            });
            while !done.load(Relaxed) {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        assert_eq!(s.available(), 0);
        for _ in 0..3 {
            s.release(1);
        }
        s.release(2);
    }

    #[test]
    fn priority_beats_share() {
        let s = SlotScheduler::new(1);
        let _low = s.register(1, 0, 100);
        let _high = s.register(2, 5, 1);
        s.acquire(1); // occupy the only slot
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                s.acquire(2);
                order.lock().unwrap().push(2u64);
                s.release(2);
            });
            // Give the high-priority waiter time to park.
            std::thread::sleep(Duration::from_millis(10));
            scope.spawn(|| {
                s.acquire(1);
                order.lock().unwrap().push(1u64);
                s.release(1);
            });
            std::thread::sleep(Duration::from_millis(10));
            s.release(1); // free the slot: priority 5 must win it
        });
        assert_eq!(*order.lock().unwrap(), vec![2, 1]);
    }

    #[test]
    fn acquire_reports_queue_wait() {
        let s = SlotScheduler::new(1);
        let _reg = s.register(7, 0, 1);
        s.acquire(7);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let waited = s.acquire(7);
                assert!(waited >= Duration::from_millis(5));
                s.release(7);
            });
            std::thread::sleep(Duration::from_millis(10));
            s.release(7);
        });
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn registration_drop_unregisters() {
        let s = SlotScheduler::new(1);
        {
            let _reg = s.register(1, 0, 1);
            assert!(s.state.lock().unwrap().jobs.contains_key(&1));
        }
        assert!(s.state.lock().unwrap().jobs.is_empty());
    }
}
