//! Structured observability: spans, event log and trace export.
//!
//! The paper's whole argument is quantitative — Controlled-Replicate wins
//! because its *intermediate pairs* and *per-phase costs* are smaller
//! (§1, §7.8) — so the engine records not just end-of-run aggregates but a
//! structured event stream: one span per **job**, per **phase** (map,
//! shuffle, reduce) and per **task attempt** (including retries and
//! speculative duplicates, tagged with their outcome), plus one counter
//! snapshot per finished job taken from the exact [`JobMetrics`] the
//! paper tables are built from.
//!
//! # Span hierarchy
//!
//! ```text
//! job (one per Engine::run)
//! ├── phase: map
//! │   └── task attempt (chunk × attempt, speculative duplicates tagged)
//! ├── phase: shuffle          (merge of sorted runs; no task attempts)
//! ├── phase: reduce
//! │   └── task attempt (partition × attempt)
//! └── counters                (snapshot of the job's JobMetrics)
//! ```
//!
//! # Recording
//!
//! A [`TraceSink`] is a cheap, cloneable handle. A *disabled* sink (the
//! default) makes every record call a no-op behind a single branch, so
//! tracing costs nothing when off — and when on, recording is one
//! timestamp read plus one short mutex push per event. Tracing never
//! touches the engine's logical counters: a traced run and an untraced
//! run report byte-identical [`MetricsReport`] values.
//!
//! # Export
//!
//! * [`TraceSink::to_jsonl`] — one JSON object per line (event log);
//! * [`TraceSink::to_chrome_trace`] — a `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev)-loadable JSON file: jobs appear
//!   as processes, tasks as threads, attempts as nested slices;
//! * [`MetricsReport::phase_table`](crate::MetricsReport::phase_table) —
//!   a human-readable per-phase summary table.
//!
//! The workspace's `serde` is an offline no-op shim, so both exporters
//! emit JSON by hand; [`validate_json`] is a small self-contained checker
//! used by the round-trip tests and the `mwsj trace-check` CLI command.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::fault::Phase;
use crate::JobMetrics;

/// A span phase: the engine's two task phases plus the shuffle barrier
/// between them (which sorts and groups but runs no retryable tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanPhase {
    /// The map phase (input chunks → intermediate pairs).
    Map,
    /// The shuffle: per-partition k-way merge of the mapper-sorted runs.
    Shuffle,
    /// The reduce phase (one task per partition).
    Reduce,
}

impl From<Phase> for SpanPhase {
    fn from(p: Phase) -> Self {
        match p {
            Phase::Map => SpanPhase::Map,
            Phase::Reduce => SpanPhase::Reduce,
        }
    }
}

impl std::fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpanPhase::Map => "map",
            SpanPhase::Shuffle => "shuffle",
            SpanPhase::Reduce => "reduce",
        })
    }
}

/// How one task attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt ran to completion (its output is eligible to commit;
    /// for a raced attempt the [`TraceEvent::SpeculationResolved`] event
    /// names which copy actually committed).
    Succeeded,
    /// The fault injector failed the attempt; its output was discarded.
    InjectedFault,
    /// User code panicked; the panic was isolated to the attempt.
    Panicked,
    /// The partitioner routed a key out of range (fails the job).
    BadPartition,
    /// A committed spill run failed integrity verification when the
    /// shuffle opened it; the producing map task is re-executed.
    CorruptRun,
}

impl AttemptOutcome {
    /// Stable lowercase tag used by both exporters.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AttemptOutcome::Succeeded => "succeeded",
            AttemptOutcome::InjectedFault => "injected-fault",
            AttemptOutcome::Panicked => "panicked",
            AttemptOutcome::BadPartition => "bad-partition",
            AttemptOutcome::CorruptRun => "corrupt-run",
        }
    }
}

/// Which copy of a straggler race committed the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceWinner {
    /// The speculative duplicate finished (successfully) first.
    Speculative,
    /// The straggling primary finished first.
    Primary,
    /// Neither copy succeeded (the attempt counts as failed and the task
    /// is retried or the job fails).
    Neither,
}

impl RaceWinner {
    /// Stable lowercase tag used by both exporters.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            RaceWinner::Speculative => "speculative",
            RaceWinner::Primary => "primary",
            RaceWinner::Neither => "neither",
        }
    }
}

/// One recorded event. Timestamps are microseconds since the sink was
/// created (one monotonic clock per sink, shared by every engine that
/// records into it).
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A job started executing.
    JobStart {
        /// Engine-wide job sequence number.
        job: u64,
        /// The job's name.
        name: String,
        /// Start timestamp (µs since sink creation).
        ts: u64,
    },
    /// A job finished (successfully or not).
    JobEnd {
        /// Engine-wide job sequence number.
        job: u64,
        /// End timestamp (µs).
        ts: u64,
        /// `None` on success; the job error's display otherwise.
        error: Option<String>,
    },
    /// A phase of a job started.
    PhaseStart {
        /// The owning job.
        job: u64,
        /// Which phase.
        phase: SpanPhase,
        /// Start timestamp (µs).
        ts: u64,
    },
    /// A phase of a job ended.
    PhaseEnd {
        /// The owning job.
        job: u64,
        /// Which phase.
        phase: SpanPhase,
        /// End timestamp (µs).
        ts: u64,
    },
    /// One task attempt ran (map chunk or reduce partition). Retries of a
    /// task appear as distinct events with increasing `attempt`;
    /// speculative duplicates carry the same `attempt` with
    /// `speculative = true`.
    Attempt {
        /// The owning job.
        job: u64,
        /// Map or reduce (the two phases with retryable tasks).
        phase: Phase,
        /// Task index (chunk index or partition index).
        task: usize,
        /// Attempt number within the task (0-based).
        attempt: u32,
        /// Whether this was the speculative duplicate of a straggler race.
        speculative: bool,
        /// Attempt start (µs).
        start: u64,
        /// Attempt end (µs).
        end: u64,
        /// How the attempt ended.
        outcome: AttemptOutcome,
    },
    /// A straggler race resolved: a speculative duplicate was launched for
    /// `(phase, task, attempt)` and `winner` committed.
    SpeculationResolved {
        /// The owning job.
        job: u64,
        /// Map or reduce.
        phase: Phase,
        /// The raced task.
        task: usize,
        /// The raced attempt number.
        attempt: u32,
        /// Which copy committed.
        winner: RaceWinner,
        /// Resolution timestamp (µs).
        ts: u64,
    },
    /// The finished job's counter snapshot — the exact [`JobMetrics`]
    /// appended to the engine's [`MetricsReport`](crate::MetricsReport),
    /// so trace totals always equal the report totals.
    Counters {
        /// The owning job.
        job: u64,
        /// Snapshot timestamp (µs, at job end).
        ts: u64,
        /// The job's metrics (boxed: the snapshot dwarfs every other
        /// variant, and one is recorded per job, not per event).
        metrics: Box<JobMetrics>,
    },
}

impl TraceEvent {
    /// The job the event belongs to.
    #[must_use]
    pub fn job(&self) -> u64 {
        match self {
            TraceEvent::JobStart { job, .. }
            | TraceEvent::JobEnd { job, .. }
            | TraceEvent::PhaseStart { job, .. }
            | TraceEvent::PhaseEnd { job, .. }
            | TraceEvent::Attempt { job, .. }
            | TraceEvent::SpeculationResolved { job, .. }
            | TraceEvent::Counters { job, .. } => *job,
        }
    }
}

struct SinkInner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A cheap, cloneable handle onto a shared trace buffer.
///
/// Create one with [`TraceSink::recording`], hand clones to engines
/// ([`EngineConfig::with_trace`](crate::EngineConfig::with_trace)) or
/// individual jobs ([`JobSpec::trace`](crate::JobSpec::trace)), then
/// export with [`TraceSink::to_jsonl`] / [`TraceSink::to_chrome_trace`].
/// The default sink is *disabled*: recording into it is a no-op behind a
/// single branch, so un-traced runs pay nothing.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TraceSink(disabled)"),
            Some(i) => write!(f, "TraceSink({} events)", i.events.lock().len()),
        }
    }
}

impl TraceSink {
    /// A sink that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A sink that records every event, timestamped against a fresh
    /// monotonic epoch.
    #[must_use]
    pub fn recording() -> Self {
        Self {
            inner: Some(Arc::new(SinkInner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this sink records events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the sink's epoch (0 for a disabled sink).
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Records one event (no-op on a disabled sink).
    pub fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.events.lock().push(event);
        }
    }

    /// Snapshot of all recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.lock().clone())
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.events.lock().len())
    }

    /// Whether the sink holds no events (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events (keeps the epoch).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().clear();
        }
    }

    /// Exports the event log as JSON lines: one self-contained JSON object
    /// per event, in record order. Every line parses as standalone JSON
    /// (`python -m json.tool`, `jq`, or [`validate_json`]).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&event_to_json(&ev));
            out.push('\n');
        }
        out
    }

    /// Exports the events as a `chrome://tracing` / Perfetto trace.
    ///
    /// Jobs become processes (`pid` = job id), phases and job spans live
    /// on thread 0, task attempts on one thread per task (map and reduce
    /// tasks share lanes — the phases are disjoint in time), and each
    /// job's counter snapshot becomes a `ph:"C"` counter sample.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.events())
    }
}

// ---------------------------------------------------------------------------
// JSON-lines exporter
// ---------------------------------------------------------------------------

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn metrics_json_fields(m: &JobMetrics) -> String {
    format!(
        "\"job_name\":\"{}\",\"map_input_records\":{},\"map_output_records\":{},\
         \"shuffle_bytes\":{},\"reduce_input_groups\":{},\"reduce_input_records\":{},\
         \"max_partition_records\":{},\"reduce_output_records\":{},\
         \"map_task_failures\":{},\"reduce_task_failures\":{},\"retries\":{},\
         \"speculative_launched\":{},\"speculative_won\":{},\"spill_runs\":{},\
         \"corrupt_runs\":{},\
         \"map_wall_us\":{},\"sort_wall_us\":{},\"shuffle_wall_us\":{},\"merge_wall_us\":{},\
         \"reduce_wall_us\":{},\"total_wall_us\":{},\"queue_wait_us\":{},\"slot_wall_us\":{},\
         \"input_fingerprint\":{}",
        json_escape(&m.job_name),
        m.map_input_records,
        m.map_output_records,
        m.shuffle_bytes,
        m.reduce_input_groups,
        m.reduce_input_records,
        m.max_partition_records,
        m.reduce_output_records,
        m.map_task_failures,
        m.reduce_task_failures,
        m.retries,
        m.speculative_launched,
        m.speculative_won,
        m.spill_runs,
        m.corrupt_runs,
        m.map_wall.as_micros(),
        m.sort_wall.as_micros(),
        m.shuffle_wall.as_micros(),
        m.merge_wall.as_micros(),
        m.reduce_wall.as_micros(),
        m.total_wall.as_micros(),
        m.queue_wait.as_micros(),
        m.slot_wall.as_micros(),
        m.input_fingerprint,
    )
}

fn event_to_json(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::JobStart { job, name, ts } => format!(
            "{{\"type\":\"job_start\",\"job\":{job},\"name\":\"{}\",\"ts_us\":{ts}}}",
            json_escape(name)
        ),
        TraceEvent::JobEnd { job, ts, error } => match error {
            None => format!("{{\"type\":\"job_end\",\"job\":{job},\"ts_us\":{ts}}}"),
            Some(e) => format!(
                "{{\"type\":\"job_end\",\"job\":{job},\"ts_us\":{ts},\"error\":\"{}\"}}",
                json_escape(e)
            ),
        },
        TraceEvent::PhaseStart { job, phase, ts } => format!(
            "{{\"type\":\"phase_start\",\"job\":{job},\"phase\":\"{phase}\",\"ts_us\":{ts}}}"
        ),
        TraceEvent::PhaseEnd { job, phase, ts } => {
            format!("{{\"type\":\"phase_end\",\"job\":{job},\"phase\":\"{phase}\",\"ts_us\":{ts}}}")
        }
        TraceEvent::Attempt {
            job,
            phase,
            task,
            attempt,
            speculative,
            start,
            end,
            outcome,
        } => format!(
            "{{\"type\":\"attempt\",\"job\":{job},\"phase\":\"{phase}\",\"task\":{task},\
             \"attempt\":{attempt},\"speculative\":{speculative},\"start_us\":{start},\
             \"end_us\":{end},\"outcome\":\"{}\"}}",
            outcome.tag()
        ),
        TraceEvent::SpeculationResolved {
            job,
            phase,
            task,
            attempt,
            winner,
            ts,
        } => format!(
            "{{\"type\":\"speculation_resolved\",\"job\":{job},\"phase\":\"{phase}\",\
             \"task\":{task},\"attempt\":{attempt},\"winner\":\"{}\",\"ts_us\":{ts}}}",
            winner.tag()
        ),
        TraceEvent::Counters { job, ts, metrics } => format!(
            "{{\"type\":\"counters\",\"job\":{job},\"ts_us\":{ts},{}}}",
            metrics_json_fields(metrics)
        ),
    }
}

// ---------------------------------------------------------------------------
// chrome://tracing exporter
// ---------------------------------------------------------------------------

/// Thread lane for a task attempt slice: one lane per task index. Lane 0
/// holds the job and phase spans; map and reduce tasks share lanes 1+
/// (the phases are disjoint in time, so slices never overlap).
fn attempt_tid(task: usize) -> usize {
    task + 1
}

fn chrome_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;

    let mut slices: Vec<String> = Vec::new();
    // Metadata: name each job's "process" after the job.
    for ev in events {
        if let TraceEvent::JobStart { job, name, .. } = ev {
            slices.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{job},\"tid\":0,\
                 \"args\":{{\"name\":\"job {job}: {}\"}}}}",
                json_escape(name)
            ));
        }
    }

    // Open-span bookkeeping: (job, phase-or-job) start timestamps.
    let mut job_open: std::collections::HashMap<u64, (String, u64)> =
        std::collections::HashMap::new();
    let mut phase_open: std::collections::HashMap<(u64, SpanPhase), u64> =
        std::collections::HashMap::new();

    for ev in events {
        match ev {
            TraceEvent::JobStart { job, name, ts } => {
                job_open.insert(*job, (name.clone(), *ts));
            }
            TraceEvent::JobEnd { job, ts, error } => {
                if let Some((name, start)) = job_open.remove(job) {
                    let err_arg = error.as_ref().map_or(String::new(), |e| {
                        format!(",\"error\":\"{}\"", json_escape(e))
                    });
                    slices.push(format!(
                        "{{\"name\":\"job:{}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{start},\
                         \"dur\":{},\"pid\":{job},\"tid\":0,\"args\":{{\"job\":{job}{err_arg}}}}}",
                        json_escape(&name),
                        ts.saturating_sub(start)
                    ));
                }
            }
            TraceEvent::PhaseStart { job, phase, ts } => {
                phase_open.insert((*job, *phase), *ts);
            }
            TraceEvent::PhaseEnd { job, phase, ts } => {
                if let Some(start) = phase_open.remove(&(*job, *phase)) {
                    slices.push(format!(
                        "{{\"name\":\"{phase}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{start},\
                         \"dur\":{},\"pid\":{job},\"tid\":0,\"args\":{{}}}}",
                        ts.saturating_sub(start)
                    ));
                }
            }
            TraceEvent::Attempt {
                job,
                phase,
                task,
                attempt,
                speculative,
                start,
                end,
                outcome,
            } => {
                let spec = if *speculative { " (spec)" } else { "" };
                slices.push(format!(
                    "{{\"name\":\"{phase} task {task} attempt {attempt}{spec}\",\
                     \"cat\":\"attempt\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\
                     \"pid\":{job},\"tid\":{},\"args\":{{\"outcome\":\"{}\",\
                     \"speculative\":{speculative}}}}}",
                    end.saturating_sub(*start),
                    attempt_tid(*task),
                    outcome.tag()
                ));
            }
            TraceEvent::SpeculationResolved {
                job,
                phase,
                task,
                attempt,
                winner,
                ts,
            } => {
                slices.push(format!(
                    "{{\"name\":\"speculation resolved: {}\",\"cat\":\"speculation\",\
                     \"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{job},\"tid\":{},\
                     \"args\":{{\"phase\":\"{phase}\",\"task\":{task},\"attempt\":{attempt}}}}}",
                    winner.tag(),
                    attempt_tid(*task)
                ));
            }
            TraceEvent::Counters { job, ts, metrics } => {
                slices.push(format!(
                    "{{\"name\":\"records\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{job},\"tid\":0,\
                     \"args\":{{\"map_output_records\":{},\"reduce_output_records\":{},\
                     \"shuffle_bytes\":{}}}}}",
                    metrics.map_output_records,
                    metrics.reduce_output_records,
                    metrics.shuffle_bytes
                ));
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, s) in slices.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{s}");
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

/// Validates that `input` is exactly one well-formed JSON value.
///
/// A small recursive-descent checker (the workspace has no registry access
/// and its `serde` is a no-op shim); used by the exporter round-trip tests
/// and the `mwsj trace-check` command.
///
/// # Errors
/// A message naming the byte offset of the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("invalid number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("invalid \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_sink_is_a_noop() {
        let s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.record(TraceEvent::JobStart {
            job: 0,
            name: "j".into(),
            ts: 0,
        });
        assert!(s.is_empty());
        assert_eq!(s.now_micros(), 0);
        assert_eq!(s.to_jsonl(), "");
    }

    #[test]
    fn recording_sink_captures_events_in_order() {
        let s = TraceSink::recording();
        let clone = s.clone();
        s.record(TraceEvent::JobStart {
            job: 0,
            name: "a".into(),
            ts: 1,
        });
        clone.record(TraceEvent::JobEnd {
            job: 0,
            ts: 2,
            error: None,
        });
        assert_eq!(s.len(), 2);
        assert!(matches!(s.events()[1], TraceEvent::JobEnd { .. }));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let s = TraceSink::recording();
        s.record(TraceEvent::JobStart {
            job: 3,
            name: "needs \"escaping\"\n".into(),
            ts: 10,
        });
        s.record(TraceEvent::Attempt {
            job: 3,
            phase: Phase::Map,
            task: 2,
            attempt: 1,
            speculative: true,
            start: 11,
            end: 19,
            outcome: AttemptOutcome::InjectedFault,
        });
        s.record(TraceEvent::Counters {
            job: 3,
            ts: 20,
            metrics: Box::new(JobMetrics {
                job_name: "j".into(),
                map_output_records: 7,
                map_wall: Duration::from_micros(123),
                ..JobMetrics::default()
            }),
        });
        let jsonl = s.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(jsonl.contains("\"outcome\":\"injected-fault\""));
        assert!(jsonl.contains("\"map_output_records\":7"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_matched_spans() {
        let s = TraceSink::recording();
        s.record(TraceEvent::JobStart {
            job: 0,
            name: "wc".into(),
            ts: 0,
        });
        s.record(TraceEvent::PhaseStart {
            job: 0,
            phase: SpanPhase::Map,
            ts: 1,
        });
        s.record(TraceEvent::Attempt {
            job: 0,
            phase: Phase::Map,
            task: 0,
            attempt: 0,
            speculative: false,
            start: 2,
            end: 5,
            outcome: AttemptOutcome::Succeeded,
        });
        s.record(TraceEvent::PhaseEnd {
            job: 0,
            phase: SpanPhase::Map,
            ts: 6,
        });
        s.record(TraceEvent::JobEnd {
            job: 0,
            ts: 7,
            error: None,
        });
        let trace = s.to_chrome_trace();
        validate_json(&trace).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"job:wc\""));
        assert!(trace.contains("\"ph\":\"X\""));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            "  [1, 2, 3]  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected `{good}`: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "nul",
            "1 2",
            "\"unterminated",
            "01a",
        ] {
            assert!(validate_json(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode ✓";
        let json = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        validate_json(&json).unwrap();
    }
}
