use std::time::Duration;

use serde::Serialize;

/// A cost model translating the metered counters into an estimated wall
/// time on a 2013-era Hadoop cluster like the paper's (16-core blades,
/// Hadoop 0.20.2, SATA disks, 1 GbE).
///
/// The in-process engine makes shuffle and DFS traffic nearly free, which
/// flatters the 2-way Cascade baseline (its defining costs are per-job
/// overhead and intermediate-result I/O, §6.4). Applying this model to the
/// *measured byte and job counters* restores those costs:
///
/// ```text
/// modeled = Σ_jobs (overhead + compute + shuffle_bytes / shuffle_bw)
///         + dfs_bytes / dfs_bw
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-job cost: JVM start-up, task scheduling, commit.
    pub per_job_overhead: Duration,
    /// Aggregate mapper->reducer network bandwidth (bytes/s).
    pub shuffle_bytes_per_sec: f64,
    /// Aggregate DFS read/write bandwidth (bytes/s).
    pub dfs_bytes_per_sec: f64,
}

impl CostModel {
    /// Rough constants for the paper's cluster: ~20 s of per-job overhead
    /// (Hadoop 0.20 job setup over 64 reduce slots), ~60 MB/s aggregate
    /// shuffle, ~80 MB/s aggregate HDFS throughput.
    #[must_use]
    pub fn hadoop_2013() -> Self {
        Self {
            per_job_overhead: Duration::from_secs(20),
            shuffle_bytes_per_sec: 60e6,
            dfs_bytes_per_sec: 80e6,
        }
    }
}

/// Counters collected for one map-reduce job.
///
/// `map_output_records` is the paper's central cost metric: the number of
/// intermediate key-value pairs communicated from mappers to reducers
/// ("Efficiency of a map-reduce program often hinges upon the number of
/// intermediate key-value pairs being generated", §1).
#[derive(Debug, Clone, Default, Serialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub job_name: String,
    /// Records read by mappers.
    pub map_input_records: u64,
    /// Intermediate key-value pairs emitted by mappers (communication cost).
    pub map_output_records: u64,
    /// Bytes shuffled from mappers to reducers.
    pub shuffle_bytes: u64,
    /// Distinct keys processed by reducers.
    pub reduce_input_groups: u64,
    /// Values fed to reducers (equals `map_output_records`).
    pub reduce_input_records: u64,
    /// Records received by the most loaded reducer partition — divided by
    /// `reduce_input_records / partitions` this is the skew factor the
    /// paper's load-balancing objective cares about.
    pub max_partition_records: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Map task attempts that failed (injected faults or mapper panics).
    /// Fault-tolerance bookkeeping, *not* a paper-table counter: the
    /// logical counters above only ever count committed attempts.
    pub map_task_failures: u64,
    /// Reduce task attempts that failed.
    pub reduce_task_failures: u64,
    /// Task re-executions after a failed attempt (map + reduce).
    pub retries: u64,
    /// Speculative duplicate attempts launched for straggling tasks.
    pub speculative_launched: u64,
    /// Speculative attempts that finished before their straggling primary
    /// and committed the task.
    pub speculative_won: u64,
    /// Sorted spill runs committed by map tasks (one per non-empty
    /// per-partition bucket of a committed attempt). Deterministic for a
    /// fixed engine config: each task commits exactly once, faults or not.
    pub spill_runs: u64,
    /// Spill runs whose integrity frame failed verification when the
    /// shuffle opened them (at-rest corruption, detected and repaired by
    /// re-executing the producing map task). Fault-tolerance bookkeeping
    /// like `retries`, never a paper-table counter.
    pub corrupt_runs: u64,
    /// Wall time of the map phase.
    pub map_wall: Duration,
    /// Time map attempts spent sorting their spill runs, summed over the
    /// committed attempts (the sorts run in parallel inside the map
    /// phase, so this can exceed any single phase's wall clock).
    pub sort_wall: Duration,
    /// Wall time of the shuffle (k-way merge of the sorted runs).
    pub shuffle_wall: Duration,
    /// Time spent k-way-merging sorted runs, summed over the shuffle
    /// workers (runs in parallel inside `shuffle_wall`).
    pub merge_wall: Duration,
    /// Wall time of the reduce phase.
    pub reduce_wall: Duration,
    /// End-to-end job wall time.
    pub total_wall: Duration,
    /// Time the job's task claims spent waiting for a scheduler slot,
    /// summed over tasks. Zero when the job had the engine to itself (the
    /// default slot pool admits a solo job's full parallelism).
    pub queue_wait: Duration,
    /// Time the job's tasks held scheduler slots, summed over tasks —
    /// the job's occupancy of the shared worker pool.
    pub slot_wall: Duration,
    /// Time spent opening (reading + validating) pre-built on-disk indexes
    /// before any task ran. Zero for ordinary shuffle jobs; the map-side
    /// join over stored datasets reports its store-open cost here so the
    /// "shuffle-free" wall time still accounts for everything it did.
    pub index_open_wall: Duration,
    /// Stable fingerprint of the job's input dataset
    /// ([`DatasetFingerprint`](crate::DatasetFingerprint)), carried through
    /// from [`JobSpec::input_fingerprint`](crate::JobSpec::input_fingerprint);
    /// `0` when the submitter attached none.
    pub input_fingerprint: u64,
}

/// A cloneable per-run metrics collector.
///
/// With one engine multiplexing concurrent jobs, the engine-global metrics
/// vector interleaves unrelated runs. A submitter that attaches a hub via
/// [`JobSpec::collect_into`](crate::JobSpec::collect_into) gets exactly its
/// own jobs delivered here instead (the engine-global vector is then left
/// untouched, so long-lived services do not accumulate history).
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    jobs: std::sync::Arc<parking_lot::Mutex<Vec<JobMetrics>>>,
}

impl MetricsHub {
    /// Creates an empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finished job's metrics (called by the engine).
    pub fn push(&self, metrics: JobMetrics) {
        self.jobs.lock().push(metrics);
    }

    /// The jobs collected so far, in completion order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<JobMetrics> {
        self.jobs.lock().clone()
    }

    /// Removes and returns the jobs collected so far.
    #[must_use]
    pub fn take(&self) -> Vec<JobMetrics> {
        std::mem::take(&mut *self.jobs.lock())
    }
}

/// Aggregated metrics over a sequence of jobs (one distributed join run may
/// execute several jobs: C-Rep runs two rounds, 2-way Cascade runs one job
/// per 2-way join).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsReport {
    /// Per-job metrics in execution order.
    pub jobs: Vec<JobMetrics>,
    /// Bytes read from the DFS across the run.
    pub dfs_read_bytes: u64,
    /// Bytes written to the DFS across the run.
    pub dfs_write_bytes: u64,
    /// Transient DFS read failures that were retried (fault injection);
    /// the byte counters only charge successful reads.
    pub dfs_transient_read_failures: u64,
}

impl MetricsReport {
    /// Total intermediate key-value pairs across all jobs.
    #[must_use]
    pub fn total_intermediate_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.map_output_records).sum()
    }

    /// Total bytes shuffled across all jobs.
    #[must_use]
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Total wall time across all jobs.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.total_wall).sum()
    }

    /// Number of jobs executed.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Renders a human-readable per-phase summary table: one row per job
    /// with map/shuffle/reduce/total wall times and the headline logical
    /// counters, plus a totals row. Complements the machine-readable
    /// exports on [`TraceSink`](crate::TraceSink).
    #[must_use]
    pub fn phase_table(&self) -> String {
        use std::fmt::Write as _;

        fn ms(d: Duration) -> String {
            format!("{:.1}", d.as_secs_f64() * 1e3)
        }

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>13} {:>6} {:>7} {:>5} {:>7}",
            "job",
            "map ms",
            "sort ms",
            "shuf ms",
            "merge ms",
            "red ms",
            "total ms",
            "wait ms",
            "kv pairs",
            "shuffle B",
            "runs",
            "retries",
            "spec",
            "corrupt"
        );
        let mut total = JobMetrics::default();
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>13} {:>6} {:>7} {:>5} {:>7}",
                j.job_name,
                ms(j.map_wall),
                ms(j.sort_wall),
                ms(j.shuffle_wall),
                ms(j.merge_wall),
                ms(j.reduce_wall),
                ms(j.total_wall),
                ms(j.queue_wait),
                j.map_output_records,
                j.shuffle_bytes,
                j.spill_runs,
                j.retries,
                j.speculative_launched,
                j.corrupt_runs
            );
            total.map_wall += j.map_wall;
            total.sort_wall += j.sort_wall;
            total.shuffle_wall += j.shuffle_wall;
            total.merge_wall += j.merge_wall;
            total.reduce_wall += j.reduce_wall;
            total.total_wall += j.total_wall;
            total.queue_wait += j.queue_wait;
            total.map_output_records += j.map_output_records;
            total.shuffle_bytes += j.shuffle_bytes;
            total.spill_runs += j.spill_runs;
            total.retries += j.retries;
            total.speculative_launched += j.speculative_launched;
            total.corrupt_runs += j.corrupt_runs;
        }
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>13} {:>6} {:>7} {:>5} {:>7}",
            format!("total ({} jobs)", self.jobs.len()),
            ms(total.map_wall),
            ms(total.sort_wall),
            ms(total.shuffle_wall),
            ms(total.merge_wall),
            ms(total.reduce_wall),
            ms(total.total_wall),
            ms(total.queue_wait),
            total.map_output_records,
            total.shuffle_bytes,
            total.spill_runs,
            total.retries,
            total.speculative_launched,
            total.corrupt_runs
        );
        let index_open: Duration = self.jobs.iter().map(|j| j.index_open_wall).sum();
        if index_open > Duration::ZERO {
            let _ = writeln!(out, "index open: {} ms", ms(index_open));
        }
        let _ = writeln!(
            out,
            "dfs: {} B read, {} B written",
            self.dfs_read_bytes, self.dfs_write_bytes
        );
        out
    }

    /// Estimated wall time under a [`CostModel`] (see its docs): measured
    /// compute time plus modeled job overhead, shuffle and DFS transfer
    /// times derived from the metered counters.
    #[must_use]
    pub fn modeled_time(&self, model: &CostModel) -> Duration {
        let mut total = Duration::ZERO;
        for j in &self.jobs {
            total += model.per_job_overhead;
            total += j.map_wall + j.reduce_wall;
            total += Duration::from_secs_f64(j.shuffle_bytes as f64 / model.shuffle_bytes_per_sec);
        }
        total += Duration::from_secs_f64(
            (self.dfs_read_bytes + self.dfs_write_bytes) as f64 / model.dfs_bytes_per_sec,
        );
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_jobs() {
        let mut report = MetricsReport::default();
        for i in 1..=3u64 {
            report.jobs.push(JobMetrics {
                job_name: format!("job{i}"),
                map_output_records: 10 * i,
                shuffle_bytes: 100 * i,
                total_wall: Duration::from_millis(i),
                ..JobMetrics::default()
            });
        }
        assert_eq!(report.num_jobs(), 3);
        assert_eq!(report.total_intermediate_records(), 60);
        assert_eq!(report.total_shuffle_bytes(), 600);
        assert_eq!(report.total_wall(), Duration::from_millis(6));
    }

    #[test]
    fn phase_table_lists_every_job_and_totals() {
        let mut report = MetricsReport::default();
        for i in 1..=2u64 {
            report.jobs.push(JobMetrics {
                job_name: format!("job{i}"),
                map_output_records: 10 * i,
                shuffle_bytes: 100 * i,
                map_wall: Duration::from_millis(2 * i),
                total_wall: Duration::from_millis(3 * i),
                ..JobMetrics::default()
            });
        }
        report.dfs_read_bytes = 64;
        let table = report.phase_table();
        assert!(table.contains("job1") && table.contains("job2"));
        assert!(table.contains("total (2 jobs)"));
        assert!(table.contains("30"), "kv-pair total missing:\n{table}");
        assert!(table.contains("64 B read"), "{table}");
    }

    #[test]
    fn phase_table_surfaces_index_open_time_only_when_nonzero() {
        let mut report = MetricsReport::default();
        report.jobs.push(JobMetrics {
            job_name: "j".into(),
            ..JobMetrics::default()
        });
        assert!(!report.phase_table().contains("index open"));
        report.jobs[0].index_open_wall = Duration::from_millis(4);
        let table = report.phase_table();
        assert!(table.contains("index open: 4.0 ms"), "{table}");
    }

    #[test]
    fn phase_table_surfaces_corrupt_runs() {
        let mut report = MetricsReport::default();
        report.jobs.push(JobMetrics {
            job_name: "j".into(),
            corrupt_runs: 7,
            ..JobMetrics::default()
        });
        let table = report.phase_table();
        assert!(table.contains("corrupt"), "header missing:\n{table}");
        assert!(table.contains('7'), "count missing:\n{table}");
    }
}
