//! Fault model: deterministic, seeded fault injection for the engine.
//!
//! Hadoop 0.20's defining substrate property — beyond shuffle semantics —
//! is fault tolerance: failed task attempts are re-executed and stragglers
//! are speculatively re-run, and a job's *logical* counters reflect
//! committed work, not attempts. A [`FaultPlan`] describes a synthetic
//! failure regime (per-phase task-failure probabilities, straggler
//! delays, transient DFS read failures), and the [`FaultInjector`] turns
//! it into **deterministic** per-attempt decisions: every decision is a
//! pure hash of `(seed, phase, job, task, attempt)`, so a given plan
//! injects the same faults into the same tasks regardless of thread
//! scheduling — the property the chaos equivalence tests rely on.

use std::time::Duration;

/// Which phase of a job a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A map task (one input chunk).
    Map,
    /// A reduce task (one shuffle partition).
    Reduce,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Map => f.write_str("map"),
            Phase::Reduce => f.write_str("reduce"),
        }
    }
}

/// A forced task failure: the first `attempts` attempts of the given task
/// fail, independent of the random rates. Used by tests that need an
/// exact failure schedule (`FaultPlan::forced`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedFault {
    /// The phase of the targeted task.
    pub phase: Phase,
    /// Task index within the phase (chunk index or partition index).
    pub task: usize,
    /// How many leading attempts fail. `u32::MAX` fails every attempt,
    /// forcing the task past `max_attempts`.
    pub attempts: u32,
}

/// A seeded description of the faults to inject into every job an engine
/// runs.
///
/// All probabilities are per *task attempt* and must lie in `[0, 1]`.
/// The default plan injects nothing and allows [`FaultPlan::DEFAULT_MAX_ATTEMPTS`]
/// attempts per task, mirroring Hadoop's `mapred.map.max.attempts = 4`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a map task attempt fails.
    pub map_failure_rate: f64,
    /// Probability that a reduce task attempt fails.
    pub reduce_failure_rate: f64,
    /// Probability that a task attempt straggles (triggering a speculative
    /// duplicate attempt).
    pub straggler_rate: f64,
    /// Upper bound on the injected straggler delay; the actual delay is
    /// drawn uniformly from `(0, straggler_delay]`.
    pub straggler_delay: Duration,
    /// Probability that one DFS read attempt fails transiently.
    pub dfs_read_failure_rate: f64,
    /// Probability that a committed spill run is corrupted at rest (its
    /// [`RunFrame`](crate::RunFrame) checksum is tampered after commit, as
    /// a flipped byte on a real disk would). The shuffle detects the
    /// corruption when it verifies the frame and re-executes the
    /// *producing* map task, bounded by [`FaultPlan::max_attempts`]
    /// re-executions per run.
    pub spill_corruption_rate: f64,
    /// Slow-start pacing for speculative execution, as a multiple of the
    /// median committed task time in the same phase: a duplicate attempt
    /// is launched only once a straggling task has run longer than
    /// `speculative_slowstart × median` (Hadoop launches speculation only
    /// for tasks well behind their peers). `0.0` (the default) launches
    /// the duplicate immediately, as does any straggler that flags before
    /// a median exists (the first task of a phase).
    pub speculative_slowstart: f64,
    /// Maximum attempts per task before the job fails with a
    /// [`JobError`](crate::JobError).
    pub max_attempts: u32,
    /// Exact failures to inject on top of the random rates.
    pub forced: Vec<ForcedFault>,
}

impl FaultPlan {
    /// Hadoop's default `mapred.{map,reduce}.max.attempts`.
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 4;

    /// A plan injecting nothing (the default).
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            map_failure_rate: 0.0,
            reduce_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_delay: Duration::from_millis(4),
            dfs_read_failure_rate: 0.0,
            spill_corruption_rate: 0.0,
            speculative_slowstart: 0.0,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
            forced: Vec::new(),
        }
    }

    /// A chaos plan: map, reduce and DFS-read attempts all fail with
    /// probability `fault_rate`; attempts straggle with probability
    /// `straggler_rate`.
    #[must_use]
    pub fn chaos(seed: u64, fault_rate: f64, straggler_rate: f64) -> Self {
        Self {
            seed,
            map_failure_rate: fault_rate,
            reduce_failure_rate: fault_rate,
            straggler_rate,
            dfs_read_failure_rate: fault_rate,
            ..Self::none()
        }
    }

    /// Adds exact forced failures (see [`ForcedFault`]).
    #[must_use]
    pub fn with_forced(mut self, forced: Vec<ForcedFault>) -> Self {
        self.forced = forced;
        self
    }

    /// Overrides the attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "a task needs at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the at-rest spill-run corruption probability (see
    /// [`FaultPlan::spill_corruption_rate`]).
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.spill_corruption_rate = rate;
        self
    }

    /// Sets the speculative slow-start multiplier (see
    /// [`FaultPlan::speculative_slowstart`]).
    #[must_use]
    pub fn with_slowstart(mut self, multiplier: f64) -> Self {
        assert!(
            multiplier >= 0.0 && multiplier.is_finite(),
            "speculative_slowstart must be finite and non-negative, got {multiplier}"
        );
        self.speculative_slowstart = multiplier;
        self
    }

    /// Panics unless every rate is a probability and the attempt budget
    /// is positive. Builders call this; call it directly after filling
    /// fields by hand.
    pub fn validate(&self) {
        for (name, p) in [
            ("map_failure_rate", self.map_failure_rate),
            ("reduce_failure_rate", self.reduce_failure_rate),
            ("straggler_rate", self.straggler_rate),
            ("dfs_read_failure_rate", self.dfs_read_failure_rate),
            ("spill_corruption_rate", self.spill_corruption_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        assert!(self.max_attempts > 0, "a task needs at least one attempt");
        assert!(
            self.speculative_slowstart >= 0.0 && self.speculative_slowstart.is_finite(),
            "speculative_slowstart must be finite and non-negative, got {}",
            self.speculative_slowstart
        );
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Turns a [`FaultPlan`] into deterministic per-attempt decisions.
///
/// Stateless and cheap: every query hashes its coordinates with the plan
/// seed (SplitMix64 finalizer), so decisions do not depend on thread
/// scheduling or on how many *other* decisions were made — two runs with
/// the same plan fail the same attempts of the same tasks.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
}

/// Decision domains, kept distinct so e.g. the failure and straggler
/// decisions of one attempt are independent draws.
const DOMAIN_FAIL: u64 = 0x1;
const DOMAIN_STRAGGLE: u64 = 0x2;
const DOMAIN_DELAY: u64 = 0x3;
const DOMAIN_DFS: u64 = 0x4;
const DOMAIN_CORRUPT: u64 = 0x5;

impl FaultInjector {
    /// An injector that never injects anything.
    #[must_use]
    pub fn none() -> Self {
        Self { plan: None }
    }

    /// An injector executing the given plan. Panics if the plan's rates
    /// are not probabilities.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        Self { plan: Some(plan) }
    }

    /// The plan's attempt budget ([`FaultPlan::DEFAULT_MAX_ATTEMPTS`] when
    /// no plan is set).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.plan
            .as_ref()
            .map_or(FaultPlan::DEFAULT_MAX_ATTEMPTS, |p| p.max_attempts)
    }

    /// The plan's speculative slow-start multiplier (0.0 — immediate
    /// speculation — when no plan is set).
    #[must_use]
    pub fn slowstart(&self) -> f64 {
        self.plan.as_ref().map_or(0.0, |p| p.speculative_slowstart)
    }

    /// Whether any fault can ever fire (used to skip bookkeeping on the
    /// fault-free fast path).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| {
            p.map_failure_rate > 0.0
                || p.reduce_failure_rate > 0.0
                || p.straggler_rate > 0.0
                || p.dfs_read_failure_rate > 0.0
                || p.spill_corruption_rate > 0.0
                || !p.forced.is_empty()
        })
    }

    /// Should this task attempt fail?
    #[must_use]
    pub fn should_fail(&self, phase: Phase, job: u64, task: usize, attempt: u32) -> bool {
        let Some(plan) = &self.plan else { return false };
        if plan
            .forced
            .iter()
            .any(|f| f.phase == phase && f.task == task && attempt < f.attempts)
        {
            return true;
        }
        let rate = match phase {
            Phase::Map => plan.map_failure_rate,
            Phase::Reduce => plan.reduce_failure_rate,
        };
        rate > 0.0 && unit(mix(plan.seed, DOMAIN_FAIL, phase, job, task, attempt)) < rate
    }

    /// Should this task attempt straggle — and if so, by how much?
    #[must_use]
    pub fn straggler_delay(
        &self,
        phase: Phase,
        job: u64,
        task: usize,
        attempt: u32,
    ) -> Option<Duration> {
        let plan = self.plan.as_ref()?;
        if plan.straggler_rate == 0.0
            || unit(mix(plan.seed, DOMAIN_STRAGGLE, phase, job, task, attempt))
                >= plan.straggler_rate
        {
            return None;
        }
        let u = unit(mix(plan.seed, DOMAIN_DELAY, phase, job, task, attempt));
        Some(plan.straggler_delay.mul_f64(u.max(0.1)))
    }

    /// Should this DFS read attempt fail transiently? `read_seq` is the
    /// DFS-wide read sequence number (reads happen in driver code between
    /// jobs, so the sequence is deterministic).
    #[must_use]
    pub fn should_fail_dfs_read(&self, read_seq: u64, attempt: u32) -> bool {
        let Some(plan) = &self.plan else { return false };
        plan.dfs_read_failure_rate > 0.0
            && unit(mix(plan.seed, DOMAIN_DFS, Phase::Map, read_seq, 0, attempt))
                < plan.dfs_read_failure_rate
    }

    /// Should the spill run that map task `task` committed to `partition`
    /// be corrupted at rest? `generation` is 0 for the original commit and
    /// increments once per corruption-triggered re-execution of the
    /// producing task, so a re-executed run draws fresh corruption
    /// decisions (and a pathological rate eventually exhausts the budget
    /// deterministically).
    #[must_use]
    pub fn should_corrupt_run(
        &self,
        job: u64,
        task: usize,
        partition: usize,
        generation: u32,
    ) -> bool {
        let Some(plan) = &self.plan else { return false };
        plan.spill_corruption_rate > 0.0
            && unit(mix_words(
                plan.seed,
                &[
                    DOMAIN_CORRUPT,
                    job,
                    task as u64,
                    partition as u64,
                    u64::from(generation),
                ],
            )) < plan.spill_corruption_rate
    }
}

/// Hashes decision coordinates into 64 bits (SplitMix64 finalizer over a
/// running combination).
fn mix(seed: u64, domain: u64, phase: Phase, job: u64, task: usize, attempt: u32) -> u64 {
    mix_words(
        seed,
        &[
            domain,
            match phase {
                // ASCII "map" / "red", as distinct phase tags.
                Phase::Map => 0x006d_6170,
                Phase::Reduce => 0x0072_6564,
            },
            job,
            task as u64,
            u64::from(attempt),
        ],
    )
}

/// The general form of [`mix`]: folds an arbitrary word sequence through
/// the SplitMix64 finalizer.
fn mix_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &word in words {
        h ^= word.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Maps 64 bits to `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decision domains for network faults (disjoint from the task-fault
/// domains so a plan reusing one seed draws independently).
const DOMAIN_NET_KIND: u64 = 0x10;
const DOMAIN_NET_POINT: u64 = 0x11;
const DOMAIN_NET_DELAY: u64 = 0x12;

/// A seeded description of the *network* faults to inject into a serving
/// tier, the service-side twin of [`FaultPlan`].
///
/// All probabilities are per I/O operation (one buffered read or one
/// framed write) and must lie in `[0, 1]`. Decisions are a pure hash of
/// `(seed, connection, operation)`, so a given plan tears the same frames
/// of the same connections regardless of thread scheduling — service
/// chaos tests are as reproducible as engine chaos tests.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a framed write is torn: only a prefix reaches the
    /// peer before the connection drops.
    pub torn_frame_rate: f64,
    /// Probability that an operation stalls mid-flight for up to
    /// [`NetFaultPlan::stall`] before completing.
    pub stall_rate: f64,
    /// Probability that the connection drops abruptly before the
    /// operation.
    pub disconnect_rate: f64,
    /// Probability that one inbound byte is flipped in flight (the peer
    /// receives a corrupted request).
    pub corrupt_rate: f64,
    /// Probability that a read turns slow-loris: bytes trickle in with an
    /// injected delay per chunk.
    pub slow_loris_rate: f64,
    /// Upper bound on injected stall / slow-loris delays; actual delays
    /// are drawn uniformly from `(0, stall]`.
    pub stall: Duration,
}

/// One deterministic network-fault decision (see [`NetFaultPlan::decide`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The operation proceeds untouched.
    None,
    /// Write only a prefix of the frame, then drop the connection.
    TornFrame,
    /// Sleep for the given duration mid-operation, then proceed.
    Stall(Duration),
    /// Drop the connection before the operation.
    Disconnect,
    /// Flip one byte of the payload in flight.
    CorruptByte,
    /// Trickle the read, sleeping the given duration per chunk.
    SlowLoris(Duration),
}

impl NetFaultPlan {
    /// A plan injecting nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            torn_frame_rate: 0.0,
            stall_rate: 0.0,
            disconnect_rate: 0.0,
            corrupt_rate: 0.0,
            slow_loris_rate: 0.0,
            stall: Duration::from_millis(20),
        }
    }

    /// A chaos plan: every fault kind fires with probability `rate`.
    #[must_use]
    pub fn chaos(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            torn_frame_rate: rate,
            stall_rate: rate,
            disconnect_rate: rate,
            corrupt_rate: rate,
            slow_loris_rate: rate,
            ..Self::none()
        }
    }

    /// Panics unless every rate is a probability.
    pub fn validate(&self) {
        for (name, p) in [
            ("torn_frame_rate", self.torn_frame_rate),
            ("stall_rate", self.stall_rate),
            ("disconnect_rate", self.disconnect_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("slow_loris_rate", self.slow_loris_rate),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
    }

    /// Whether any fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.torn_frame_rate > 0.0
            || self.stall_rate > 0.0
            || self.disconnect_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.slow_loris_rate > 0.0
    }

    /// The fault (at most one) injected into operation `op` of connection
    /// `conn`. Kinds are drawn in a fixed precedence order (disconnect,
    /// torn frame, corrupt byte, slow-loris, stall) from one uniform draw,
    /// so raising one rate never changes another kind's decisions.
    #[must_use]
    pub fn decide(&self, conn: u64, op: u64) -> NetFault {
        if !self.is_active() {
            return NetFault::None;
        }
        let u = unit(mix_words(self.seed, &[DOMAIN_NET_KIND, conn, op]));
        let mut threshold = 0.0;
        for (rate, fault) in [
            (self.disconnect_rate, NetFault::Disconnect),
            (self.torn_frame_rate, NetFault::TornFrame),
            (self.corrupt_rate, NetFault::CorruptByte),
            (
                self.slow_loris_rate,
                NetFault::SlowLoris(self.delay(conn, op)),
            ),
            (self.stall_rate, NetFault::Stall(self.delay(conn, op))),
        ] {
            threshold += rate;
            if u < threshold {
                return fault;
            }
        }
        NetFault::None
    }

    /// The byte offset a torn frame is cut at / a corrupt byte lands on,
    /// in `0..len` (0 when the payload is empty).
    #[must_use]
    pub fn fault_point(&self, conn: u64, op: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let bits = mix_words(self.seed, &[DOMAIN_NET_POINT, conn, op]);
        (((u128::from(bits) * len as u128) >> 64) as u64) as usize
    }

    fn delay(&self, conn: u64, op: u64) -> Duration {
        let u = unit(mix_words(self.seed, &[DOMAIN_NET_DELAY, conn, op]));
        self.stall.mul_f64(u.max(0.05))
    }
}

/// A failed map-reduce job: the task that gave out, after how many
/// attempts, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// The job's name.
    pub job: String,
    /// The phase of the failed task.
    pub phase: Phase,
    /// Index of the failed task (chunk index for map, partition index for
    /// reduce).
    pub task: usize,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// What went wrong.
    pub kind: JobErrorKind,
}

/// The failure modes a job can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum JobErrorKind {
    /// Every allowed attempt of the task failed; carries the last
    /// attempt's error (panic message or injected-fault marker).
    AttemptsExhausted {
        /// The last attempt's failure message.
        last_error: String,
    },
    /// The partitioner routed a key outside `0..num_partitions`. Not
    /// retried: the partitioner is deterministic, so every attempt would
    /// fail identically.
    BadPartitioner {
        /// The out-of-range partition the partitioner returned.
        partition: usize,
        /// The number of partitions the job was configured with.
        num_partitions: usize,
    },
    /// The job's [`CancelToken`](crate::CancelToken) was tripped — by the
    /// submitter (client disconnect, explicit abort) or by a per-job
    /// deadline. Never retried: cancellation is a caller decision, not a
    /// task fault, so the retry budget does not apply.
    Cancelled {
        /// `true` when the deadline expired, `false` on an explicit cancel.
        deadline_exceeded: bool,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            JobErrorKind::AttemptsExhausted { last_error } => write!(
                f,
                "job `{}`: {} task {} failed after {} attempts: {}",
                self.job, self.phase, self.task, self.attempts, last_error
            ),
            JobErrorKind::BadPartitioner {
                partition,
                num_partitions,
            } => write!(
                f,
                "job `{}`: partition_fn returned {partition} >= {num_partitions} \
                 ({} task {})",
                self.job, self.phase, self.task
            ),
            JobErrorKind::Cancelled { deadline_exceeded } => write!(
                f,
                "job `{}`: cancelled {} at {} task {}",
                self.job,
                if *deadline_exceeded {
                    "by deadline"
                } else {
                    "by caller"
                },
                self.phase,
                self.task
            ),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_injects_nothing() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        for task in 0..100 {
            assert!(!inj.should_fail(Phase::Map, 0, task, 0));
            assert!(inj.straggler_delay(Phase::Reduce, 0, task, 0).is_none());
            assert!(!inj.should_fail_dfs_read(task as u64, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(FaultPlan::chaos(7, 0.3, 0.3));
        let b = FaultInjector::new(FaultPlan::chaos(7, 0.3, 0.3));
        for job in 0..4 {
            for task in 0..50 {
                for attempt in 0..3 {
                    assert_eq!(
                        a.should_fail(Phase::Map, job, task, attempt),
                        b.should_fail(Phase::Map, job, task, attempt)
                    );
                    assert_eq!(
                        a.straggler_delay(Phase::Reduce, job, task, attempt),
                        b.straggler_delay(Phase::Reduce, job, task, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let inj = FaultInjector::new(FaultPlan::chaos(11, 0.2, 0.0));
        let fails = (0..10_000)
            .filter(|&t| inj.should_fail(Phase::Map, 0, t, 0))
            .count();
        assert!((1_500..2_500).contains(&fails), "got {fails}");
    }

    #[test]
    fn seeds_change_decisions() {
        let a = FaultInjector::new(FaultPlan::chaos(1, 0.5, 0.0));
        let b = FaultInjector::new(FaultPlan::chaos(2, 0.5, 0.0));
        let differing = (0..1_000)
            .filter(|&t| a.should_fail(Phase::Map, 0, t, 0) != b.should_fail(Phase::Map, 0, t, 0))
            .count();
        assert!(
            differing > 100,
            "seeds barely change decisions: {differing}"
        );
    }

    #[test]
    fn forced_faults_fire_exactly() {
        let plan = FaultPlan::none().with_forced(vec![ForcedFault {
            phase: Phase::Map,
            task: 3,
            attempts: 2,
        }]);
        let inj = FaultInjector::new(plan);
        assert!(inj.should_fail(Phase::Map, 0, 3, 0));
        assert!(inj.should_fail(Phase::Map, 0, 3, 1));
        assert!(!inj.should_fail(Phase::Map, 0, 3, 2));
        assert!(!inj.should_fail(Phase::Map, 0, 2, 0));
        assert!(!inj.should_fail(Phase::Reduce, 0, 3, 0));
    }

    #[test]
    fn straggler_delay_bounded() {
        let mut plan = FaultPlan::chaos(5, 0.0, 1.0);
        plan.straggler_delay = Duration::from_millis(10);
        let inj = FaultInjector::new(plan);
        for task in 0..100 {
            let d = inj
                .straggler_delay(Phase::Map, 1, task, 0)
                .expect("rate 1.0 always straggles");
            assert!(d > Duration::ZERO && d <= Duration::from_millis(10));
        }
    }

    #[test]
    fn error_display_names_phase_and_task() {
        let e = JobError {
            job: "j".into(),
            phase: Phase::Reduce,
            task: 5,
            attempts: 4,
            kind: JobErrorKind::AttemptsExhausted {
                last_error: "injected fault".into(),
            },
        };
        let s = e.to_string();
        assert!(
            s.contains("job `j`"),
            "display must carry the job identity: {s}"
        );
        assert!(
            s.contains("reduce task 5") && s.contains("4 attempts"),
            "{s}"
        );
    }

    #[test]
    fn every_error_kind_names_its_job() {
        // With concurrent jobs a bare "map task 3 failed" is unattributable;
        // every kind's display must lead with the JobSpec name.
        let kinds = [
            JobErrorKind::AttemptsExhausted {
                last_error: "x".into(),
            },
            JobErrorKind::BadPartitioner {
                partition: 9,
                num_partitions: 4,
            },
            JobErrorKind::Cancelled {
                deadline_exceeded: false,
            },
            JobErrorKind::Cancelled {
                deadline_exceeded: true,
            },
        ];
        for kind in kinds {
            let e = JobError {
                job: "table2-crep-round1".into(),
                phase: Phase::Map,
                task: 3,
                attempts: 1,
                kind,
            };
            let s = e.to_string();
            assert!(s.contains("job `table2-crep-round1`"), "{s}");
        }
    }

    #[test]
    fn cancelled_display_distinguishes_deadline() {
        let mk = |deadline_exceeded| JobError {
            job: "q".into(),
            phase: Phase::Map,
            task: 0,
            attempts: 0,
            kind: JobErrorKind::Cancelled { deadline_exceeded },
        };
        assert!(mk(true).to_string().contains("by deadline"));
        assert!(mk(false).to_string().contains("by caller"));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_rate() {
        let _ = FaultInjector::new(FaultPlan::chaos(0, 1.5, 0.0));
    }

    #[test]
    fn corruption_decisions_deterministic_and_generation_dependent() {
        let a = FaultInjector::new(FaultPlan::none().with_corruption(0.5));
        let b = FaultInjector::new(FaultPlan::none().with_corruption(0.5));
        let mut corrupted = 0;
        let mut generation_changes = 0;
        for task in 0..50 {
            for partition in 0..8 {
                let d0 = a.should_corrupt_run(1, task, partition, 0);
                assert_eq!(d0, b.should_corrupt_run(1, task, partition, 0));
                corrupted += usize::from(d0);
                if d0 != a.should_corrupt_run(1, task, partition, 1) {
                    generation_changes += 1;
                }
            }
        }
        assert!((100..300).contains(&corrupted), "got {corrupted}");
        // A re-executed run must draw a fresh decision, or a corrupt run
        // could never be repaired.
        assert!(generation_changes > 50, "got {generation_changes}");
    }

    #[test]
    fn corruption_off_by_default() {
        let inj = FaultInjector::new(FaultPlan::chaos(3, 0.3, 0.1));
        for task in 0..100 {
            assert!(!inj.should_corrupt_run(0, task, 0, 0));
        }
        assert!(FaultInjector::new(FaultPlan::none().with_corruption(0.1)).is_active());
    }

    #[test]
    #[should_panic(expected = "spill_corruption_rate must be in [0, 1]")]
    fn rejects_bad_corruption_rate() {
        let _ = FaultInjector::new(FaultPlan::none().with_corruption(-0.5));
    }

    #[test]
    fn net_plan_deterministic_and_at_most_one_fault() {
        let plan = NetFaultPlan::chaos(9, 0.08);
        plan.validate();
        let again = NetFaultPlan::chaos(9, 0.08);
        let mut fired = 0;
        for conn in 0..20 {
            for op in 0..50 {
                let d = plan.decide(conn, op);
                assert_eq!(d, again.decide(conn, op));
                if d != NetFault::None {
                    fired += 1;
                }
                let point = plan.fault_point(conn, op, 100);
                assert!(point < 100);
                assert_eq!(point, again.fault_point(conn, op, 100));
            }
        }
        // 5 kinds × 8% each = 40% of ops faulted, roughly.
        assert!((250..550).contains(&fired), "got {fired}");
    }

    #[test]
    fn net_plan_none_is_inert() {
        let plan = NetFaultPlan::none();
        assert!(!plan.is_active());
        for op in 0..100 {
            assert_eq!(plan.decide(0, op), NetFault::None);
        }
        assert_eq!(plan.fault_point(0, 0, 0), 0);
    }

    #[test]
    fn net_delays_bounded() {
        let mut plan = NetFaultPlan::chaos(4, 0.0);
        plan.slow_loris_rate = 1.0;
        plan.stall = Duration::from_millis(10);
        for op in 0..100 {
            match plan.decide(0, op) {
                NetFault::SlowLoris(d) => {
                    assert!(d > Duration::ZERO && d <= Duration::from_millis(10));
                }
                other => panic!("rate 1.0 must trickle every read, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "corrupt_rate must be in [0, 1]")]
    fn net_plan_rejects_bad_rate() {
        let mut plan = NetFaultPlan::none();
        plan.corrupt_rate = 2.0;
        plan.validate();
    }
}
