use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::{Dfs, JobMetrics, MetricsReport, RecordSize};

/// Engine configuration: degrees of parallelism for the two phases.
///
/// The paper's cluster runs 16 cores with 64 reduce *slots*; here
/// `reduce_tasks` is the number of worker threads executing reducers, while
/// the number of logical reducers (partitions) is chosen per job — the join
/// algorithms use one partition per grid cell.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for the map phase.
    pub map_tasks: usize,
    /// Worker threads for the reduce phase.
    pub reduce_tasks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            map_tasks: n,
            reduce_tasks: n,
        }
    }
}

/// The map-reduce engine: runs jobs, owns the [`Dfs`], accumulates
/// [`JobMetrics`].
pub struct Engine {
    config: EngineConfig,
    /// The distributed file system shared by chained jobs.
    pub dfs: Dfs,
    metrics: Mutex<Vec<JobMetrics>>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.map_tasks > 0 && config.reduce_tasks > 0);
        Self {
            config,
            dfs: Dfs::new(),
            metrics: Mutex::new(Vec::new()),
        }
    }

    /// Runs one map-reduce job and returns the reducer outputs (in
    /// partition order, sorted-key order within each partition).
    ///
    /// * `map_fn(record, emit)` — called once per input record; `emit(k, v)`
    ///   produces an intermediate pair.
    /// * `partition_fn(key, num_partitions)` — routes a key to a logical
    ///   reducer; must return a value `< num_partitions`. All pairs with
    ///   equal keys must map to the same partition (guaranteed when the
    ///   function depends only on the key).
    /// * `reduce_fn(key, values, out)` — called once per distinct key with
    ///   every value for that key.
    pub fn run_job<I, K, V, O, MF, PF, RF>(
        &self,
        name: &str,
        input: &[I],
        num_partitions: usize,
        map_fn: MF,
        partition_fn: PF,
        reduce_fn: RF,
    ) -> Vec<O>
    where
        I: Sync,
        K: Ord + Send + RecordSize,
        V: Send + RecordSize,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        PF: Fn(&K, usize) -> usize + Sync,
        RF: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    {
        assert!(num_partitions > 0, "a job needs at least one partition");
        let job_start = Instant::now();
        let mut metrics = JobMetrics {
            job_name: name.to_string(),
            map_input_records: input.len() as u64,
            ..JobMetrics::default()
        };

        // ---- Map phase -------------------------------------------------
        // Input is divided into chunks claimed by worker threads; each
        // worker keeps one output bucket per partition (the mapper-side
        // spill files of a real deployment).
        let map_start = Instant::now();
        let chunk_size = input.len().div_ceil(self.config.map_tasks * 4).max(1);
        let chunks: Vec<&[I]> = input.chunks(chunk_size).collect();
        let next_chunk = AtomicUsize::new(0);
        let emitted = AtomicU64::new(0);
        let shuffled_bytes = AtomicU64::new(0);

        let worker_buckets: Vec<Vec<Vec<(K, V)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.config.map_tasks)
                .map(|_| {
                    scope.spawn(|| {
                        let mut buckets: Vec<Vec<(K, V)>> = (0..num_partitions)
                            .map(|_| Vec::new())
                            .collect();
                        let mut local_emitted = 0u64;
                        let mut local_bytes = 0u64;
                        loop {
                            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks.get(c) else { break };
                            for record in *chunk {
                                map_fn(record, &mut |k: K, v: V| {
                                    let p = partition_fn(&k, num_partitions);
                                    assert!(
                                        p < num_partitions,
                                        "partition_fn returned {p} >= {num_partitions}"
                                    );
                                    local_emitted += 1;
                                    local_bytes += (k.size_bytes() + v.size_bytes()) as u64;
                                    buckets[p].push((k, v));
                                });
                            }
                        }
                        emitted.fetch_add(local_emitted, Ordering::Relaxed);
                        shuffled_bytes.fetch_add(local_bytes, Ordering::Relaxed);
                        buckets
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(buckets) => buckets,
                    // Preserve the original panic (e.g. a partitioner
                    // assertion) instead of masking it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        metrics.map_wall = map_start.elapsed();
        metrics.map_output_records = emitted.load(Ordering::Relaxed);
        metrics.reduce_input_records = metrics.map_output_records;
        metrics.shuffle_bytes = shuffled_bytes.load(Ordering::Relaxed);

        // ---- Shuffle: merge per-partition streams and sort by key ------
        let shuffle_start = Instant::now();
        let mut partitions: Vec<Mutex<Vec<(K, V)>>> =
            (0..num_partitions).map(|_| Mutex::new(Vec::new())).collect();
        for buckets in worker_buckets {
            for (p, mut bucket) in buckets.into_iter().enumerate() {
                partitions[p].get_mut().append(&mut bucket);
            }
        }
        let group_counter = AtomicU64::new(0);
        let max_partition = AtomicU64::new(0);
        let next_shuffle = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let next = &next_shuffle;
            let partitions = &partitions;
            let group_counter = &group_counter;
            let max_partition = &max_partition;
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(move || loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= partitions.len() {
                        break;
                    }
                    let mut data = partitions[p].lock();
                    max_partition.fetch_max(data.len() as u64, Ordering::Relaxed);
                    data.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut groups = 0u64;
                    let mut prev: Option<&K> = None;
                    for (k, _) in data.iter() {
                        if prev != Some(k) {
                            groups += 1;
                            prev = Some(k);
                        }
                    }
                    group_counter.fetch_add(groups, Ordering::Relaxed);
                });
            }
        });
        metrics.shuffle_wall = shuffle_start.elapsed();
        metrics.reduce_input_groups = group_counter.load(Ordering::Relaxed);
        metrics.max_partition_records = max_partition.load(Ordering::Relaxed);

        // ---- Reduce phase ----------------------------------------------
        let reduce_start = Instant::now();
        let output_slots: Vec<Mutex<Vec<O>>> =
            (0..num_partitions).map(|_| Mutex::new(Vec::new())).collect();
        let out_count = AtomicU64::new(0);
        let next_reduce = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let next = &next_reduce;
            let partitions = &partitions;
            let output_slots = &output_slots;
            let reduce_fn = &reduce_fn;
            let out_count = &out_count;
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(move || loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= partitions.len() {
                        break;
                    }
                    let data = std::mem::take(&mut *partitions[p].lock());
                    let mut outputs = Vec::new();
                    let mut local_out = 0u64;
                    let mut iter = data.into_iter().peekable();
                    while let Some((key, first_value)) = iter.next() {
                        let mut values = vec![first_value];
                        while let Some((k, _)) = iter.peek() {
                            if *k == key {
                                let (_, v) = iter.next().expect("peeked");
                                values.push(v);
                            } else {
                                break;
                            }
                        }
                        reduce_fn(&key, values, &mut |o: O| {
                            local_out += 1;
                            outputs.push(o);
                        });
                    }
                    out_count.fetch_add(local_out, Ordering::Relaxed);
                    *output_slots[p].lock() = outputs;
                });
            }
        });
        metrics.reduce_wall = reduce_start.elapsed();
        metrics.reduce_output_records = out_count.load(Ordering::Relaxed);
        metrics.total_wall = job_start.elapsed();
        self.metrics.lock().push(metrics);

        output_slots
            .into_iter()
            .flat_map(parking_lot::Mutex::into_inner)
            .collect()
    }

    /// Snapshot of all job metrics plus DFS counters since construction (or
    /// the last [`Engine::reset_metrics`]).
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            jobs: self.metrics.lock().clone(),
            dfs_read_bytes: self.dfs.read_bytes(),
            dfs_write_bytes: self.dfs.write_bytes(),
        }
    }

    /// Clears accumulated job metrics and DFS counters.
    pub fn reset_metrics(&self) {
        self.metrics.lock().clear();
        self.dfs.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
        })
    }

    #[test]
    fn word_count() {
        let e = engine();
        let input = vec!["a b a", "c b", "a"];
        let mut out = e.run_job(
            "wc",
            &input,
            3,
            |line, emit| {
                for w in line.split(' ') {
                    emit(w.to_string(), 1u32);
                }
            },
            |k, n| k.as_bytes()[0] as usize % n,
            |k, vs, out| out((k.clone(), vs.len())),
        );
        out.sort();
        assert_eq!(
            out,
            vec![("a".into(), 3usize), ("b".into(), 2), ("c".into(), 1)]
        );
    }

    #[test]
    fn metrics_count_intermediate_pairs() {
        let e = engine();
        let input: Vec<u32> = (0..100).collect();
        let _ = e.run_job(
            "double-emit",
            &input,
            8,
            |&x, emit| {
                emit(x % 8, x);
                emit((x + 1) % 8, x);
            },
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v);
                }
            },
        );
        let report = e.report();
        assert_eq!(report.num_jobs(), 1);
        let j = &report.jobs[0];
        assert_eq!(j.map_input_records, 100);
        assert_eq!(j.map_output_records, 200);
        assert_eq!(j.reduce_input_records, 200);
        assert_eq!(j.reduce_output_records, 200);
        assert_eq!(j.reduce_input_groups, 8);
        // Keys are u32 (4 bytes) and values u32 (4 bytes).
        assert_eq!(j.shuffle_bytes, 200 * 8);
    }

    #[test]
    fn all_values_for_a_key_meet_at_one_reducer() {
        let e = engine();
        let input: Vec<u64> = (0..1000).collect();
        let out = e.run_job(
            "group",
            &input,
            16,
            |&x, emit| emit(x % 50, x),
            |&k, n| (k as usize) % n,
            |&k, vs, out| {
                // Every value v with v % 50 == k must be present.
                let mut got: Vec<u64> = vs;
                got.sort_unstable();
                let expect: Vec<u64> = (0..1000).filter(|v| v % 50 == k).collect();
                assert_eq!(got, expect);
                out(k);
            },
        );
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn reducers_see_keys_in_sorted_order_within_partition() {
        let e = engine();
        let input: Vec<u32> = (0..200).rev().collect();
        let order = Mutex::new(Vec::new());
        let _ = e.run_job(
            "sorted",
            &input,
            1,
            |&x, emit| emit(x, ()),
            |_, _| 0,
            |&k, _, _out: &mut dyn FnMut(())| {
                order.lock().push(k);
            },
        );
        let order = order.into_inner();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn empty_input_produces_no_output() {
        let e = engine();
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = e.run_job(
            "empty",
            &input,
            4,
            |&x, emit| emit(x, x),
            |&k, n| k as usize % n,
            |&k, _, out| out(k),
        );
        assert!(out.is_empty());
        assert_eq!(e.report().jobs[0].map_output_records, 0);
    }

    #[test]
    fn chained_jobs_account_dfs_traffic() {
        let e = engine();
        let input: Vec<u32> = (0..10).collect();
        let stage1: Vec<u32> = e.run_job(
            "stage1",
            &input,
            2,
            |&x, emit| emit(x % 2, x),
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v * 2);
                }
            },
        );
        e.dfs.write("intermediate", stage1);
        let stage2_input = e.dfs.read::<u32>("intermediate").unwrap();
        let out: Vec<u32> = e.run_job(
            "stage2",
            &stage2_input,
            2,
            |&x, emit| emit(x % 2, x),
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v);
                }
            },
        );
        assert_eq!(out.len(), 10);
        let report = e.report();
        assert_eq!(report.num_jobs(), 2);
        assert_eq!(report.dfs_write_bytes, 40);
        assert_eq!(report.dfs_read_bytes, 40);
    }

    #[test]
    fn reset_metrics_clears_everything() {
        let e = engine();
        let input = vec![1u32];
        let _ = e.run_job(
            "j",
            &input,
            1,
            |&x, emit| emit(x, x),
            |_, _| 0,
            |&k, _, out| out(k),
        );
        e.dfs.write("d", vec![1u8]);
        e.reset_metrics();
        let r = e.report();
        assert_eq!(r.num_jobs(), 0);
        assert_eq!(r.dfs_write_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "partition_fn returned")]
    fn bad_partitioner_panics() {
        let e = engine();
        let input = vec![1u32];
        let _ = e.run_job(
            "bad",
            &input,
            2,
            |&x, emit| emit(x, x),
            |_, _| 7,
            |&k, _, out| out(k),
        );
    }
}
