use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::fault::{FaultInjector, FaultPlan, JobErrorKind, Phase};
use crate::{Dfs, JobError, JobMetrics, MetricsReport, RecordSize};

/// Engine configuration: degrees of parallelism for the two phases, plus
/// an optional fault-injection plan.
///
/// The paper's cluster runs 16 cores with 64 reduce *slots*; here
/// `reduce_tasks` is the number of worker threads executing reducers, while
/// the number of logical reducers (partitions) is chosen per job — the join
/// algorithms use one partition per grid cell.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for the map phase.
    pub map_tasks: usize,
    /// Worker threads for the reduce phase.
    pub reduce_tasks: usize,
    /// Faults to inject into every job (`None` runs fault-free). See
    /// [`FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            map_tasks: n,
            reduce_tasks: n,
            fault_plan: None,
        }
    }
}

impl EngineConfig {
    /// Attaches a fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// The map-reduce engine: runs jobs, owns the [`Dfs`], accumulates
/// [`JobMetrics`].
///
/// # Fault tolerance
///
/// Each map chunk and each reduce partition executes as a **task
/// attempt**: user code runs under `catch_unwind`, output goes to
/// attempt-local buffers, and only a *successful* attempt commits its
/// buffers and counter deltas — so a retried task never double-emits and
/// the logical counters are byte-identical with or without faults. Tasks
/// are retried up to [`FaultPlan::max_attempts`] times; attempts flagged
/// as stragglers by the [`FaultInjector`] race a speculative duplicate
/// attempt, first successful completion wins. A task that exhausts its
/// attempts fails the job with a [`JobError`] naming the phase and task.
pub struct Engine {
    config: EngineConfig,
    /// The distributed file system shared by chained jobs.
    pub dfs: Dfs,
    metrics: Mutex<Vec<JobMetrics>>,
    injector: FaultInjector,
    job_seq: AtomicU64,
}

/// Why one task attempt did not commit.
enum AttemptError {
    /// The [`FaultInjector`] failed this attempt; its output was discarded.
    Injected,
    /// User code panicked; the panic was isolated to the attempt.
    Panic(String),
    /// The partitioner routed a key out of range (not retryable).
    BadPartition { partition: usize },
}

impl AttemptError {
    fn message(&self) -> String {
        match self {
            AttemptError::Injected => "injected fault".to_string(),
            AttemptError::Panic(m) => format!("task panicked: {m}"),
            AttemptError::BadPartition { partition } => {
                format!("partitioner returned out-of-range partition {partition}")
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Attempt ids of speculative duplicates get this bit so their fault
/// decisions are independent draws from their primary's.
const SPECULATIVE_BIT: u32 = 1 << 31;

/// Runs one task attempt, racing a speculative duplicate when the
/// injector flags the attempt as a straggler. First successful completion
/// wins; the loser's output is discarded. `run` must be pure up to its
/// commit (it is: attempts write only attempt-local buffers).
#[allow(clippy::too_many_arguments)]
fn attempt_with_speculation<T, F>(
    injector: &FaultInjector,
    phase: Phase,
    job: u64,
    task: usize,
    attempt: u32,
    speculative_launched: &AtomicU64,
    speculative_won: &AtomicU64,
    run: &F,
) -> Result<T, AttemptError>
where
    T: Send,
    F: Fn(usize, u32) -> Result<T, AttemptError> + Sync,
{
    let Some(delay) = injector.straggler_delay(phase, job, task, attempt) else {
        return run(task, attempt);
    };
    speculative_launched.fetch_add(1, Ordering::Relaxed);
    // 0 = unclaimed, 1 = speculative committed, 2 = primary committed.
    let claimed = AtomicU8::new(0);
    let (speculative, primary) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let r = run(task, attempt | SPECULATIVE_BIT);
            if r.is_ok() {
                let _ = claimed.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
            }
            r
        });
        // The primary attempt straggles: it sleeps out its injected delay
        // and only executes if the speculative copy has not finished yet.
        std::thread::sleep(delay);
        let primary = if claimed.load(Ordering::SeqCst) == 0 {
            let r = run(task, attempt);
            if r.is_ok() {
                let _ = claimed.compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst);
            }
            Some(r)
        } else {
            None
        };
        let speculative = handle
            .join()
            .unwrap_or(Err(AttemptError::Panic("speculative attempt died".into())));
        (speculative, primary)
    });
    match claimed.load(Ordering::SeqCst) {
        1 => {
            speculative_won.fetch_add(1, Ordering::Relaxed);
            speculative
        }
        2 => primary.expect("claimed by primary"),
        // Neither copy succeeded: surface the primary's error when it ran
        // (its attempt id is the one the retry loop reasons about).
        _ => primary.unwrap_or(speculative),
    }
}

/// One committed map attempt: per-partition buckets of
/// `(key, sequence-tag, value)` plus the attempt's counter deltas.
struct MapCommit<K, V> {
    buckets: Vec<Vec<(K, u64, V)>>,
    emitted: u64,
    bytes: u64,
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.map_tasks > 0 && config.reduce_tasks > 0);
        let injector = config
            .fault_plan
            .clone()
            .map_or_else(FaultInjector::none, FaultInjector::new);
        Self {
            dfs: Dfs::with_faults(injector.clone()),
            metrics: Mutex::new(Vec::new()),
            injector,
            job_seq: AtomicU64::new(0),
            config,
        }
    }

    /// Runs one map-reduce job and returns the reducer outputs (in
    /// partition order, deterministic order within each partition).
    ///
    /// Panicking wrapper around [`Engine::try_run_job`] for call sites
    /// that treat job failure as fatal (a driver aborting on a failed
    /// Hadoop job).
    ///
    /// # Panics
    /// Panics with the [`JobError`] display if the job fails.
    pub fn run_job<I, K, V, O, MF, PF, RF>(
        &self,
        name: &str,
        input: &[I],
        num_partitions: usize,
        map_fn: MF,
        partition_fn: PF,
        reduce_fn: RF,
    ) -> Vec<O>
    where
        I: Sync,
        K: Ord + Send + Sync + RecordSize,
        V: Clone + Send + Sync + RecordSize,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        PF: Fn(&K, usize) -> usize + Sync,
        RF: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    {
        self.try_run_job(name, input, num_partitions, map_fn, partition_fn, reduce_fn)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one map-reduce job, surfacing task failures as a [`JobError`]
    /// instead of a panic.
    ///
    /// * `map_fn(record, emit)` — called once per input record; `emit(k, v)`
    ///   produces an intermediate pair.
    /// * `partition_fn(key, num_partitions)` — routes a key to a logical
    ///   reducer; must return a value `< num_partitions`. All pairs with
    ///   equal keys must map to the same partition (guaranteed when the
    ///   function depends only on the key).
    /// * `reduce_fn(key, values, out)` — called once per distinct key with
    ///   every value for that key, in a deterministic order (input order
    ///   within each map task, map tasks in input order).
    ///
    /// # Errors
    /// [`JobErrorKind::AttemptsExhausted`] if a task fails more than
    /// [`FaultPlan::max_attempts`] times (injected faults or user-code
    /// panics, which are isolated per attempt);
    /// [`JobErrorKind::BadPartitioner`] if the partitioner routes a key
    /// out of range (not retried — the partitioner is deterministic).
    #[allow(clippy::too_many_lines)]
    pub fn try_run_job<I, K, V, O, MF, PF, RF>(
        &self,
        name: &str,
        input: &[I],
        num_partitions: usize,
        map_fn: MF,
        partition_fn: PF,
        reduce_fn: RF,
    ) -> Result<Vec<O>, JobError>
    where
        I: Sync,
        K: Ord + Send + Sync + RecordSize,
        V: Clone + Send + Sync + RecordSize,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        PF: Fn(&K, usize) -> usize + Sync,
        RF: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    {
        assert!(num_partitions > 0, "a job needs at least one partition");
        let job = self.job_seq.fetch_add(1, Ordering::Relaxed);
        let injector = &self.injector;
        let max_attempts = injector.max_attempts();
        let job_start = Instant::now();
        let mut metrics = JobMetrics {
            job_name: name.to_string(),
            map_input_records: input.len() as u64,
            ..JobMetrics::default()
        };

        // Shared failure-tracking state for both phases.
        let job_error: Mutex<Option<JobError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let fail_job = |err: JobError| {
            job_error.lock().get_or_insert(err);
            abort.store(true, Ordering::SeqCst);
        };
        let retries = AtomicU64::new(0);
        let map_task_failures = AtomicU64::new(0);
        let reduce_task_failures = AtomicU64::new(0);
        let speculative_launched = AtomicU64::new(0);
        let speculative_won = AtomicU64::new(0);

        // ---- Map phase -------------------------------------------------
        // The input is divided into chunks; each chunk is one map *task*,
        // executed as one or more attempts. An attempt fills attempt-local
        // buckets (the mapper-side spill files of a real deployment) and
        // commits them — together with its counter deltas — only on
        // success, so logical metrics count committed work, not attempts.
        //
        // Every emitted pair carries a (task, emit-sequence) tag used as a
        // sort tiebreak in the shuffle: reducer value order then depends
        // only on the input, not on which worker claimed which chunk first
        // (and not on whether a task was retried) — reruns with equal
        // seeds see byte-identical value streams.
        let map_start = Instant::now();
        let chunk_size = input.len().div_ceil(self.config.map_tasks * 4).max(1);
        let chunks: Vec<&[I]> = input.chunks(chunk_size).collect();
        let emitted = AtomicU64::new(0);
        let shuffled_bytes = AtomicU64::new(0);
        let partitions: Vec<Mutex<Vec<(K, u64, V)>>> = (0..num_partitions)
            .map(|_| Mutex::new(Vec::new()))
            .collect();

        let run_map_attempt =
            |task: usize, attempt: u32| -> Result<MapCommit<K, V>, AttemptError> {
                // Consulted at the task boundary, applied at completion: the
                // attempt does its (discarded) work first, exercising the
                // partial-output-isolation path.
                let injected = injector.should_fail(Phase::Map, job, task, attempt);
                let chunk = chunks[task];
                let mut buckets: Vec<Vec<(K, u64, V)>> =
                    (0..num_partitions).map(|_| Vec::new()).collect();
                let mut local_emitted = 0u64;
                let mut local_bytes = 0u64;
                let mut bad_partition: Option<usize> = None;
                let base_tag = (task as u64) << 32;
                let unwind = catch_unwind(AssertUnwindSafe(|| {
                    let mut seq = 0u64;
                    for record in chunk {
                        map_fn(record, &mut |k: K, v: V| {
                            if bad_partition.is_some() {
                                return; // drain remaining emits of this record
                            }
                            let p = partition_fn(&k, num_partitions);
                            if p >= num_partitions {
                                bad_partition = Some(p);
                                return;
                            }
                            local_emitted += 1;
                            local_bytes += (k.size_bytes() + v.size_bytes()) as u64;
                            debug_assert!(seq < u64::from(u32::MAX), "emit tag overflow");
                            buckets[p].push((k, base_tag | seq, v));
                            seq += 1;
                        });
                        if bad_partition.is_some() {
                            break;
                        }
                    }
                }));
                match unwind {
                    Err(payload) => Err(AttemptError::Panic(panic_message(payload))),
                    Ok(()) => {
                        if let Some(partition) = bad_partition {
                            Err(AttemptError::BadPartition { partition })
                        } else if injected {
                            Err(AttemptError::Injected)
                        } else {
                            Ok(MapCommit {
                                buckets,
                                emitted: local_emitted,
                                bytes: local_bytes,
                            })
                        }
                    }
                }
            };

        let next_chunk = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.config.map_tasks {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let task = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if task >= chunks.len() {
                        break;
                    }
                    let mut attempt = 0u32;
                    loop {
                        let outcome = attempt_with_speculation(
                            injector,
                            Phase::Map,
                            job,
                            task,
                            attempt,
                            &speculative_launched,
                            &speculative_won,
                            &run_map_attempt,
                        );
                        match outcome {
                            Ok(commit) => {
                                for (p, bucket) in commit.buckets.into_iter().enumerate() {
                                    if !bucket.is_empty() {
                                        partitions[p].lock().extend(bucket);
                                    }
                                }
                                emitted.fetch_add(commit.emitted, Ordering::Relaxed);
                                shuffled_bytes.fetch_add(commit.bytes, Ordering::Relaxed);
                                break;
                            }
                            Err(AttemptError::BadPartition { partition }) => {
                                fail_job(JobError {
                                    job: name.to_string(),
                                    phase: Phase::Map,
                                    task,
                                    attempts: attempt + 1,
                                    kind: JobErrorKind::BadPartitioner {
                                        partition,
                                        num_partitions,
                                    },
                                });
                                break;
                            }
                            Err(e) => {
                                map_task_failures.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                if attempt >= max_attempts || abort.load(Ordering::SeqCst) {
                                    fail_job(JobError {
                                        job: name.to_string(),
                                        phase: Phase::Map,
                                        task,
                                        attempts: attempt,
                                        kind: JobErrorKind::AttemptsExhausted {
                                            last_error: e.message(),
                                        },
                                    });
                                    break;
                                }
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        if let Some(err) = job_error.lock().take() {
            return Err(err);
        }
        metrics.map_wall = map_start.elapsed();
        metrics.map_output_records = emitted.load(Ordering::Relaxed);
        metrics.reduce_input_records = metrics.map_output_records;
        metrics.shuffle_bytes = shuffled_bytes.load(Ordering::Relaxed);

        // ---- Shuffle: sort each partition by (key, emit tag) -----------
        // The tag tiebreak makes the within-group value order a pure
        // function of the input (see the map-phase comment).
        let shuffle_start = Instant::now();
        let group_counter = AtomicU64::new(0);
        let max_partition = AtomicU64::new(0);
        let next_shuffle = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let next = &next_shuffle;
            let partitions = &partitions;
            let group_counter = &group_counter;
            let max_partition = &max_partition;
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(move || loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= partitions.len() {
                        break;
                    }
                    let mut data = partitions[p].lock();
                    max_partition.fetch_max(data.len() as u64, Ordering::Relaxed);
                    data.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                    let mut groups = 0u64;
                    let mut prev: Option<&K> = None;
                    for (k, _, _) in data.iter() {
                        if prev != Some(k) {
                            groups += 1;
                            prev = Some(k);
                        }
                    }
                    group_counter.fetch_add(groups, Ordering::Relaxed);
                });
            }
        });
        metrics.shuffle_wall = shuffle_start.elapsed();
        metrics.reduce_input_groups = group_counter.load(Ordering::Relaxed);
        metrics.max_partition_records = max_partition.load(Ordering::Relaxed);

        // ---- Reduce phase ----------------------------------------------
        // Each partition is one reduce task. The partition's sorted input
        // stays in place (behind an RwLock so a speculative duplicate can
        // read it concurrently) until the task commits, so a failed
        // attempt can be replayed; values are cloned into each group per
        // attempt. The input is dropped on commit.
        let reduce_start = Instant::now();
        let partition_store: Vec<RwLock<Vec<(K, u64, V)>>> = partitions
            .into_iter()
            .map(|m| RwLock::new(m.into_inner()))
            .collect();
        let output_slots: Vec<Mutex<Vec<O>>> = (0..num_partitions)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let out_count = AtomicU64::new(0);

        let run_reduce_attempt =
            |task: usize, attempt: u32| -> Result<(Vec<O>, u64), AttemptError> {
                let injected = injector.should_fail(Phase::Reduce, job, task, attempt);
                let guard = partition_store[task].read();
                let data: &[(K, u64, V)] = &guard;
                let mut outputs = Vec::new();
                let mut local_out = 0u64;
                let unwind = catch_unwind(AssertUnwindSafe(|| {
                    let mut i = 0;
                    while i < data.len() {
                        let key = &data[i].0;
                        let mut j = i;
                        let mut values = Vec::new();
                        while j < data.len() && data[j].0 == *key {
                            values.push(data[j].2.clone());
                            j += 1;
                        }
                        reduce_fn(key, values, &mut |o: O| {
                            local_out += 1;
                            outputs.push(o);
                        });
                        i = j;
                    }
                }));
                match unwind {
                    Err(payload) => Err(AttemptError::Panic(panic_message(payload))),
                    Ok(()) => {
                        if injected {
                            Err(AttemptError::Injected)
                        } else {
                            Ok((outputs, local_out))
                        }
                    }
                }
            };

        let next_reduce = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let task = next_reduce.fetch_add(1, Ordering::Relaxed);
                    if task >= partition_store.len() {
                        break;
                    }
                    let mut attempt = 0u32;
                    loop {
                        let outcome = attempt_with_speculation(
                            injector,
                            Phase::Reduce,
                            job,
                            task,
                            attempt,
                            &speculative_launched,
                            &speculative_won,
                            &run_reduce_attempt,
                        );
                        match outcome {
                            Ok((outputs, local_out)) => {
                                out_count.fetch_add(local_out, Ordering::Relaxed);
                                *output_slots[task].lock() = outputs;
                                // Commit: the task's input is no longer
                                // needed for replay.
                                *partition_store[task].write() = Vec::new();
                                break;
                            }
                            Err(AttemptError::BadPartition { .. }) => {
                                unreachable!("partitioner does not run in the reduce phase")
                            }
                            Err(e) => {
                                reduce_task_failures.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                if attempt >= max_attempts || abort.load(Ordering::SeqCst) {
                                    fail_job(JobError {
                                        job: name.to_string(),
                                        phase: Phase::Reduce,
                                        task,
                                        attempts: attempt,
                                        kind: JobErrorKind::AttemptsExhausted {
                                            last_error: e.message(),
                                        },
                                    });
                                    break;
                                }
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        if let Some(err) = job_error.lock().take() {
            return Err(err);
        }
        metrics.reduce_wall = reduce_start.elapsed();
        metrics.reduce_output_records = out_count.load(Ordering::Relaxed);
        metrics.map_task_failures = map_task_failures.load(Ordering::Relaxed);
        metrics.reduce_task_failures = reduce_task_failures.load(Ordering::Relaxed);
        metrics.retries = retries.load(Ordering::Relaxed);
        metrics.speculative_launched = speculative_launched.load(Ordering::Relaxed);
        metrics.speculative_won = speculative_won.load(Ordering::Relaxed);
        metrics.total_wall = job_start.elapsed();
        self.metrics.lock().push(metrics);

        Ok(output_slots
            .into_iter()
            .flat_map(parking_lot::Mutex::into_inner)
            .collect())
    }

    /// Snapshot of all job metrics plus DFS counters since construction (or
    /// the last [`Engine::reset_metrics`]).
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            jobs: self.metrics.lock().clone(),
            dfs_read_bytes: self.dfs.read_bytes(),
            dfs_write_bytes: self.dfs.write_bytes(),
            dfs_transient_read_failures: self.dfs.transient_read_failures(),
        }
    }

    /// Clears accumulated job metrics and DFS counters.
    pub fn reset_metrics(&self) {
        self.metrics.lock().clear();
        self.dfs.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ForcedFault;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            fault_plan: None,
        })
    }

    fn engine_with(plan: FaultPlan) -> Engine {
        Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            fault_plan: Some(plan),
        })
    }

    #[test]
    fn word_count() {
        let e = engine();
        let input = vec!["a b a", "c b", "a"];
        let mut out = e.run_job(
            "wc",
            &input,
            3,
            |line, emit| {
                for w in line.split(' ') {
                    emit(w.to_string(), 1u32);
                }
            },
            |k, n| k.as_bytes()[0] as usize % n,
            |k, vs, out| out((k.clone(), vs.len())),
        );
        out.sort();
        assert_eq!(
            out,
            vec![("a".into(), 3usize), ("b".into(), 2), ("c".into(), 1)]
        );
    }

    #[test]
    fn metrics_count_intermediate_pairs() {
        let e = engine();
        let input: Vec<u32> = (0..100).collect();
        let _ = e.run_job(
            "double-emit",
            &input,
            8,
            |&x, emit| {
                emit(x % 8, x);
                emit((x + 1) % 8, x);
            },
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v);
                }
            },
        );
        let report = e.report();
        assert_eq!(report.num_jobs(), 1);
        let j = &report.jobs[0];
        assert_eq!(j.map_input_records, 100);
        assert_eq!(j.map_output_records, 200);
        assert_eq!(j.reduce_input_records, 200);
        assert_eq!(j.reduce_output_records, 200);
        assert_eq!(j.reduce_input_groups, 8);
        // Keys are u32 (4 bytes) and values u32 (4 bytes).
        assert_eq!(j.shuffle_bytes, 200 * 8);
        // Fault-free run: the fault counters stay zero.
        assert_eq!(j.map_task_failures, 0);
        assert_eq!(j.reduce_task_failures, 0);
        assert_eq!(j.retries, 0);
        assert_eq!(j.speculative_launched, 0);
    }

    #[test]
    fn all_values_for_a_key_meet_at_one_reducer() {
        let e = engine();
        let input: Vec<u64> = (0..1000).collect();
        let out = e.run_job(
            "group",
            &input,
            16,
            |&x, emit| emit(x % 50, x),
            |&k, n| (k as usize) % n,
            |&k, vs, out| {
                // Every value v with v % 50 == k must be present.
                let mut got: Vec<u64> = vs;
                got.sort_unstable();
                let expect: Vec<u64> = (0..1000).filter(|v| v % 50 == k).collect();
                assert_eq!(got, expect);
                out(k);
            },
        );
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn reducers_see_keys_in_sorted_order_within_partition() {
        let e = engine();
        let input: Vec<u32> = (0..200).rev().collect();
        let order = Mutex::new(Vec::new());
        let _ = e.run_job(
            "sorted",
            &input,
            1,
            |&x, emit| emit(x, ()),
            |_, _| 0,
            |&k, _, _out: &mut dyn FnMut(())| {
                order.lock().push(k);
            },
        );
        let order = order.into_inner();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn reducer_value_order_deterministic_across_runs() {
        // The (task, emit-sequence) shuffle tiebreak: the value stream of
        // each key group is a pure function of the input, not of racy
        // chunk-claim order.
        let runs: Vec<Vec<u32>> = (0..8)
            .map(|_| {
                let e = engine();
                let input: Vec<u32> = (0..500).collect();
                let seen = Mutex::new(Vec::new());
                let _ = e.run_job(
                    "order",
                    &input,
                    4,
                    |&x, emit| emit(x % 7, x),
                    |&k, n| k as usize % n,
                    |_, vs, _out: &mut dyn FnMut(())| {
                        seen.lock().extend(vs);
                    },
                );
                seen.into_inner()
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run, &runs[0]);
        }
    }

    #[test]
    fn empty_input_produces_no_output() {
        let e = engine();
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = e.run_job(
            "empty",
            &input,
            4,
            |&x, emit| emit(x, x),
            |&k, n| k as usize % n,
            |&k, _, out| out(k),
        );
        assert!(out.is_empty());
        assert_eq!(e.report().jobs[0].map_output_records, 0);
    }

    #[test]
    fn chained_jobs_account_dfs_traffic() {
        let e = engine();
        let input: Vec<u32> = (0..10).collect();
        let stage1: Vec<u32> = e.run_job(
            "stage1",
            &input,
            2,
            |&x, emit| emit(x % 2, x),
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v * 2);
                }
            },
        );
        e.dfs.write("intermediate", stage1);
        let stage2_input = e.dfs.read::<u32>("intermediate").unwrap();
        let out: Vec<u32> = e.run_job(
            "stage2",
            &stage2_input,
            2,
            |&x, emit| emit(x % 2, x),
            |&k, n| k as usize % n,
            |_, vs, out| {
                for v in vs {
                    out(v);
                }
            },
        );
        assert_eq!(out.len(), 10);
        let report = e.report();
        assert_eq!(report.num_jobs(), 2);
        assert_eq!(report.dfs_write_bytes, 40);
        assert_eq!(report.dfs_read_bytes, 40);
    }

    #[test]
    fn reset_metrics_clears_everything() {
        let e = engine();
        let input = vec![1u32];
        let _ = e.run_job(
            "j",
            &input,
            1,
            |&x, emit| emit(x, x),
            |_, _| 0,
            |&k, _, out| out(k),
        );
        e.dfs.write("d", vec![1u8]);
        e.reset_metrics();
        let r = e.report();
        assert_eq!(r.num_jobs(), 0);
        assert_eq!(r.dfs_write_bytes, 0);
    }

    #[test]
    fn bad_partitioner_is_a_job_error() {
        let e = engine();
        let input = vec![1u32];
        let err = e
            .try_run_job(
                "bad",
                &input,
                2,
                |&x, emit| emit(x, x),
                |_, _| 7,
                |&k, _, out: &mut dyn FnMut(u32)| out(k),
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Map);
        assert_eq!(
            err.kind,
            JobErrorKind::BadPartitioner {
                partition: 7,
                num_partitions: 2
            }
        );
        assert!(err.to_string().contains("partition_fn returned 7 >= 2"));
    }

    #[test]
    #[should_panic(expected = "partition_fn returned")]
    fn bad_partitioner_panics_via_run_job() {
        let e = engine();
        let input = vec![1u32];
        let _ = e.run_job(
            "bad",
            &input,
            2,
            |&x, emit| emit(x, x),
            |_, _| 7,
            |&k, _, out| out(k),
        );
    }

    #[test]
    fn injected_map_fault_is_retried_transparently() {
        let plan = FaultPlan::none().with_forced(vec![ForcedFault {
            phase: Phase::Map,
            task: 0,
            attempts: 1,
        }]);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..100).collect();
        let mut out = e.run_job(
            "retry",
            &input,
            4,
            |&x, emit| emit(x, x),
            |&k, n| k as usize % n,
            |&k, _, out| out(k),
        );
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        let j = &e.report().jobs[0];
        assert_eq!(j.map_task_failures, 1);
        assert_eq!(j.retries, 1);
        // The retried task committed exactly once: no double-emits.
        assert_eq!(j.map_output_records, 100);
    }

    #[test]
    fn exhausted_attempts_surface_a_job_error() {
        let plan = FaultPlan::none()
            .with_forced(vec![ForcedFault {
                phase: Phase::Reduce,
                task: 1,
                attempts: u32::MAX,
            }])
            .with_max_attempts(3);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..10).collect();
        let err = e
            .try_run_job(
                "doomed",
                &input,
                4,
                |&x, emit| emit(x, x),
                |&k, n| k as usize % n,
                |&k, _, out: &mut dyn FnMut(u32)| out(k),
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Reduce);
        assert_eq!(err.task, 1);
        assert_eq!(err.attempts, 3);
        let s = err.to_string();
        assert!(
            s.contains("reduce task 1") && s.contains("injected fault"),
            "{s}"
        );
    }

    #[test]
    fn user_panic_is_isolated_and_reported() {
        let e = engine();
        let input: Vec<u32> = (0..10).collect();
        let err = e
            .try_run_job(
                "panicky",
                &input,
                2,
                |&x, emit| emit(x, x),
                |&k, n| k as usize % n,
                |&k, _, _out: &mut dyn FnMut(u32)| {
                    if k == 3 {
                        panic!("reducer exploded on key {k}");
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Reduce);
        assert_eq!(err.attempts, FaultPlan::DEFAULT_MAX_ATTEMPTS);
        assert!(err.to_string().contains("reducer exploded"), "{err}");
    }

    #[test]
    fn stragglers_launch_speculative_attempts() {
        let mut plan = FaultPlan::chaos(13, 0.0, 1.0);
        plan.straggler_delay = std::time::Duration::from_millis(2);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..200).collect();
        let mut out = e.run_job(
            "slow",
            &input,
            4,
            |&x, emit| emit(x, x),
            |&k, n| k as usize % n,
            |&k, _, out| out(k),
        );
        out.sort_unstable();
        assert_eq!(out.len(), 200);
        let j = &e.report().jobs[0];
        assert!(j.speculative_launched > 0);
        assert!(j.speculative_won <= j.speculative_launched);
        // Speculation must not distort the logical counters.
        assert_eq!(j.map_output_records, 200);
        assert_eq!(j.reduce_output_records, 200);
    }
}
