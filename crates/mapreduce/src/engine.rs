use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::fault::{FaultInjector, FaultPlan, JobErrorKind, Phase};
use crate::metrics::MetricsHub;
use crate::schedule::{CancelToken, SlotScheduler};
use crate::trace::{AttemptOutcome, RaceWinner, SpanPhase, TraceEvent, TraceSink};
use crate::{Dfs, JobError, JobMetrics, MetricsReport, RecordSize, RunFrame};

/// Engine configuration: degrees of parallelism for the two phases, plus
/// an optional fault-injection plan and an engine-wide [`TraceSink`].
///
/// The paper's cluster runs 16 cores with 64 reduce *slots*; here
/// `reduce_tasks` is the number of worker threads executing reducers, while
/// the number of logical reducers (partitions) is chosen per job — the join
/// algorithms use one partition per grid cell.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for the map phase.
    pub map_tasks: usize,
    /// Worker threads for the reduce phase.
    pub reduce_tasks: usize,
    /// Faults to inject into every job (`None` runs fault-free). See
    /// [`FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
    /// Engine-wide trace sink: every job records its spans here unless the
    /// [`JobSpec`] carries its own sink. Disabled (free) by default.
    pub trace: TraceSink,
    /// Task slots in the shared [`SlotScheduler`] pool gating concurrent
    /// task execution across *all* jobs this engine runs. `0` (the
    /// default) sizes the pool to `max(map_tasks, reduce_tasks)`, so a
    /// solo job runs at full parallelism and never queues — concurrency
    /// only matters when several jobs are submitted at once.
    pub slots: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            map_tasks: n,
            reduce_tasks: n,
            fault_plan: None,
            trace: TraceSink::disabled(),
            slots: 0,
        }
    }
}

impl EngineConfig {
    /// Attaches a fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches an engine-wide trace sink.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the shared task-slot pool size (see [`EngineConfig::slots`]).
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }
}

/// Placeholder for a [`JobSpec`] stage that has not been set yet.
///
/// `Engine::run` requires the map, partition and reduce functions, so a
/// spec still carrying `Unset` in one of those slots fails to compile at
/// the submission site rather than at run time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unset;

/// A declarative description of one map-reduce job, built fluently and
/// submitted with [`Engine::run`].
///
/// ```
/// use mwsj_mapreduce::{Engine, EngineConfig, JobSpec};
///
/// let engine = Engine::new(EngineConfig::default());
/// let words = vec!["a b", "b c", "c b"];
/// let mut counts = engine
///     .run(
///         JobSpec::new("word-count")
///             .reducers(4)
///             .map(|line: &&str, emit| {
///                 for w in line.split(' ') {
///                     emit(w.to_string(), 1u64);
///                 }
///             })
///             .partition(|key: &String, n| key.len() % n)
///             .reduce(|word: &String, ones: &[u64], out| {
///                 out((word.clone(), ones.len() as u64));
///             }),
///         &words,
///     )
///     .unwrap();
/// counts.sort();
/// assert_eq!(counts, vec![("a".into(), 1), ("b".into(), 3), ("c".into(), 2)]);
/// ```
///
/// The closures are type-checked at their builder call (not at the
/// submission site), so their key/value argument types are occasionally
/// not inferable from context — annotate them where the compiler asks (as
/// in the example above). Beyond the three stage functions, the builder
/// carries a per-job [`FaultPlan`] override ([`JobSpec::fault_plan`]) and
/// a per-job [`TraceSink`] ([`JobSpec::trace`]).
#[derive(Debug, Clone)]
pub struct JobSpec<MF = Unset, PF = Unset, RF = Unset> {
    name: String,
    reducers: usize,
    map_fn: MF,
    partition_fn: PF,
    reduce_fn: RF,
    fault_plan: Option<FaultPlan>,
    trace: TraceSink,
    priority: i32,
    share: u32,
    cancel: CancelToken,
    collect: Option<MetricsHub>,
    input_fingerprint: u64,
}

impl JobSpec {
    /// Starts a spec for a job with the given name, one reducer, no fault
    /// override, no per-job trace sink, default scheduling (priority 0,
    /// share 1) and a fresh, never-cancelled [`CancelToken`].
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            reducers: 1,
            map_fn: Unset,
            partition_fn: Unset,
            reduce_fn: Unset,
            fault_plan: None,
            trace: TraceSink::disabled(),
            priority: 0,
            share: 1,
            cancel: CancelToken::new(),
            collect: None,
            input_fingerprint: 0,
        }
    }
}

impl<MF, PF, RF> JobSpec<MF, PF, RF> {
    /// Sets the number of logical reducers (shuffle partitions). The
    /// partitioner must route every key below this count.
    #[must_use]
    pub fn reducers(mut self, reducers: usize) -> Self {
        self.reducers = reducers;
        self
    }

    /// Sets the mapper: called once per input record, emitting intermediate
    /// `(key, value)` pairs through `emit`.
    #[must_use]
    pub fn map<I, K, V, F>(self, map_fn: F) -> JobSpec<F, PF, RF>
    where
        F: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    {
        JobSpec {
            name: self.name,
            reducers: self.reducers,
            map_fn,
            partition_fn: self.partition_fn,
            reduce_fn: self.reduce_fn,
            fault_plan: self.fault_plan,
            trace: self.trace,
            priority: self.priority,
            share: self.share,
            cancel: self.cancel,
            collect: self.collect,
            input_fingerprint: self.input_fingerprint,
        }
    }

    /// Sets the partitioner: routes a key to a logical reducer; must return
    /// a value below the reducer count, and must depend only on the key so
    /// that equal keys meet at one reducer.
    #[must_use]
    pub fn partition<K, F>(self, partition_fn: F) -> JobSpec<MF, F, RF>
    where
        F: Fn(&K, usize) -> usize + Sync,
    {
        JobSpec {
            name: self.name,
            reducers: self.reducers,
            map_fn: self.map_fn,
            partition_fn,
            reduce_fn: self.reduce_fn,
            fault_plan: self.fault_plan,
            trace: self.trace,
            priority: self.priority,
            share: self.share,
            cancel: self.cancel,
            collect: self.collect,
            input_fingerprint: self.input_fingerprint,
        }
    }

    /// Sets the reducer: called once per distinct key with every value for
    /// that key in a deterministic order (input order within each map task,
    /// map tasks in input order), emitting outputs through `out`.
    ///
    /// The values arrive as a borrowed slice of the merged shuffle buffer —
    /// the engine never clones them, and a retried or speculative attempt
    /// re-reads the same immutable slice.
    #[must_use]
    pub fn reduce<K, V, O, F>(self, reduce_fn: F) -> JobSpec<MF, PF, F>
    where
        F: Fn(&K, &[V], &mut dyn FnMut(O)) + Sync,
    {
        JobSpec {
            name: self.name,
            reducers: self.reducers,
            map_fn: self.map_fn,
            partition_fn: self.partition_fn,
            reduce_fn,
            fault_plan: self.fault_plan,
            trace: self.trace,
            priority: self.priority,
            share: self.share,
            cancel: self.cancel,
            collect: self.collect,
            input_fingerprint: self.input_fingerprint,
        }
    }

    /// Overrides the engine's fault plan for this job only (the engine's
    /// DFS keeps its own injector — a per-job plan governs task faults,
    /// stragglers and the attempt budget of this job).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Records this job's spans into the given sink instead of the
    /// engine-wide one ([`EngineConfig::trace`]). Passing a disabled sink
    /// leaves the engine-wide sink in effect.
    #[must_use]
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the scheduling priority (default 0). When slots are contended,
    /// waiting tasks of a higher-priority job always go first.
    #[must_use]
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fair-share weight (default 1; clamped to ≥ 1). Among
    /// equal-priority jobs, slots are granted to keep each job's share of
    /// the pool proportional to this weight.
    #[must_use]
    pub fn share(mut self, share: u32) -> Self {
        self.share = share.max(1);
        self
    }

    /// Attaches a cancellation token. The engine checks it at every task
    /// boundary (map chunk claim, shuffle partition claim, reduce partition
    /// claim and before each retry): a tripped token fails the job with
    /// [`JobErrorKind::Cancelled`] within one task granularity, with no
    /// retries and all slots released.
    #[must_use]
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets a deadline `timeout` from now on the job's [`CancelToken`] —
    /// past it the job is cancelled with `deadline_exceeded` set.
    #[must_use]
    pub fn deadline(self, timeout: Duration) -> Self {
        self.cancel.deadline_in(timeout);
        self
    }

    /// Delivers this job's final [`JobMetrics`] to the given hub *instead
    /// of* the engine-global metrics vector — the per-run collection
    /// channel for concurrent submitters (and it keeps a long-lived
    /// service from accumulating unbounded job history).
    #[must_use]
    pub fn collect_into(mut self, hub: MetricsHub) -> Self {
        self.collect = Some(hub);
        self
    }

    /// Attaches the input dataset's stable fingerprint
    /// ([`DatasetFingerprint`](crate::DatasetFingerprint)`.0`), surfaced
    /// verbatim in [`JobMetrics::input_fingerprint`] and the trace counters.
    #[must_use]
    pub fn input_fingerprint(mut self, fingerprint: u64) -> Self {
        self.input_fingerprint = fingerprint;
        self
    }
}

/// The map-reduce engine: runs jobs, owns the [`Dfs`], accumulates
/// [`JobMetrics`].
///
/// # Fault tolerance
///
/// Each map chunk and each reduce partition executes as a **task
/// attempt**: user code runs under `catch_unwind`, output goes to
/// attempt-local buffers, and only a *successful* attempt commits its
/// buffers and counter deltas — so a retried task never double-emits and
/// the logical counters are byte-identical with or without faults. Tasks
/// are retried up to [`FaultPlan::max_attempts`] times; attempts flagged
/// as stragglers by the [`FaultInjector`] race a speculative duplicate
/// attempt (paced by [`FaultPlan::speculative_slowstart`]), first
/// successful completion wins. A task that exhausts its attempts fails the
/// job with a [`JobError`] naming the phase and task.
///
/// # Observability
///
/// When a [`TraceSink`] is attached (engine-wide via
/// [`EngineConfig::with_trace`] or per job via [`JobSpec::trace`]), every
/// job records a span tree — job → phase → task attempt, with retry and
/// speculation outcome tags — plus a final counter snapshot equal to the
/// job's [`JobMetrics`]. Tracing never perturbs the logical counters.
pub struct Engine {
    config: EngineConfig,
    /// The distributed file system shared by chained jobs.
    pub dfs: Dfs,
    metrics: Mutex<Vec<JobMetrics>>,
    injector: FaultInjector,
    job_seq: AtomicU64,
    scheduler: Arc<SlotScheduler>,
}

/// Why one task attempt did not commit.
enum AttemptError {
    /// The [`FaultInjector`] failed this attempt; its output was discarded.
    Injected,
    /// User code panicked; the panic was isolated to the attempt.
    Panic(String),
    /// The partitioner routed a key out of range (not retryable).
    BadPartition { partition: usize },
    /// A committed spill run failed integrity verification on shuffle
    /// open; the producing map attempt is re-executed.
    CorruptRun,
}

impl AttemptError {
    fn message(&self) -> String {
        match self {
            AttemptError::Injected => "injected fault".to_string(),
            AttemptError::Panic(m) => format!("task panicked: {m}"),
            AttemptError::BadPartition { partition } => {
                format!("partitioner returned out-of-range partition {partition}")
            }
            AttemptError::CorruptRun => {
                "corrupt spill run: integrity frame mismatch on shuffle open".to_string()
            }
        }
    }

    fn outcome(&self) -> AttemptOutcome {
        match self {
            AttemptError::Injected => AttemptOutcome::InjectedFault,
            AttemptError::Panic(_) => AttemptOutcome::Panicked,
            AttemptError::BadPartition { .. } => AttemptOutcome::BadPartition,
            AttemptError::CorruptRun => AttemptOutcome::CorruptRun,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Attempt ids of speculative duplicates get this bit so their fault
/// decisions are independent draws from their primary's.
const SPECULATIVE_BIT: u32 = 1 << 31;

/// Attempt ids of map re-executions triggered by a corrupt spill run get
/// this bit, so the replacement attempt draws fresh fault decisions
/// instead of replaying the (successful) original's.
const REEXEC_BIT: u32 = 1 << 30;

/// Median of the committed task durations seen so far (None when empty).
fn median(durations: &[Duration]) -> Option<Duration> {
    if durations.is_empty() {
        return None;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    Some(sorted[sorted.len() / 2])
}

/// Per-phase context shared by every task of the phase: fault decisions,
/// tracing, speculation counters, and the committed-duration samples that
/// drive slow-start pacing.
struct TaskCtx<'a> {
    injector: &'a FaultInjector,
    sink: &'a TraceSink,
    phase: Phase,
    job: u64,
    /// Durations of committed attempts in this phase (work time only — the
    /// injected straggler sleep happens outside the attempt body), feeding
    /// the median for slow-start pacing.
    completed: &'a Mutex<Vec<Duration>>,
    speculative_launched: &'a AtomicU64,
    speculative_won: &'a AtomicU64,
}

/// Runs one task attempt, racing a speculative duplicate when the
/// injector flags the attempt as a straggler. First successful completion
/// wins; the loser's output is discarded. `run` must be pure up to its
/// commit (it is: attempts write only attempt-local buffers).
///
/// With a non-zero [`FaultPlan::speculative_slowstart`] the duplicate is
/// *paced*: it launches only after the straggling primary has been running
/// longer than `slowstart × median committed task time` — mirroring
/// Hadoop, which speculates only on tasks well behind their peers. With a
/// multiplier of zero, or before any task of the phase has committed
/// (no median), the duplicate launches immediately.
fn attempt_with_speculation<T, F>(
    ctx: &TaskCtx<'_>,
    task: usize,
    attempt: u32,
    run: &F,
) -> Result<T, AttemptError>
where
    T: Send,
    F: Fn(usize, u32) -> Result<T, AttemptError> + Sync,
{
    let Some(delay) = ctx
        .injector
        .straggler_delay(ctx.phase, ctx.job, task, attempt)
    else {
        return run(task, attempt);
    };
    let slowstart = ctx.injector.slowstart();
    let threshold = if slowstart > 0.0 {
        median(&ctx.completed.lock()).map(|m| m.mul_f64(slowstart))
    } else {
        None
    };

    // 0 = unclaimed, 1 = speculative committed, 2 = primary committed.
    let claimed = AtomicU8::new(0);
    // Signals the primary attempt's completion to the pacing wait below.
    let primary_done = (std::sync::Mutex::new(false), std::sync::Condvar::new());
    let (speculative, primary) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            // The primary attempt straggles: it sleeps out its injected
            // delay and only executes if a speculative copy has not
            // finished yet.
            std::thread::sleep(delay);
            let result = if claimed.load(Ordering::SeqCst) == 0 {
                let r = run(task, attempt);
                if r.is_ok() {
                    let _ = claimed.compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst);
                }
                Some(r)
            } else {
                None
            };
            *primary_done.0.lock().expect("primary_done poisoned") = true;
            primary_done.1.notify_all();
            result
        });

        // Slow-start pacing: give the straggler its head start before
        // committing a duplicate's worth of work.
        let launch_speculative = match threshold {
            None => true,
            Some(limit) => {
                let (lock, condvar) = &primary_done;
                let deadline = Instant::now() + limit;
                let mut done = lock.lock().expect("primary_done poisoned");
                while !*done {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = condvar
                        .wait_timeout(done, deadline - now)
                        .expect("primary_done poisoned");
                    done = guard;
                }
                !*done
            }
        };

        let speculative = if launch_speculative {
            ctx.speculative_launched.fetch_add(1, Ordering::Relaxed);
            let r = run(task, attempt | SPECULATIVE_BIT);
            if r.is_ok() {
                let _ = claimed.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
            }
            Some(r)
        } else {
            None
        };
        let primary = handle.join().unwrap_or(Some(Err(AttemptError::Panic(
            "primary attempt died".into(),
        ))));
        (speculative, primary)
    });

    let resolved = |winner: RaceWinner| {
        if speculative.is_some() {
            ctx.sink.record(TraceEvent::SpeculationResolved {
                job: ctx.job,
                phase: ctx.phase,
                task,
                attempt,
                winner,
                ts: ctx.sink.now_micros(),
            });
        }
    };
    match claimed.load(Ordering::SeqCst) {
        1 => {
            ctx.speculative_won.fetch_add(1, Ordering::Relaxed);
            resolved(RaceWinner::Speculative);
            speculative.expect("claimed by speculative")
        }
        2 => {
            resolved(RaceWinner::Primary);
            primary.expect("claimed by primary")
        }
        // Neither copy succeeded: surface the primary's error when it ran
        // (its attempt id is the one the retry loop reasons about).
        _ => {
            resolved(RaceWinner::Neither);
            primary
                .or(speculative)
                .expect("at least one copy of the attempt ran")
        }
    }
}

/// One committed map attempt: per-partition *sorted runs* of
/// `(key, sequence-tag, value)` plus the attempt's counter deltas. Each
/// non-empty bucket is already sorted by `(key, tag)` — the mapper-side
/// sorted spill of a real deployment — and `sort` is the time that
/// sorting took inside the attempt.
struct MapCommit<K, V> {
    buckets: Vec<Vec<(K, u64, V)>>,
    emitted: u64,
    bytes: u64,
    sort: Duration,
}

/// One committed spill run: a sorted `(key, tag, value)` run sealed under
/// a [`RunFrame`] integrity frame at commit, verified when the shuffle
/// opens it. `task` names the producing map task — the unit re-executed
/// if verification fails (the reader cannot repair at-rest corruption;
/// only the producer can regenerate the data).
struct SpillRun<K, V> {
    task: usize,
    frame: RunFrame,
    records: Vec<(K, u64, V)>,
}

/// The sorted spill runs committed to one partition: one framed run per
/// successful map attempt that routed anything here.
type RunSet<K, V> = Vec<SpillRun<K, V>>;

/// A shuffled partition after the k-way merge: the distinct keys with the
/// start offset of each key's value range, plus every value laid out
/// contiguously in merged `(key, tag)` order. Group `i` owns
/// `values[groups[i].1 .. groups[i + 1].1]` (through the end for the last
/// group), so reducers borrow slices instead of cloning per attempt.
struct MergedPartition<K, V> {
    groups: Vec<(K, usize)>,
    values: Vec<V>,
}

impl<K, V> MergedPartition<K, V> {
    fn empty() -> Self {
        Self {
            groups: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Calls `f(key, group-values)` once per group, in key order.
    fn for_each_group(&self, mut f: impl FnMut(&K, &[V])) {
        for (i, (key, start)) in self.groups.iter().enumerate() {
            let end = self.groups.get(i + 1).map_or(self.values.len(), |g| g.1);
            f(key, &self.values[*start..end]);
        }
    }
}

/// K-way merges the sorted spill runs of one partition, computing group
/// boundaries on the fly (no second grouping pass).
///
/// Every run is sorted by `(key, tag)` and the tags are globally unique,
/// so the merged order — and therefore every reducer's value stream — is a
/// pure function of the committed data, independent of the order in which
/// map tasks committed their runs.
///
/// The k-way merge is a *cascade* of two-way merges: adjacent run pairs
/// merge until at most two remain, and a final pass writes the grouped
/// output directly. Each two-way step peeks both runs' ends with
/// [`last`](slice::last) and consumes with [`Vec::pop`] — exactly one
/// record move per element per level, `⌈log₂ k⌉` levels in total. To keep
/// `pop()` yielding the *next* record, the cascade alternates orientation:
/// ascending runs merge (largest-first) into descending runs and vice
/// versa, with no reversal pass in between. With zero or one runs the
/// merge degenerates to a comparison-free unzip of the already-sorted
/// data.
fn merge_sorted_runs<K: Ord, V>(mut runs: Vec<Vec<(K, u64, V)>>) -> MergedPartition<K, V> {
    runs.retain(|r| !r.is_empty());
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = MergedPartition {
        groups: Vec::new(),
        values: Vec::with_capacity(total),
    };
    let push = |out: &mut MergedPartition<K, V>, k: K, v: V| {
        if out.groups.last().is_none_or(|(g, _)| *g != k) {
            out.groups.push((k, out.values.len()));
        }
        out.values.push(v);
    };
    if runs.len() <= 1 {
        for (k, _, v) in runs.pop().unwrap_or_default() {
            push(&mut out, k, v);
        }
        return out;
    }
    // Cascade down to two runs, flipping orientation per level. Mapper
    // runs arrive ascending.
    let mut ascending = true;
    while runs.len() > 2 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b, ascending)),
                None => {
                    // An unpaired run must flip orientation to match its
                    // new level.
                    let mut a = a;
                    a.reverse();
                    next.push(a);
                }
            }
        }
        runs = next;
        ascending = !ascending;
    }
    // Final pass: a two-way merge over *descending* runs (pop = smallest
    // remaining) emitting the grouped ascending output directly.
    let mut b = runs.pop().expect("two runs");
    let mut a = runs.pop().expect("two runs");
    if ascending {
        a.reverse();
        b.reverse();
    }
    loop {
        let take_a = match (a.last(), b.last()) {
            (Some(p), Some(q)) => (&p.0, p.1) <= (&q.0, q.1),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (k, _, v) = if take_a { a.pop() } else { b.pop() }.expect("peeked non-empty");
        push(&mut out, k, v);
    }
    out
}

/// One cascade step: merges two same-orientation runs into one run of the
/// *opposite* orientation, peeking at the poppable ends so every element
/// moves exactly once. Tags are globally unique, so ties cannot occur and
/// the merged order is independent of which run is `a`.
fn merge_two<K: Ord, V>(
    mut a: Vec<(K, u64, V)>,
    mut b: Vec<(K, u64, V)>,
    ascending: bool,
) -> Vec<(K, u64, V)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    loop {
        let take_a = match (a.last(), b.last()) {
            // Ascending inputs pop largest-first (descending output);
            // descending inputs pop smallest-first (ascending output).
            (Some(p), Some(q)) => ((&p.0, p.1) <= (&q.0, q.1)) != ascending,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Popping the survivor's tail end-to-front preserves the
            // output orientation.
            (None, None) => return out,
        };
        let other_empty = if take_a { b.is_empty() } else { a.is_empty() };
        let from = if take_a { &mut a } else { &mut b };
        if other_empty {
            out.extend(from.drain(..).rev());
            return out;
        }
        out.push(from.pop().expect("peeked non-empty"));
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.map_tasks > 0 && config.reduce_tasks > 0);
        let injector = config
            .fault_plan
            .clone()
            .map_or_else(FaultInjector::none, FaultInjector::new);
        let slots = if config.slots == 0 {
            config.map_tasks.max(config.reduce_tasks)
        } else {
            config.slots
        };
        Self {
            dfs: Dfs::with_faults(injector.clone()),
            metrics: Mutex::new(Vec::new()),
            injector,
            job_seq: AtomicU64::new(0),
            scheduler: Arc::new(SlotScheduler::new(slots)),
            config,
        }
    }

    /// The shared fair-share slot scheduler gating task execution across
    /// every job this engine runs (exposed for introspection: pool size,
    /// free slots).
    #[must_use]
    pub fn scheduler(&self) -> &SlotScheduler {
        &self.scheduler
    }

    /// Runs the job described by `spec` over `input`, returning the
    /// reducer outputs (in partition order, deterministic order within
    /// each partition).
    ///
    /// * the spec's *mapper* is called once per input record; `emit(k, v)`
    ///   produces an intermediate pair;
    /// * the *partitioner* routes a key to a logical reducer and must
    ///   return a value below [`JobSpec::reducers`]. All pairs with equal
    ///   keys must map to the same partition (guaranteed when the function
    ///   depends only on the key);
    /// * the *reducer* is called once per distinct key with every value
    ///   for that key, in a deterministic order (input order within each
    ///   map task, map tasks in input order).
    ///
    /// # Errors
    /// [`JobErrorKind::AttemptsExhausted`] if a task fails more than
    /// [`FaultPlan::max_attempts`] times (injected faults or user-code
    /// panics, which are isolated per attempt);
    /// [`JobErrorKind::BadPartitioner`] if the partitioner routes a key
    /// out of range (not retried — the partitioner is deterministic);
    /// [`JobErrorKind::Cancelled`] if the job's [`CancelToken`] trips
    /// (explicitly or by deadline) — detected at the next task boundary,
    /// never retried, all slots released.
    #[allow(clippy::too_many_lines)]
    pub fn run<I, K, V, O, MF, PF, RF>(
        &self,
        spec: JobSpec<MF, PF, RF>,
        input: &[I],
    ) -> Result<Vec<O>, JobError>
    where
        I: Sync,
        K: Ord + Send + Sync + RecordSize,
        V: Send + Sync + RecordSize,
        O: Send,
        MF: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
        PF: Fn(&K, usize) -> usize + Sync,
        RF: Fn(&K, &[V], &mut dyn FnMut(O)) + Sync,
    {
        let JobSpec {
            name,
            reducers: num_partitions,
            map_fn,
            partition_fn,
            reduce_fn,
            fault_plan,
            trace,
            priority,
            share,
            cancel,
            collect,
            input_fingerprint,
        } = spec;
        let name = name.as_str();
        assert!(num_partitions > 0, "a job needs at least one partition");

        // A per-job fault plan overrides the engine's injector for task
        // decisions (the DFS keeps the engine-wide injector); a per-job
        // sink overrides the engine-wide one.
        let job_injector = fault_plan.map(FaultInjector::new);
        let injector = job_injector.as_ref().unwrap_or(&self.injector);
        let sink = if trace.is_enabled() {
            &trace
        } else {
            &self.config.trace
        };

        let job = self.job_seq.fetch_add(1, Ordering::Relaxed);
        let max_attempts = injector.max_attempts();
        let job_start = Instant::now();
        sink.record(TraceEvent::JobStart {
            job,
            name: name.to_string(),
            ts: sink.now_micros(),
        });
        let fail = |err: JobError| {
            sink.record(TraceEvent::JobEnd {
                job,
                ts: sink.now_micros(),
                error: Some(err.to_string()),
            });
            Err(err)
        };
        let mut metrics = JobMetrics {
            job_name: name.to_string(),
            map_input_records: input.len() as u64,
            input_fingerprint,
            ..JobMetrics::default()
        };

        // Fair-share scheduling: every concurrently running task of this
        // job holds one slot of the shared pool; the guard unregisters the
        // job on every exit path.
        let scheduler = &*self.scheduler;
        let _registration = scheduler.register(job, priority, share);
        let queue_wait_nanos = AtomicU64::new(0);
        let slot_nanos = AtomicU64::new(0);
        let cancel = &cancel;
        let cancel_error = |phase: Phase, task: usize, attempts: u32| JobError {
            job: name.to_string(),
            phase,
            task,
            attempts,
            kind: JobErrorKind::Cancelled {
                deadline_exceeded: cancel.cancelled_by_deadline(),
            },
        };
        if cancel.is_cancelled() {
            return fail(cancel_error(Phase::Map, 0, 0));
        }

        // Shared failure-tracking state for both phases.
        let job_error: Mutex<Option<JobError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let fail_job = |err: JobError| {
            job_error.lock().get_or_insert(err);
            abort.store(true, Ordering::SeqCst);
        };
        let retries = AtomicU64::new(0);
        let map_task_failures = AtomicU64::new(0);
        let reduce_task_failures = AtomicU64::new(0);
        let speculative_launched = AtomicU64::new(0);
        let speculative_won = AtomicU64::new(0);
        let map_completed: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
        let reduce_completed: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

        // ---- Map phase -------------------------------------------------
        // The input is divided into chunks; each chunk is one map *task*,
        // executed as one or more attempts. An attempt fills attempt-local
        // buckets (the mapper-side spill files of a real deployment),
        // sorts each bucket by (key, tag) — the mapper-side sorted spill,
        // parallel across map workers — and commits the sorted buckets as
        // immutable *runs*, together with its counter deltas, only on
        // success. Logical metrics count committed work, not attempts.
        //
        // Every emitted pair carries a (task, emit-sequence) tag used as a
        // sort tiebreak in the shuffle: reducer value order then depends
        // only on the input, not on which worker claimed which chunk first
        // (and not on whether a task was retried) — reruns with equal
        // seeds see byte-identical value streams.
        let map_start = Instant::now();
        sink.record(TraceEvent::PhaseStart {
            job,
            phase: SpanPhase::Map,
            ts: sink.now_micros(),
        });
        let chunk_size = input.len().div_ceil(self.config.map_tasks * 4).max(1);
        let chunks: Vec<&[I]> = input.chunks(chunk_size).collect();
        let emitted = AtomicU64::new(0);
        let shuffled_bytes = AtomicU64::new(0);
        let sort_nanos = AtomicU64::new(0);
        let spill_runs = AtomicU64::new(0);
        let corrupt_runs = AtomicU64::new(0);
        let partitions: Vec<Mutex<RunSet<K, V>>> = (0..num_partitions)
            .map(|_| Mutex::new(Vec::new()))
            .collect();

        let run_map_attempt =
            |task: usize, attempt: u32| -> Result<MapCommit<K, V>, AttemptError> {
                // Consulted at the task boundary, applied at completion: the
                // attempt does its (discarded) work first, exercising the
                // partial-output-isolation path.
                let injected = injector.should_fail(Phase::Map, job, task, attempt);
                let t0 = Instant::now();
                let ts0 = sink.now_micros();
                let chunk = chunks[task];
                let mut buckets: Vec<Vec<(K, u64, V)>> =
                    (0..num_partitions).map(|_| Vec::new()).collect();
                let mut local_emitted = 0u64;
                let mut local_bytes = 0u64;
                let mut bad_partition: Option<usize> = None;
                let base_tag = (task as u64) << 32;
                let unwind = catch_unwind(AssertUnwindSafe(|| {
                    let mut seq = 0u64;
                    for record in chunk {
                        map_fn(record, &mut |k: K, v: V| {
                            if bad_partition.is_some() {
                                return; // drain remaining emits of this record
                            }
                            let p = partition_fn(&k, num_partitions);
                            if p >= num_partitions {
                                bad_partition = Some(p);
                                return;
                            }
                            local_emitted += 1;
                            local_bytes += (k.size_bytes() + v.size_bytes()) as u64;
                            debug_assert!(seq < u64::from(u32::MAX), "emit tag overflow");
                            buckets[p].push((k, base_tag | seq, v));
                            seq += 1;
                        });
                        if bad_partition.is_some() {
                            break;
                        }
                    }
                }));
                let result = match unwind {
                    Err(payload) => Err(AttemptError::Panic(panic_message(payload))),
                    Ok(()) => {
                        if let Some(partition) = bad_partition {
                            Err(AttemptError::BadPartition { partition })
                        } else if injected {
                            Err(AttemptError::Injected)
                        } else {
                            // Mapper-side sorted spill: each bucket leaves
                            // the attempt already in (key, tag) order, so
                            // the shuffle only merges. The sort runs
                            // inside the attempt — parallel across map
                            // workers and counted in its work time.
                            let st = Instant::now();
                            for bucket in &mut buckets {
                                // A bucket is appended in emit order, i.e.
                                // already sorted by tag — a *stable* sort
                                // on the key alone yields (key, tag) order
                                // with key-only comparisons.
                                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                            }
                            let sort = st.elapsed();
                            map_completed.lock().push(t0.elapsed());
                            Ok(MapCommit {
                                buckets,
                                emitted: local_emitted,
                                bytes: local_bytes,
                                sort,
                            })
                        }
                    }
                };
                sink.record(TraceEvent::Attempt {
                    job,
                    phase: Phase::Map,
                    task,
                    attempt: attempt & !SPECULATIVE_BIT,
                    speculative: attempt & SPECULATIVE_BIT != 0,
                    start: ts0,
                    end: sink.now_micros(),
                    outcome: result
                        .as_ref()
                        .map_or_else(AttemptError::outcome, |_| AttemptOutcome::Succeeded),
                });
                result
            };

        let map_ctx = TaskCtx {
            injector,
            sink,
            phase: Phase::Map,
            job,
            completed: &map_completed,
            speculative_launched: &speculative_launched,
            speculative_won: &speculative_won,
        };
        let next_chunk = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.config.map_tasks {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let task = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if task >= chunks.len() {
                        break;
                    }
                    // Cancellation is checked at every task claim (and
                    // again once a contended slot is finally granted), so
                    // a cancelled job stops within one task granularity.
                    if cancel.is_cancelled() {
                        fail_job(cancel_error(Phase::Map, task, 0));
                        break;
                    }
                    let wait = scheduler.acquire(job);
                    queue_wait_nanos.fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
                    if cancel.is_cancelled() || abort.load(Ordering::SeqCst) {
                        scheduler.release(job);
                        if cancel.is_cancelled() {
                            fail_job(cancel_error(Phase::Map, task, 0));
                        }
                        break;
                    }
                    let held = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        let outcome =
                            attempt_with_speculation(&map_ctx, task, attempt, &run_map_attempt);
                        match outcome {
                            Ok(commit) => {
                                // Atomic commit: each non-empty sorted
                                // bucket becomes one immutable run (moved,
                                // never copied — no contended extend),
                                // sealed under an integrity frame that the
                                // shuffle verifies on open. Injected
                                // corruption tampers the stored frame —
                                // what a flipped byte looks like to a
                                // reader checking a checksum.
                                let mut runs = 0u64;
                                for (p, bucket) in commit.buckets.into_iter().enumerate() {
                                    if !bucket.is_empty() {
                                        runs += 1;
                                        let mut frame = RunFrame::seal(&bucket);
                                        if injector.should_corrupt_run(job, task, p, 0) {
                                            frame = frame.tamper();
                                        }
                                        partitions[p].lock().push(SpillRun {
                                            task,
                                            frame,
                                            records: bucket,
                                        });
                                    }
                                }
                                spill_runs.fetch_add(runs, Ordering::Relaxed);
                                // Counted at commit (not per attempt), so a
                                // lost speculative race never double-counts.
                                sort_nanos
                                    .fetch_add(commit.sort.as_nanos() as u64, Ordering::Relaxed);
                                emitted.fetch_add(commit.emitted, Ordering::Relaxed);
                                shuffled_bytes.fetch_add(commit.bytes, Ordering::Relaxed);
                                break;
                            }
                            Err(AttemptError::BadPartition { partition }) => {
                                fail_job(JobError {
                                    job: name.to_string(),
                                    phase: Phase::Map,
                                    task,
                                    attempts: attempt + 1,
                                    kind: JobErrorKind::BadPartitioner {
                                        partition,
                                        num_partitions,
                                    },
                                });
                                break;
                            }
                            Err(e) => {
                                map_task_failures.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                // A cancelled job is never retried: the
                                // retry budget is for task faults, not for
                                // work the caller no longer wants.
                                if cancel.is_cancelled() {
                                    fail_job(cancel_error(Phase::Map, task, attempt));
                                    break;
                                }
                                if attempt >= max_attempts || abort.load(Ordering::SeqCst) {
                                    fail_job(JobError {
                                        job: name.to_string(),
                                        phase: Phase::Map,
                                        task,
                                        attempts: attempt,
                                        kind: JobErrorKind::AttemptsExhausted {
                                            last_error: e.message(),
                                        },
                                    });
                                    break;
                                }
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    slot_nanos.fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    scheduler.release(job);
                });
            }
        });
        sink.record(TraceEvent::PhaseEnd {
            job,
            phase: SpanPhase::Map,
            ts: sink.now_micros(),
        });
        if let Some(err) = job_error.lock().take() {
            return fail(err);
        }
        metrics.map_wall = map_start.elapsed();
        metrics.sort_wall = Duration::from_nanos(sort_nanos.load(Ordering::Relaxed));
        metrics.spill_runs = spill_runs.load(Ordering::Relaxed);
        metrics.map_output_records = emitted.load(Ordering::Relaxed);
        metrics.reduce_input_records = metrics.map_output_records;
        metrics.shuffle_bytes = shuffled_bytes.load(Ordering::Relaxed);

        // ---- Shuffle: k-way merge of the sorted runs -------------------
        // Each partition's committed runs are merged by (key, emit tag)
        // into one contiguous buffer, computing group boundaries during
        // the merge (no comparison sort, no second grouping pass). The tag
        // tiebreak makes the merged order — and so the within-group value
        // order — a pure function of the input (see the map-phase
        // comment), whatever order the runs were committed in.
        let shuffle_start = Instant::now();
        sink.record(TraceEvent::PhaseStart {
            job,
            phase: SpanPhase::Shuffle,
            ts: sink.now_micros(),
        });
        let partition_store: Vec<RwLock<MergedPartition<K, V>>> = (0..num_partitions)
            .map(|_| RwLock::new(MergedPartition::empty()))
            .collect();
        // Opens one committed run, verifying its integrity frame. A
        // mismatch means at-rest corruption, which the reader cannot
        // repair — the *producing* map task is re-executed (fresh fault
        // and corruption draws per generation) and only this partition's
        // bucket of the fresh commit is kept. Logical counters (emitted
        // pairs, shuffle bytes, spill runs, sort time) were charged when
        // the original attempt committed and are never re-charged, so
        // recovery leaves the job's counter surface byte-identical to a
        // clean run; only the fault-bookkeeping counters move.
        // Re-executions share the task's retry budget, so a pathological
        // corruption rate fails the job deterministically instead of
        // looping forever.
        let recover_run =
            |run: SpillRun<K, V>, partition: usize| -> Result<Vec<(K, u64, V)>, JobError> {
                if run.frame.verify(&run.records) {
                    return Ok(run.records);
                }
                let task = run.task;
                let mut generation = 0u32;
                loop {
                    corrupt_runs.fetch_add(1, Ordering::Relaxed);
                    let ts = sink.now_micros();
                    sink.record(TraceEvent::Attempt {
                        job,
                        phase: Phase::Map,
                        task,
                        attempt: generation,
                        speculative: false,
                        start: ts,
                        end: ts,
                        outcome: AttemptOutcome::CorruptRun,
                    });
                    loop {
                        generation += 1;
                        if generation >= max_attempts {
                            return Err(JobError {
                                job: name.to_string(),
                                phase: Phase::Map,
                                task,
                                attempts: generation,
                                kind: JobErrorKind::AttemptsExhausted {
                                    last_error: AttemptError::CorruptRun.message(),
                                },
                            });
                        }
                        match run_map_attempt(task, REEXEC_BIT | generation) {
                            Ok(mut commit) => {
                                let bucket = std::mem::take(&mut commit.buckets[partition]);
                                if injector.should_corrupt_run(job, task, partition, generation) {
                                    // The replacement drew corruption too:
                                    // detect, charge, and go another round.
                                    break;
                                }
                                return Ok(bucket);
                            }
                            Err(_) => {
                                // The re-execution itself failed (injected
                                // fault or panic): an ordinary task failure
                                // consuming ordinary retry budget.
                                map_task_failures.fetch_add(1, Ordering::Relaxed);
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            };
        let merge_nanos = AtomicU64::new(0);
        let group_counter = AtomicU64::new(0);
        let max_partition = AtomicU64::new(0);
        let next_shuffle = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let next = &next_shuffle;
            let partitions = &partitions;
            let partition_store = &partition_store;
            let merge_nanos = &merge_nanos;
            let group_counter = &group_counter;
            let max_partition = &max_partition;
            let abort = &abort;
            let fail_job = &fail_job;
            let cancel_error = &cancel_error;
            let queue_wait_nanos = &queue_wait_nanos;
            let slot_nanos = &slot_nanos;
            let recover_run = &recover_run;
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(move || loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= partitions.len() {
                        break;
                    }
                    if cancel.is_cancelled() {
                        fail_job(cancel_error(Phase::Reduce, p, 0));
                        break;
                    }
                    let wait = scheduler.acquire(job);
                    queue_wait_nanos.fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
                    if cancel.is_cancelled() || abort.load(Ordering::SeqCst) {
                        scheduler.release(job);
                        if cancel.is_cancelled() {
                            fail_job(cancel_error(Phase::Reduce, p, 0));
                        }
                        break;
                    }
                    let runs = std::mem::take(&mut *partitions[p].lock());
                    let t0 = Instant::now();
                    // Every run's integrity frame is verified before the
                    // merge; corrupt runs are regenerated by their
                    // producing map task (or the job fails once the
                    // corruption-retry budget is spent).
                    let mut verified = Vec::with_capacity(runs.len());
                    let mut corrupt = None;
                    for run in runs {
                        match recover_run(run, p) {
                            Ok(records) => verified.push(records),
                            Err(err) => {
                                corrupt = Some(err);
                                break;
                            }
                        }
                    }
                    if let Some(err) = corrupt {
                        fail_job(err);
                        slot_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        scheduler.release(job);
                        break;
                    }
                    let merged = merge_sorted_runs(verified);
                    merge_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    max_partition.fetch_max(merged.values.len() as u64, Ordering::Relaxed);
                    group_counter.fetch_add(merged.groups.len() as u64, Ordering::Relaxed);
                    *partition_store[p].write() = merged;
                    slot_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    scheduler.release(job);
                });
            }
        });
        sink.record(TraceEvent::PhaseEnd {
            job,
            phase: SpanPhase::Shuffle,
            ts: sink.now_micros(),
        });
        // The shuffle can fail two ways: cancellation, or a corrupt run
        // whose producer exhausted its re-execution budget — surface
        // either before starting the reduce phase.
        if let Some(err) = job_error.lock().take() {
            return fail(err);
        }
        metrics.shuffle_wall = shuffle_start.elapsed();
        metrics.corrupt_runs = corrupt_runs.load(Ordering::Relaxed);
        metrics.merge_wall = Duration::from_nanos(merge_nanos.load(Ordering::Relaxed));
        metrics.reduce_input_groups = group_counter.load(Ordering::Relaxed);
        metrics.max_partition_records = max_partition.load(Ordering::Relaxed);

        // ---- Reduce phase ----------------------------------------------
        // Each partition is one reduce task. The merged partition stays in
        // place (behind an RwLock so a speculative duplicate can read it
        // concurrently) until the task commits, so a failed attempt can be
        // replayed; every attempt borrows each group as a slice of the
        // same immutable buffer — nothing is cloned. The input is dropped
        // on commit.
        let reduce_start = Instant::now();
        sink.record(TraceEvent::PhaseStart {
            job,
            phase: SpanPhase::Reduce,
            ts: sink.now_micros(),
        });
        let output_slots: Vec<Mutex<Vec<O>>> = (0..num_partitions)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let out_count = AtomicU64::new(0);

        let run_reduce_attempt =
            |task: usize, attempt: u32| -> Result<(Vec<O>, u64), AttemptError> {
                let injected = injector.should_fail(Phase::Reduce, job, task, attempt);
                let t0 = Instant::now();
                let ts0 = sink.now_micros();
                let guard = partition_store[task].read();
                let mut outputs = Vec::new();
                let mut local_out = 0u64;
                let unwind = catch_unwind(AssertUnwindSafe(|| {
                    guard.for_each_group(|key, values| {
                        reduce_fn(key, values, &mut |o: O| {
                            local_out += 1;
                            outputs.push(o);
                        });
                    });
                }));
                let result = match unwind {
                    Err(payload) => Err(AttemptError::Panic(panic_message(payload))),
                    Ok(()) => {
                        if injected {
                            Err(AttemptError::Injected)
                        } else {
                            reduce_completed.lock().push(t0.elapsed());
                            Ok((outputs, local_out))
                        }
                    }
                };
                sink.record(TraceEvent::Attempt {
                    job,
                    phase: Phase::Reduce,
                    task,
                    attempt: attempt & !SPECULATIVE_BIT,
                    speculative: attempt & SPECULATIVE_BIT != 0,
                    start: ts0,
                    end: sink.now_micros(),
                    outcome: result
                        .as_ref()
                        .map_or_else(AttemptError::outcome, |_| AttemptOutcome::Succeeded),
                });
                result
            };

        let reduce_ctx = TaskCtx {
            injector,
            sink,
            phase: Phase::Reduce,
            job,
            completed: &reduce_completed,
            speculative_launched: &speculative_launched,
            speculative_won: &speculative_won,
        };
        let next_reduce = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.config.reduce_tasks {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let task = next_reduce.fetch_add(1, Ordering::Relaxed);
                    if task >= partition_store.len() {
                        break;
                    }
                    if cancel.is_cancelled() {
                        fail_job(cancel_error(Phase::Reduce, task, 0));
                        break;
                    }
                    let wait = scheduler.acquire(job);
                    queue_wait_nanos.fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
                    if cancel.is_cancelled() || abort.load(Ordering::SeqCst) {
                        scheduler.release(job);
                        if cancel.is_cancelled() {
                            fail_job(cancel_error(Phase::Reduce, task, 0));
                        }
                        break;
                    }
                    let held = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        let outcome = attempt_with_speculation(
                            &reduce_ctx,
                            task,
                            attempt,
                            &run_reduce_attempt,
                        );
                        match outcome {
                            Ok((outputs, local_out)) => {
                                out_count.fetch_add(local_out, Ordering::Relaxed);
                                *output_slots[task].lock() = outputs;
                                // Commit: the task's input is no longer
                                // needed for replay.
                                *partition_store[task].write() = MergedPartition::empty();
                                break;
                            }
                            Err(AttemptError::BadPartition { .. }) => {
                                unreachable!("partitioner does not run in the reduce phase")
                            }
                            Err(e) => {
                                reduce_task_failures.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                if cancel.is_cancelled() {
                                    fail_job(cancel_error(Phase::Reduce, task, attempt));
                                    break;
                                }
                                if attempt >= max_attempts || abort.load(Ordering::SeqCst) {
                                    fail_job(JobError {
                                        job: name.to_string(),
                                        phase: Phase::Reduce,
                                        task,
                                        attempts: attempt,
                                        kind: JobErrorKind::AttemptsExhausted {
                                            last_error: e.message(),
                                        },
                                    });
                                    break;
                                }
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    slot_nanos.fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    scheduler.release(job);
                });
            }
        });
        sink.record(TraceEvent::PhaseEnd {
            job,
            phase: SpanPhase::Reduce,
            ts: sink.now_micros(),
        });
        if let Some(err) = job_error.lock().take() {
            return fail(err);
        }
        metrics.reduce_wall = reduce_start.elapsed();
        metrics.reduce_output_records = out_count.load(Ordering::Relaxed);
        metrics.map_task_failures = map_task_failures.load(Ordering::Relaxed);
        metrics.reduce_task_failures = reduce_task_failures.load(Ordering::Relaxed);
        metrics.retries = retries.load(Ordering::Relaxed);
        metrics.speculative_launched = speculative_launched.load(Ordering::Relaxed);
        metrics.speculative_won = speculative_won.load(Ordering::Relaxed);
        metrics.total_wall = job_start.elapsed();
        metrics.queue_wait = Duration::from_nanos(queue_wait_nanos.load(Ordering::Relaxed));
        metrics.slot_wall = Duration::from_nanos(slot_nanos.load(Ordering::Relaxed));
        sink.record(TraceEvent::Counters {
            job,
            ts: sink.now_micros(),
            metrics: Box::new(metrics.clone()),
        });
        sink.record(TraceEvent::JobEnd {
            job,
            ts: sink.now_micros(),
            error: None,
        });
        match &collect {
            Some(hub) => hub.push(metrics),
            None => self.metrics.lock().push(metrics),
        }

        Ok(output_slots
            .into_iter()
            .flat_map(parking_lot::Mutex::into_inner)
            .collect())
    }

    /// Snapshot of all job metrics plus DFS counters since construction (or
    /// the last [`Engine::reset_metrics`]). Jobs that delivered their
    /// metrics to a [`MetricsHub`] (via [`JobSpec::collect_into`]) are not
    /// listed here — concurrent submitters read their own hubs instead.
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            jobs: self.metrics.lock().clone(),
            dfs_read_bytes: self.dfs.read_bytes(),
            dfs_write_bytes: self.dfs.write_bytes(),
            dfs_transient_read_failures: self.dfs.transient_read_failures(),
        }
    }

    /// Clears accumulated job metrics and DFS counters.
    pub fn reset_metrics(&self) {
        self.metrics.lock().clear();
        self.dfs.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ForcedFault;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            ..EngineConfig::default()
        })
    }

    fn engine_with(plan: FaultPlan) -> Engine {
        Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn word_count() {
        let e = engine();
        let input = vec!["a b a", "c b", "a"];
        let mut out = e
            .run(
                JobSpec::new("wc")
                    .reducers(3)
                    .map(|line: &&str, emit| {
                        for w in line.split(' ') {
                            emit(w.to_string(), 1u32);
                        }
                    })
                    .partition(|k: &String, n| k.as_bytes()[0] as usize % n)
                    .reduce(|k: &String, vs: &[u32], out| out((k.clone(), vs.len()))),
                &input,
            )
            .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![("a".into(), 3usize), ("b".into(), 2), ("c".into(), 1)]
        );
    }

    #[test]
    fn metrics_count_intermediate_pairs() {
        let e = engine();
        let input: Vec<u32> = (0..100).collect();
        let _ = e
            .run(
                JobSpec::new("double-emit")
                    .reducers(8)
                    .map(|&x: &u32, emit| {
                        emit(x % 8, x);
                        emit((x + 1) % 8, x);
                    })
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|_: &u32, vs: &[u32], out| {
                        for &v in vs {
                            out(v);
                        }
                    }),
                &input,
            )
            .unwrap();
        let report = e.report();
        assert_eq!(report.num_jobs(), 1);
        let j = &report.jobs[0];
        assert_eq!(j.map_input_records, 100);
        assert_eq!(j.map_output_records, 200);
        assert_eq!(j.reduce_input_records, 200);
        assert_eq!(j.reduce_output_records, 200);
        assert_eq!(j.reduce_input_groups, 8);
        // Keys are u32 (4 bytes) and values u32 (4 bytes).
        assert_eq!(j.shuffle_bytes, 200 * 8);
        // Fault-free run: the fault counters stay zero.
        assert_eq!(j.map_task_failures, 0);
        assert_eq!(j.reduce_task_failures, 0);
        assert_eq!(j.retries, 0);
        assert_eq!(j.speculative_launched, 0);
        // Mapper-side spill: every committed run is counted, and runs are
        // per (task, non-empty partition) so the count is deterministic.
        // 100 records in 7-record chunks is 15 map tasks × ≤ 8 partitions.
        assert!(j.spill_runs > 0);
        assert!(j.spill_runs <= 15 * 8, "spill_runs = {}", j.spill_runs);
    }

    #[test]
    fn all_values_for_a_key_meet_at_one_reducer() {
        let e = engine();
        let input: Vec<u64> = (0..1000).collect();
        let out = e
            .run(
                JobSpec::new("group")
                    .reducers(16)
                    .map(|&x: &u64, emit| emit(x % 50, x))
                    .partition(|&k: &u64, n| (k as usize) % n)
                    .reduce(|&k: &u64, vs: &[u64], out| {
                        // Every value v with v % 50 == k must be present.
                        let mut got: Vec<u64> = vs.to_vec();
                        got.sort_unstable();
                        let expect: Vec<u64> = (0..1000).filter(|v| v % 50 == k).collect();
                        assert_eq!(got, expect);
                        out(k);
                    }),
                &input,
            )
            .unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn reducers_see_keys_in_sorted_order_within_partition() {
        let e = engine();
        let input: Vec<u32> = (0..200).rev().collect();
        let order = Mutex::new(Vec::new());
        let _ = e
            .run(
                JobSpec::new("sorted")
                    .map(|&x: &u32, emit| emit(x, ()))
                    .partition(|_: &u32, _| 0)
                    .reduce(|&k: &u32, _: &[()], _out: &mut dyn FnMut(())| {
                        order.lock().push(k);
                    }),
                &input,
            )
            .unwrap();
        let order = order.into_inner();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn reducer_value_order_deterministic_across_runs() {
        // The (task, emit-sequence) shuffle tiebreak: the value stream of
        // each key group is a pure function of the input, not of racy
        // chunk-claim order.
        let runs: Vec<Vec<u32>> = (0..8)
            .map(|_| {
                let e = engine();
                let input: Vec<u32> = (0..500).collect();
                let seen = Mutex::new(Vec::new());
                let _ = e
                    .run(
                        JobSpec::new("order")
                            .reducers(4)
                            .map(|&x: &u32, emit| emit(x % 7, x))
                            .partition(|&k: &u32, n| k as usize % n)
                            .reduce(|_: &u32, vs: &[u32], _out: &mut dyn FnMut(())| {
                                seen.lock().extend_from_slice(vs);
                            }),
                        &input,
                    )
                    .unwrap();
                seen.into_inner()
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run, &runs[0]);
        }
    }

    #[test]
    fn empty_input_produces_no_output() {
        let e = engine();
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = e
            .run(
                JobSpec::new("empty")
                    .reducers(4)
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|&k: &u32, _: &[u32], out| out(k)),
                &input,
            )
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(e.report().jobs[0].map_output_records, 0);
    }

    #[test]
    fn chained_jobs_account_dfs_traffic() {
        let e = engine();
        let input: Vec<u32> = (0..10).collect();
        let even_odd = |&k: &u32, n: usize| k as usize % n;
        let stage1: Vec<u32> = e
            .run(
                JobSpec::new("stage1")
                    .reducers(2)
                    .map(|&x: &u32, emit| emit(x % 2, x))
                    .partition(even_odd)
                    .reduce(|_: &u32, vs: &[u32], out| {
                        for &v in vs {
                            out(v * 2);
                        }
                    }),
                &input,
            )
            .unwrap();
        e.dfs.write("intermediate", stage1);
        let stage2_input = e.dfs.read::<u32>("intermediate").unwrap();
        let out: Vec<u32> = e
            .run(
                JobSpec::new("stage2")
                    .reducers(2)
                    .map(|&x: &u32, emit| emit(x % 2, x))
                    .partition(even_odd)
                    .reduce(|_: &u32, vs: &[u32], out| {
                        for &v in vs {
                            out(v);
                        }
                    }),
                &stage2_input,
            )
            .unwrap();
        assert_eq!(out.len(), 10);
        let report = e.report();
        assert_eq!(report.num_jobs(), 2);
        assert_eq!(report.dfs_write_bytes, 40);
        assert_eq!(report.dfs_read_bytes, 40);
    }

    #[test]
    fn reset_metrics_clears_everything() {
        let e = engine();
        let input = vec![1u32];
        let _ = e
            .run(
                JobSpec::new("j")
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|_: &u32, _| 0)
                    .reduce(|&k: &u32, _: &[u32], out| out(k)),
                &input,
            )
            .unwrap();
        e.dfs.write("d", vec![1u8]);
        e.reset_metrics();
        let r = e.report();
        assert_eq!(r.num_jobs(), 0);
        assert_eq!(r.dfs_write_bytes, 0);
    }

    #[test]
    fn bad_partitioner_is_a_job_error() {
        let e = engine();
        let input = vec![1u32];
        let err = e
            .run(
                JobSpec::new("bad")
                    .reducers(2)
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|_: &u32, _| 7)
                    .reduce(|&k: &u32, _: &[u32], out: &mut dyn FnMut(u32)| out(k)),
                &input,
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Map);
        assert_eq!(
            err.kind,
            JobErrorKind::BadPartitioner {
                partition: 7,
                num_partitions: 2
            }
        );
        assert!(err.to_string().contains("partition_fn returned 7 >= 2"));
    }

    #[test]
    fn injected_map_fault_is_retried_transparently() {
        let plan = FaultPlan::none().with_forced(vec![ForcedFault {
            phase: Phase::Map,
            task: 0,
            attempts: 1,
        }]);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..100).collect();
        let mut out = e
            .run(
                JobSpec::new("retry")
                    .reducers(4)
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|&k: &u32, _: &[u32], out| out(k)),
                &input,
            )
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        let j = &e.report().jobs[0];
        assert_eq!(j.map_task_failures, 1);
        assert_eq!(j.retries, 1);
        // The retried task committed exactly once: no double-emits.
        assert_eq!(j.map_output_records, 100);
    }

    #[test]
    fn exhausted_attempts_surface_a_job_error() {
        let plan = FaultPlan::none()
            .with_forced(vec![ForcedFault {
                phase: Phase::Reduce,
                task: 1,
                attempts: u32::MAX,
            }])
            .with_max_attempts(3);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..10).collect();
        let err = e
            .run(
                JobSpec::new("doomed")
                    .reducers(4)
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|&k: &u32, _: &[u32], out: &mut dyn FnMut(u32)| out(k)),
                &input,
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Reduce);
        assert_eq!(err.task, 1);
        assert_eq!(err.attempts, 3);
        let s = err.to_string();
        assert!(
            s.contains("reduce task 1") && s.contains("injected fault"),
            "{s}"
        );
    }

    #[test]
    fn user_panic_is_isolated_and_reported() {
        let e = engine();
        let input: Vec<u32> = (0..10).collect();
        let err = e
            .run(
                JobSpec::new("panicky")
                    .reducers(2)
                    .map(|&x: &u32, emit| emit(x, x))
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|&k: &u32, _: &[u32], _out: &mut dyn FnMut(u32)| {
                        if k == 3 {
                            panic!("reducer exploded on key {k}");
                        }
                    }),
                &input,
            )
            .unwrap_err();
        assert_eq!(err.phase, Phase::Reduce);
        assert_eq!(err.attempts, FaultPlan::DEFAULT_MAX_ATTEMPTS);
        assert!(err.to_string().contains("reducer exploded"), "{err}");
    }

    #[allow(clippy::type_complexity)]
    fn identity_spec(
        name: &str,
    ) -> JobSpec<
        impl Fn(&u32, &mut dyn FnMut(u32, u32)) + Sync,
        impl Fn(&u32, usize) -> usize + Sync,
        impl Fn(&u32, &[u32], &mut dyn FnMut(u32)) + Sync,
    > {
        JobSpec::new(name)
            .reducers(4)
            .map(|&x: &u32, emit| emit(x, x))
            .partition(|&k: &u32, n| k as usize % n)
            .reduce(|&k: &u32, _: &[u32], out| out(k))
    }

    #[test]
    fn stragglers_launch_speculative_attempts() {
        let mut plan = FaultPlan::chaos(13, 0.0, 1.0);
        plan.straggler_delay = std::time::Duration::from_millis(2);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..200).collect();
        let mut out = e.run(identity_spec("slow"), &input).unwrap();
        out.sort_unstable();
        assert_eq!(out.len(), 200);
        let j = &e.report().jobs[0];
        assert!(j.speculative_launched > 0);
        assert!(j.speculative_won <= j.speculative_launched);
        // Speculation must not distort the logical counters.
        assert_eq!(j.map_output_records, 200);
        assert_eq!(j.reduce_output_records, 200);
    }

    /// With single-threaded phases and a huge slow-start multiplier, only
    /// the *first* task of each phase (no median yet) launches a
    /// speculative duplicate: every later straggler finishes well inside
    /// `multiplier × median` and the duplicate is never launched.
    #[test]
    fn slowstart_paces_speculation_to_the_median() {
        let mut plan = FaultPlan::chaos(13, 0.0, 1.0).with_slowstart(10_000.0);
        plan.straggler_delay = std::time::Duration::from_micros(100);
        let e = Engine::new(EngineConfig {
            map_tasks: 1,
            reduce_tasks: 1,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        });
        let input: Vec<u32> = (0..400).collect();
        let mut out = e.run(identity_spec("paced"), &input).unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..400).collect::<Vec<_>>());
        let j = &e.report().jobs[0];
        // One map chunk per task with map_tasks = 1 gives 4 chunks; reduce
        // has 4 partitions. Exactly one speculative launch per phase.
        assert_eq!(
            j.speculative_launched, 2,
            "slow-start must gate all but the first (median-less) straggler per phase"
        );
        assert_eq!(j.map_output_records, 400);
        assert_eq!(j.reduce_output_records, 400);
    }

    /// A zero multiplier (the default) preserves the old behavior: every
    /// flagged straggler races a duplicate immediately.
    #[test]
    fn zero_slowstart_speculates_immediately() {
        let mut plan = FaultPlan::chaos(13, 0.0, 1.0).with_slowstart(0.0);
        plan.straggler_delay = std::time::Duration::from_micros(100);
        let e = Engine::new(EngineConfig {
            map_tasks: 1,
            reduce_tasks: 1,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        });
        let input: Vec<u32> = (0..400).collect();
        let _ = e.run(identity_spec("eager"), &input).unwrap();
        let j = &e.report().jobs[0];
        // Every task straggles (rate 1.0) and races a duplicate: 4 map
        // chunks + 4 reduce partitions.
        assert_eq!(j.speculative_launched, 8);
    }

    /// A per-job fault plan overrides the engine's.
    #[test]
    fn job_level_fault_plan_overrides_engine_plan() {
        let e = engine(); // fault-free engine
        let doomed = FaultPlan::none()
            .with_forced(vec![ForcedFault {
                phase: Phase::Map,
                task: 0,
                attempts: u32::MAX,
            }])
            .with_max_attempts(2);
        let input: Vec<u32> = (0..10).collect();
        let err = e
            .run(identity_spec("overridden").fault_plan(doomed), &input)
            .unwrap_err();
        assert_eq!(err.phase, Phase::Map);
        assert_eq!(err.attempts, 2);
        // The engine itself is still fault-free.
        let ok = e.run(identity_spec("clean"), &input).unwrap();
        assert_eq!(ok.len(), 10);
    }

    /// Injected spill corruption is detected when the shuffle opens the
    /// run and repaired by re-executing the producing map task: output
    /// and every logical counter are byte-identical to a clean run, and
    /// only the `corrupt_runs` bookkeeping moves.
    #[test]
    fn corrupt_runs_repaired_with_identical_counters() {
        let input: Vec<u32> = (0..250).collect();
        let clean_engine = engine();
        let mut expected = clean_engine.run(identity_spec("job"), &input).unwrap();
        expected.sort_unstable();
        let clean = clean_engine.report().jobs[0].clone();

        let plan = FaultPlan {
            seed: 41,
            ..FaultPlan::none()
        }
        .with_corruption(0.1);
        let e = engine_with(plan);
        let mut out = e.run(identity_spec("job"), &input).unwrap();
        out.sort_unstable();
        assert_eq!(out, expected);

        let j = &e.report().jobs[0];
        assert!(j.corrupt_runs > 0, "seed 41 must corrupt at least one run");
        assert_eq!(clean.corrupt_runs, 0);
        // Recovery never re-charges committed work: the whole logical
        // counter surface matches the clean run.
        assert_eq!(j.map_input_records, clean.map_input_records);
        assert_eq!(j.map_output_records, clean.map_output_records);
        assert_eq!(j.shuffle_bytes, clean.shuffle_bytes);
        assert_eq!(j.spill_runs, clean.spill_runs);
        assert_eq!(j.reduce_input_groups, clean.reduce_input_groups);
        assert_eq!(j.reduce_input_records, clean.reduce_input_records);
        assert_eq!(j.max_partition_records, clean.max_partition_records);
        assert_eq!(j.reduce_output_records, clean.reduce_output_records);
        assert_eq!(j.input_fingerprint, clean.input_fingerprint);
    }

    /// A corruption rate of 1.0 re-corrupts every replacement run, so the
    /// producing task exhausts its re-execution budget and the job fails
    /// with a corrupt-run error instead of looping forever.
    #[test]
    fn corruption_budget_exhaustion_fails_job() {
        let plan = FaultPlan {
            seed: 7,
            ..FaultPlan::none()
        }
        .with_corruption(1.0)
        .with_max_attempts(3);
        let e = engine_with(plan);
        let input: Vec<u32> = (0..40).collect();
        let err = e.run(identity_spec("doomed"), &input).unwrap_err();
        assert_eq!(err.phase, Phase::Map);
        assert_eq!(err.attempts, 3);
        match &err.kind {
            JobErrorKind::AttemptsExhausted { last_error } => {
                assert!(
                    last_error.contains("corrupt spill run"),
                    "unexpected error: {last_error}"
                );
            }
            other => panic!("expected AttemptsExhausted, got {other:?}"),
        }
        // Failed jobs do not publish metrics.
        assert_eq!(e.report().num_jobs(), 0);
    }

    /// The k-way merge of sorted runs equals a global stable sort by
    /// (key, tag), with group boundaries exactly partitioning the values —
    /// for zero, one and many runs, including empty ones.
    #[test]
    fn kway_merge_matches_global_sort() {
        let cases: Vec<Vec<Vec<(u32, u64, u32)>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![(1, 0, 10), (1, 1, 11), (2, 2, 12)]],
            vec![
                vec![(1, 4, 14), (3, 5, 15)],
                vec![(1, 0, 10), (2, 1, 11)],
                vec![],
                vec![(0, 8, 18), (1, 9, 19), (9, 10, 20)],
                vec![(1, 2, 12)],
            ],
        ];
        for runs in cases {
            let mut flat: Vec<(u32, u64, u32)> = runs.iter().flatten().copied().collect();
            flat.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let merged = merge_sorted_runs(runs);
            assert_eq!(
                merged.values,
                flat.iter().map(|t| t.2).collect::<Vec<_>>(),
                "merged value stream must equal the globally sorted stream"
            );
            let mut expect_groups: Vec<(u32, usize)> = Vec::new();
            for (i, (k, _, _)) in flat.iter().enumerate() {
                if expect_groups.last().is_none_or(|(g, _)| g != k) {
                    expect_groups.push((*k, i));
                }
            }
            assert_eq!(merged.groups, expect_groups);
        }
    }

    /// A per-job sink overrides the engine-wide sink; a disabled per-job
    /// sink leaves the engine-wide sink in effect.
    #[test]
    fn trace_sink_selection() {
        let engine_sink = TraceSink::recording();
        let e = Engine::new(
            EngineConfig {
                map_tasks: 2,
                reduce_tasks: 2,
                ..EngineConfig::default()
            }
            .with_trace(engine_sink.clone()),
        );
        let input: Vec<u32> = (0..50).collect();

        let job_sink = TraceSink::recording();
        let _ = e
            .run(identity_spec("per-job").trace(job_sink.clone()), &input)
            .unwrap();
        assert!(!job_sink.is_empty(), "per-job sink must capture the job");
        assert!(engine_sink.is_empty(), "engine sink must not see the job");

        let _ = e.run(identity_spec("engine-wide"), &input).unwrap();
        assert!(!engine_sink.is_empty(), "engine sink must capture the job");
    }

    /// Jobs racing for a 2-slot pool produce the same logical counters as
    /// a solo run: slot scheduling changes *when* tasks run, never what
    /// they compute.
    #[test]
    fn concurrent_jobs_match_solo_counters() {
        let solo_engine = engine();
        let input: Vec<u32> = (0..300).collect();
        let _ = solo_engine.run(identity_spec("solo"), &input).unwrap();
        let solo = solo_engine.report().jobs[0].clone();

        let e = Engine::new(EngineConfig {
            map_tasks: 4,
            reduce_tasks: 4,
            slots: 2,
            ..EngineConfig::default()
        });
        let hub = MetricsHub::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let e = &e;
                let input = &input;
                let hub = hub.clone();
                s.spawn(move || {
                    let _ = e
                        .run(
                            identity_spec(&format!("contender-{i}")).collect_into(hub),
                            input,
                        )
                        .unwrap();
                });
            }
        });
        let jobs = hub.take();
        assert_eq!(jobs.len(), 4);
        for j in &jobs {
            assert_eq!(j.map_input_records, solo.map_input_records);
            assert_eq!(j.map_output_records, solo.map_output_records);
            assert_eq!(j.reduce_input_records, solo.reduce_input_records);
            assert_eq!(j.reduce_output_records, solo.reduce_output_records);
            assert_eq!(j.reduce_input_groups, solo.reduce_input_groups);
            assert_eq!(j.shuffle_bytes, solo.shuffle_bytes);
            assert_eq!(j.spill_runs, solo.spill_runs);
        }
        // Hub-collected jobs bypass the engine-global metrics vec.
        assert_eq!(e.report().num_jobs(), 0);
        // Every slot went back to the pool.
        assert_eq!(e.scheduler().available(), e.scheduler().slots());
    }

    /// A token cancelled before submission fails the job up front, without
    /// running any tasks, and the error names the job and the source.
    #[test]
    fn pre_cancelled_job_fails_before_any_task() {
        let e = engine();
        let token = CancelToken::new();
        token.cancel();
        let input: Vec<u32> = (0..50).collect();
        let err = e
            .run(identity_spec("doomed").cancel(token), &input)
            .unwrap_err();
        assert_eq!(
            err.kind,
            JobErrorKind::Cancelled {
                deadline_exceeded: false
            }
        );
        assert!(err.to_string().contains("job `doomed`"));
        assert!(err.to_string().contains("by caller"));
        assert_eq!(err.task, 0);
        assert_eq!(err.attempts, 0, "no attempt may have launched");
        assert_eq!(e.scheduler().available(), e.scheduler().slots());
    }

    /// Cancelling from another thread mid-map aborts the job promptly with
    /// a `Cancelled` error (not a retried task fault) and releases slots.
    #[test]
    fn mid_run_cancel_aborts_job() {
        let e = engine();
        let token = CancelToken::new();
        let input: Vec<u32> = (0..4_000).collect();
        let spec = JobSpec::new("long-haul")
            .reducers(4)
            .cancel(token.clone())
            .map(|&x: &u32, emit| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                emit(x, x)
            })
            .partition(|&k: &u32, n| k as usize % n)
            .reduce(|&k: &u32, _: &[u32], out| out(k));
        let err = std::thread::scope(|s| {
            let handle = s.spawn(|| e.run(spec, &input));
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
            handle.join().unwrap().unwrap_err()
        });
        assert_eq!(
            err.kind,
            JobErrorKind::Cancelled {
                deadline_exceeded: false
            }
        );
        assert_eq!(e.scheduler().available(), e.scheduler().slots());
    }

    /// A deadline set through the spec builder trips the token mid-run and
    /// the error reports `deadline_exceeded`.
    #[test]
    fn deadline_cancels_and_is_attributed() {
        let e = engine();
        let input: Vec<u32> = (0..4_000).collect();
        let err = e
            .run(
                JobSpec::new("overdue")
                    .reducers(4)
                    .deadline(std::time::Duration::from_millis(2))
                    .map(|&x: &u32, emit| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        emit(x, x)
                    })
                    .partition(|&k: &u32, n| k as usize % n)
                    .reduce(|&k: &u32, _: &[u32], out| out(k)),
                &input,
            )
            .unwrap_err();
        assert_eq!(
            err.kind,
            JobErrorKind::Cancelled {
                deadline_exceeded: true
            }
        );
        assert!(err.to_string().contains("by deadline"));
        assert_eq!(e.scheduler().available(), e.scheduler().slots());
    }

    /// Slot occupancy is metered: a completed job reports time spent
    /// holding slots, and a solo job on an auto-sized pool never queues.
    #[test]
    fn slot_accounting_reaches_metrics() {
        let e = engine();
        let input: Vec<u32> = (0..500).collect();
        let _ = e.run(identity_spec("metered"), &input).unwrap();
        let j = &e.report().jobs[0];
        assert!(
            j.slot_wall > Duration::ZERO,
            "tasks must be metered while holding slots"
        );
    }
}
