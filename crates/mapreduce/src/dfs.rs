use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::fault::FaultInjector;
use crate::record::{Fnv64, RunFrame, StableHash};
use crate::RecordSize;

/// A stable content hash of one stored dataset.
///
/// Computed from the records' [`StableHash`] encodings at write time, so
/// two datasets fingerprint identically iff their record bytes are
/// identical — regeneration from the same seed matches, a one-record
/// perturbation does not. Result caches key on this (plus the canonical
/// query and the algorithm) to decide whether a cached answer is still
/// valid for a named input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetFingerprint(pub u64);

impl std::fmt::Display for DatasetFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Errors from [`Dfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No dataset with that name exists.
    NotFound(String),
    /// The dataset exists but holds a different element type.
    TypeMismatch(String),
    /// Every read retry hit an injected transient failure (the DFS analogue
    /// of a task exhausting its attempts).
    Unavailable(String),
    /// The dataset's integrity frame ([`RunFrame`]) no longer matches its
    /// records — at-rest corruption detected on open.
    Corrupt(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(n) => write!(f, "dataset `{n}` not found"),
            DfsError::TypeMismatch(n) => write!(f, "dataset `{n}` holds a different type"),
            DfsError::Unavailable(n) => {
                write!(
                    f,
                    "dataset `{n}` unavailable: transient read retries exhausted"
                )
            }
            DfsError::Corrupt(n) => {
                write!(f, "dataset `{n}` corrupt: integrity frame mismatch")
            }
        }
    }
}

impl std::error::Error for DfsError {}

struct Dataset {
    data: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    records: u64,
    fingerprint: DatasetFingerprint,
    /// Integrity frame sealed at write time and re-derived on every read.
    frame: RunFrame,
}

/// An in-memory stand-in for HDFS with byte accounting.
///
/// Chained jobs (the *2-way Cascade* baseline) persist each intermediate
/// join result here and re-read it as the next job's input; the read/write
/// counters expose the amplification the paper blames for Cascade's poor
/// performance (§6.4: "a huge reading and writing cost").
///
/// Under a fault plan reads can hit *transient* failures: the failure is
/// counted, the read retried in place (a fresh replica in a real
/// deployment), and only a successful read is charged to the byte
/// counters. A read whose every retry fails returns
/// [`DfsError::Unavailable`].
#[derive(Default)]
pub struct Dfs {
    datasets: RwLock<HashMap<String, Dataset>>,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    injector: FaultInjector,
    read_seq: AtomicU64,
    transient_read_failures: AtomicU64,
}

impl Dfs {
    /// Creates an empty, fault-free DFS.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty DFS whose reads are subject to the injector's
    /// transient-failure rate.
    #[must_use]
    pub fn with_faults(injector: FaultInjector) -> Self {
        Self {
            injector,
            ..Self::default()
        }
    }

    /// Writes (or replaces) a dataset, charging its encoded size to the
    /// write counter, fingerprinting the stored records (see
    /// [`DatasetFingerprint`]) and sealing an integrity frame
    /// ([`RunFrame`]: record-count length header + FNV-64 checksum) that
    /// every subsequent read re-verifies.
    pub fn write<T: RecordSize + StableHash + Send + Sync + 'static>(
        &self,
        name: &str,
        data: Vec<T>,
    ) {
        let bytes: u64 = data.iter().map(|r| r.size_bytes() as u64).sum();
        let records = data.len() as u64;
        let mut h = Fnv64::new();
        h.write_u64(records);
        for r in &data {
            r.stable_hash(&mut h);
        }
        let fingerprint = DatasetFingerprint(h.finish());
        let frame = RunFrame::seal(&data);
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.datasets.write().insert(
            name.to_string(),
            Dataset {
                data: Arc::new(data),
                bytes,
                records,
                fingerprint,
                frame,
            },
        );
    }

    /// Reads a dataset, charging its encoded size to the read counter. The
    /// data is shared, not copied. The stored integrity frame is
    /// re-derived from the records on open; a mismatch (at-rest
    /// corruption) surfaces as [`DfsError::Corrupt`] — unlike transient
    /// read failures it is not retried, because every replica of the
    /// simulated store shares the bytes.
    pub fn read<T: RecordSize + Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Arc<Vec<T>>, DfsError> {
        let seq = self.read_seq.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        while self.injector.should_fail_dfs_read(seq, attempt) {
            self.transient_read_failures.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
            if attempt >= self.injector.max_attempts() {
                return Err(DfsError::Unavailable(name.to_string()));
            }
        }
        let guard = self.datasets.read();
        let ds = guard
            .get(name)
            .ok_or_else(|| DfsError::NotFound(name.to_string()))?;
        let data = Arc::clone(&ds.data)
            .downcast::<Vec<T>>()
            .map_err(|_| DfsError::TypeMismatch(name.to_string()))?;
        if !ds.frame.verify(&data) {
            return Err(DfsError::Corrupt(name.to_string()));
        }
        self.read_bytes.fetch_add(ds.bytes, Ordering::Relaxed);
        Ok(data)
    }

    /// Tampers the stored integrity frame of a dataset — the test hook for
    /// at-rest corruption. Every subsequent read fails with
    /// [`DfsError::Corrupt`] until the dataset is rewritten.
    pub fn tamper(&self, name: &str) -> Result<(), DfsError> {
        let mut guard = self.datasets.write();
        let ds = guard
            .get_mut(name)
            .ok_or_else(|| DfsError::NotFound(name.to_string()))?;
        ds.frame = ds.frame.tamper();
        Ok(())
    }

    /// Removes a dataset (no-op if absent).
    pub fn delete(&self, name: &str) {
        self.datasets.write().remove(name);
    }

    /// Whether a dataset exists.
    #[must_use]
    pub fn exists(&self, name: &str) -> bool {
        self.datasets.read().contains_key(name)
    }

    /// Number of records in a dataset.
    pub fn record_count(&self, name: &str) -> Result<u64, DfsError> {
        self.datasets
            .read()
            .get(name)
            .map(|d| d.records)
            .ok_or_else(|| DfsError::NotFound(name.to_string()))
    }

    /// The content fingerprint computed when the dataset was written.
    pub fn fingerprint(&self, name: &str) -> Result<DatasetFingerprint, DfsError> {
        self.datasets
            .read()
            .get(name)
            .map(|d| d.fingerprint)
            .ok_or_else(|| DfsError::NotFound(name.to_string()))
    }

    /// Total bytes read so far.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written so far.
    #[must_use]
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed)
    }

    /// Transient read failures injected (and retried) so far.
    #[must_use]
    pub fn transient_read_failures(&self) -> u64 {
        self.transient_read_failures.load(Ordering::Relaxed)
    }

    /// Resets the byte and failure counters (between experiments).
    pub fn reset_counters(&self) {
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.transient_read_failures.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dfs = Dfs::new();
        dfs.write("nums", vec![1u64, 2, 3]);
        let back = dfs.read::<u64>("nums").unwrap();
        assert_eq!(*back, vec![1, 2, 3]);
        assert_eq!(dfs.record_count("nums").unwrap(), 3);
    }

    #[test]
    fn byte_accounting() {
        let dfs = Dfs::new();
        dfs.write("nums", vec![1u64, 2, 3]); // 24 bytes
        assert_eq!(dfs.write_bytes(), 24);
        assert_eq!(dfs.read_bytes(), 0);
        let _ = dfs.read::<u64>("nums").unwrap();
        let _ = dfs.read::<u64>("nums").unwrap();
        assert_eq!(dfs.read_bytes(), 48);
        dfs.reset_counters();
        assert_eq!(dfs.write_bytes(), 0);
    }

    #[test]
    fn missing_dataset() {
        let dfs = Dfs::new();
        assert_eq!(
            dfs.read::<u64>("nope").unwrap_err(),
            DfsError::NotFound("nope".into())
        );
        assert!(!dfs.exists("nope"));
    }

    #[test]
    fn type_mismatch() {
        let dfs = Dfs::new();
        dfs.write("nums", vec![1u64]);
        assert_eq!(
            dfs.read::<u32>("nums").unwrap_err(),
            DfsError::TypeMismatch("nums".into())
        );
    }

    #[test]
    fn overwrite_replaces() {
        let dfs = Dfs::new();
        dfs.write("d", vec![1u8]);
        dfs.write("d", vec![2u8, 3]);
        assert_eq!(*dfs.read::<u8>("d").unwrap(), vec![2, 3]);
        assert_eq!(dfs.write_bytes(), 3);
    }

    #[test]
    fn transient_read_faults_are_retried_and_uncharged() {
        use crate::fault::FaultPlan;
        let mut plan = FaultPlan::none();
        plan.dfs_read_failure_rate = 0.5;
        plan.seed = 11;
        // Enough retries that no read plausibly exhausts them (0.5^16).
        plan.max_attempts = 16;
        let dfs = Dfs::with_faults(FaultInjector::new(plan));
        dfs.write("nums", vec![1u64, 2, 3]);
        for _ in 0..50 {
            // Every read eventually succeeds (failures are transient) and
            // returns the right data.
            assert_eq!(*dfs.read::<u64>("nums").unwrap(), vec![1, 2, 3]);
        }
        assert!(dfs.transient_read_failures() > 0);
        // Only successful reads are charged: exactly 50 × 24 bytes.
        assert_eq!(dfs.read_bytes(), 50 * 24);
    }

    #[test]
    fn exhausted_read_retries_surface_unavailable() {
        use crate::fault::FaultPlan;
        let mut plan = FaultPlan::none();
        plan.dfs_read_failure_rate = 1.0;
        let dfs = Dfs::with_faults(FaultInjector::new(plan));
        dfs.write("nums", vec![1u64]);
        assert_eq!(
            dfs.read::<u64>("nums").unwrap_err(),
            DfsError::Unavailable("nums".into())
        );
    }

    #[test]
    fn tampered_frame_surfaces_corrupt() {
        let dfs = Dfs::new();
        dfs.write("nums", vec![1u64, 2, 3]);
        assert_eq!(*dfs.read::<u64>("nums").unwrap(), vec![1, 2, 3]);
        let before = dfs.read_bytes();
        dfs.tamper("nums").unwrap();
        assert_eq!(
            dfs.read::<u64>("nums").unwrap_err(),
            DfsError::Corrupt("nums".into())
        );
        // Corrupt reads are not charged to the byte counters.
        assert_eq!(dfs.read_bytes(), before);
        // Rewriting reseals the frame.
        dfs.write("nums", vec![4u64]);
        assert_eq!(*dfs.read::<u64>("nums").unwrap(), vec![4]);
        assert_eq!(
            dfs.tamper("nope").unwrap_err(),
            DfsError::NotFound("nope".into())
        );
    }

    #[test]
    fn delete_removes() {
        let dfs = Dfs::new();
        dfs.write("d", vec![1u8]);
        dfs.delete("d");
        assert!(!dfs.exists("d"));
    }

    /// A seeded xorshift stand-in for a dataset generator: the same seed
    /// must regenerate a byte-identical dataset, hence the same
    /// fingerprint.
    fn gen_rects(seed: u64, n: usize) -> Vec<(f64, f64, f64, f64)> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (next() * 1e3, next() * 1e3, next() * 10.0, next() * 10.0))
            .collect()
    }

    #[test]
    fn same_seed_regeneration_fingerprints_identically() {
        let dfs = Dfs::new();
        dfs.write("a", gen_rects(42, 500));
        dfs.write("b", gen_rects(42, 500));
        assert_eq!(dfs.fingerprint("a").unwrap(), dfs.fingerprint("b").unwrap());
        assert_eq!(dfs.fingerprint("a").unwrap().to_string().len(), 16);
    }

    #[test]
    fn one_rect_perturbation_changes_fingerprint() {
        let dfs = Dfs::new();
        let base = gen_rects(42, 500);
        let mut perturbed = base.clone();
        perturbed[250].0 += 1e-9;
        dfs.write("base", base);
        dfs.write("perturbed", perturbed);
        assert_ne!(
            dfs.fingerprint("base").unwrap(),
            dfs.fingerprint("perturbed").unwrap()
        );
        assert_eq!(
            dfs.fingerprint("nope").unwrap_err(),
            DfsError::NotFound("nope".into())
        );
    }
}
