//! An in-process, multi-threaded map-reduce engine.
//!
//! This crate stands in for the Hadoop 0.20.2 + HDFS stack the paper runs
//! on (§2, §7.8.1). It executes jobs with real parallelism and a real
//! shuffle — mappers emit `(key, value)` pairs that are partitioned,
//! routed, sorted and grouped per reducer — and it meters exactly the
//! quantities the paper's evaluation reasons about:
//!
//! * **intermediate key-value pairs** (the communication cost that
//!   *Controlled-Replicate* is engineered to minimize),
//! * **shuffle bytes** (via the [`RecordSize`] trait),
//! * **DFS read/write bytes** (the read/write amplification that makes
//!   *2-way Cascade* slow — each chained job re-reads and re-writes its
//!   growing intermediate result through [`Dfs`]),
//! * per-phase and end-to-end wall time.
//!
//! The engine is deliberately faithful to the map-reduce execution model:
//! the reduce phase starts only after every mapper finishes (barrier), all
//! pairs with equal keys meet at a single reducer, and reducers process
//! keys in sorted order. As in Hadoop, sorting happens mapper-side: each
//! map task commits its output as per-partition *sorted runs*, the
//! shuffle k-way-merges them, and reducers borrow each key's values as a
//! slice of the merged buffer — the data path from map emit to reduce is
//! zero-copy.
//!
//! It is also faithful to map-reduce's *failure* model: every map chunk
//! and reduce partition runs as a retryable task attempt whose output
//! commits atomically on success, with speculative re-execution of
//! stragglers — see [`FaultPlan`] for deterministic fault injection;
//! [`Engine::run`] surfaces failed jobs as [`JobError`]s.
//!
//! Jobs are described declaratively with a [`JobSpec`] builder and
//! submitted with [`Engine::run`]; a [`TraceSink`] attached to the engine
//! or to one spec records a span per job, phase and task attempt,
//! exportable as a JSON-lines event log or a `chrome://tracing` file.
//!
//! # Example
//!
//! ```
//! use mwsj_mapreduce::{Engine, EngineConfig, JobSpec, TraceSink};
//!
//! let trace = TraceSink::recording();
//! let engine = Engine::new(EngineConfig::default().with_trace(trace.clone()));
//! let words = vec!["a b", "b c", "c b"];
//! let mut counts = engine
//!     .run(
//!         JobSpec::new("word-count")
//!             .reducers(4)
//!             .map(|line: &&str, emit| {
//!                 for w in line.split(' ') {
//!                     emit(w.to_string(), 1u64);
//!                 }
//!             })
//!             .partition(|key: &String, n| key.len() % n)
//!             .reduce(|word: &String, ones: &[u64], out| {
//!                 out((word.clone(), ones.len() as u64));
//!             }),
//!         &words,
//!     )
//!     .expect("word-count failed");
//! counts.sort();
//! assert_eq!(counts, vec![("a".into(), 1), ("b".into(), 3), ("c".into(), 2)]);
//! assert!(trace.to_chrome_trace().contains("word-count"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfs;
mod engine;
mod fault;
mod metrics;
mod record;
mod schedule;
mod trace;

pub use dfs::{DatasetFingerprint, Dfs, DfsError};
pub use engine::{Engine, EngineConfig, JobSpec, Unset};
pub use fault::{
    FaultInjector, FaultPlan, ForcedFault, JobError, JobErrorKind, NetFault, NetFaultPlan, Phase,
};
pub use metrics::{CostModel, JobMetrics, MetricsHub, MetricsReport};
pub use record::{Fnv64, RecordSize, RunFrame, StableHash};
pub use schedule::{CancelToken, JobRegistration, SlotScheduler};
pub use trace::{
    json_escape, validate_json, AttemptOutcome, RaceWinner, SpanPhase, TraceEvent, TraceSink,
};
