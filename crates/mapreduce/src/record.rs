/// Serialized-size accounting for shuffle and DFS byte metrics.
///
/// The engine never actually serializes records (everything stays in
/// memory), but the paper's communication-cost arguments are about bytes on
/// the wire and on HDFS, so every key, value and stored record reports the
/// size it *would* occupy in a compact binary encoding.
pub trait RecordSize {
    /// The record's encoded size in bytes.
    fn size_bytes(&self) -> usize;
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {
        $(impl RecordSize for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_fixed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl RecordSize for String {
    fn size_bytes(&self) -> usize {
        // 4-byte length prefix + UTF-8 payload.
        4 + self.len()
    }
}

impl RecordSize for &str {
    fn size_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl RecordSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl<T: RecordSize> RecordSize for Option<T> {
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, RecordSize::size_bytes)
    }
}

impl<T: RecordSize> RecordSize for Vec<T> {
    fn size_bytes(&self) -> usize {
        4 + self.iter().map(RecordSize::size_bytes).sum::<usize>()
    }
}

impl<T: RecordSize> RecordSize for Box<T> {
    fn size_bytes(&self) -> usize {
        self.as_ref().size_bytes()
    }
}

impl<A: RecordSize, B: RecordSize> RecordSize for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: RecordSize, B: RecordSize, C: RecordSize> RecordSize for (A, B, C) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

impl<T: RecordSize, const N: usize> RecordSize for [T; N] {
    fn size_bytes(&self) -> usize {
        self.iter().map(RecordSize::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(7u32.size_bytes(), 4);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(1.5f64.size_bytes(), 8);
        assert_eq!(true.size_bytes(), 1);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn strings_carry_length_prefix() {
        assert_eq!("abc".size_bytes(), 7);
        assert_eq!(String::from("abc").size_bytes(), 7);
    }

    #[test]
    fn composites() {
        assert_eq!((1u32, 2u64).size_bytes(), 12);
        assert_eq!(vec![1u32, 2, 3].size_bytes(), 4 + 12);
        assert_eq!(Some(3u16).size_bytes(), 3);
        assert_eq!(None::<u16>.size_bytes(), 1);
        assert_eq!([1u8; 5].size_bytes(), 5);
        assert_eq!(Box::new(9u64).size_bytes(), 8);
    }
}
