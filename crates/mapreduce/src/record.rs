/// Serialized-size accounting for shuffle and DFS byte metrics.
///
/// The engine never actually serializes records (everything stays in
/// memory), but the paper's communication-cost arguments are about bytes on
/// the wire and on HDFS, so every key, value and stored record reports the
/// size it *would* occupy in a compact binary encoding.
pub trait RecordSize {
    /// The record's encoded size in bytes.
    fn size_bytes(&self) -> usize;
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {
        $(impl RecordSize for $t {
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_fixed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl RecordSize for String {
    fn size_bytes(&self) -> usize {
        // 4-byte length prefix + UTF-8 payload.
        4 + self.len()
    }
}

impl RecordSize for &str {
    fn size_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl RecordSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl<T: RecordSize> RecordSize for Option<T> {
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, RecordSize::size_bytes)
    }
}

impl<T: RecordSize> RecordSize for Vec<T> {
    fn size_bytes(&self) -> usize {
        4 + self.iter().map(RecordSize::size_bytes).sum::<usize>()
    }
}

impl<T: RecordSize> RecordSize for Box<T> {
    fn size_bytes(&self) -> usize {
        self.as_ref().size_bytes()
    }
}

impl<A: RecordSize, B: RecordSize> RecordSize for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: RecordSize, B: RecordSize, C: RecordSize> RecordSize for (A, B, C) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

impl<A: RecordSize, B: RecordSize, C: RecordSize, D: RecordSize> RecordSize for (A, B, C, D) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes() + self.3.size_bytes()
    }
}

impl<T: RecordSize, const N: usize> RecordSize for [T; N] {
    fn size_bytes(&self) -> usize {
        self.iter().map(RecordSize::size_bytes).sum()
    }
}

/// Incremental [FNV-1a] 64-bit hasher for [`StableHash`].
///
/// Chosen over `std::hash::Hasher` because dataset fingerprints must be
/// *stable*: reproducible across processes, platforms and releases, so
/// that a result cache keyed on them stays valid. `DefaultHasher` makes no
/// such promise.
///
/// [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The hash of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The integrity frame sealed over one committed spill run or one stored
/// DFS dataset: a record-count length header plus an FNV-64 checksum.
///
/// The engine never serializes payloads (everything stays in memory), so
/// the checksum covers what a compact binary frame would expose without a
/// payload scan: the record count and each record's encoded size, in
/// order. Readers re-derive the frame on open ([`RunFrame::verify`]) and
/// treat any mismatch as at-rest corruption — in the engine's case, by
/// re-executing the map task that produced the run. Deterministic fault
/// injection models a flipped byte by tampering the stored checksum
/// ([`RunFrame::tamper`]), exactly what a real bit flip under a CRC would
/// look like to the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFrame {
    /// Number of records the frame was sealed over (the length header).
    pub len: u64,
    /// FNV-64 over the length header and each record's encoded size.
    pub checksum: u64,
}

impl RunFrame {
    /// Seals a frame over the records as they are committed.
    #[must_use]
    pub fn seal<T: RecordSize>(records: &[T]) -> Self {
        let len = records.len() as u64;
        let mut h = Fnv64::new();
        h.write_u64(len);
        for r in records {
            h.write_u64(r.size_bytes() as u64);
        }
        Self {
            len,
            checksum: h.finish(),
        }
    }

    /// Re-derives the frame from the data read back and compares: `true`
    /// iff both the length header and the checksum match.
    #[must_use]
    pub fn verify<T: RecordSize>(&self, records: &[T]) -> bool {
        *self == Self::seal(records)
    }

    /// Flips one checksum bit — the injected stand-in for at-rest
    /// corruption. Never identity, so a tampered frame always fails
    /// verification.
    #[must_use]
    pub fn tamper(mut self) -> Self {
        self.checksum ^= 1;
        self
    }
}

/// A platform- and process-stable content hash, fed into [`Fnv64`].
///
/// Implemented for every record type the DFS stores; `Dfs::write` folds
/// each record into a per-dataset
/// [`DatasetFingerprint`](crate::DatasetFingerprint). Floats hash their IEEE
/// bit patterns (`to_bits`), so `-0.0` and `0.0` fingerprint differently —
/// fingerprints track *bytes*, not numeric equivalence classes.
pub trait StableHash {
    /// Folds this record into the hasher.
    fn stable_hash(&self, h: &mut Fnv64);
}

macro_rules! impl_stable_int {
    ($($t:ty),*) => {
        $(impl StableHash for $t {
            #[allow(clippy::cast_sign_loss, clippy::cast_lossless)]
            fn stable_hash(&self, h: &mut Fnv64) {
                h.write_u64(*self as u64);
            }
        })*
    };
}

impl_stable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(self.to_bits());
    }
}

impl StableHash for f32 {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(u64::from(self.to_bits()));
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write(&[u8::from(*self)]);
    }
}

impl StableHash for char {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(u64::from(*self));
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(self.len() as u64);
        h.write(self.as_bytes());
    }
}

impl StableHash for &str {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(self.len() as u64);
        h.write(self.as_bytes());
    }
}

impl StableHash for () {
    fn stable_hash(&self, _h: &mut Fnv64) {}
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut Fnv64) {
        match self {
            None => h.write(&[0]),
            Some(v) => {
                h.write(&[1]);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut Fnv64) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Box<T> {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.as_ref().stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash, D: StableHash> StableHash for (A, B, C, D) {
    fn stable_hash(&self, h: &mut Fnv64) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
        self.3.stable_hash(h);
    }
}

impl<T: StableHash, const N: usize> StableHash for [T; N] {
    fn stable_hash(&self, h: &mut Fnv64) {
        for v in self {
            v.stable_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(7u32.size_bytes(), 4);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(1.5f64.size_bytes(), 8);
        assert_eq!(true.size_bytes(), 1);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn strings_carry_length_prefix() {
        assert_eq!("abc".size_bytes(), 7);
        assert_eq!(String::from("abc").size_bytes(), 7);
    }

    #[test]
    fn frame_roundtrip_and_tamper() {
        let records = vec![(1u32, 7u64, "abc".to_string()), (2, 8, "d".into())];
        let frame = RunFrame::seal(&records);
        assert_eq!(frame.len, 2);
        assert!(frame.verify(&records));
        assert!(!frame.tamper().verify(&records));
        // A dropped record fails the length header; a swapped-size record
        // fails the checksum.
        assert!(!frame.verify(&records[..1]));
        let resized = vec![(1u32, 7u64, "abcd".to_string()), (2, 8, String::new())];
        assert!(!frame.verify(&resized));
        // Empty runs still frame (len 0) and verify.
        let empty: Vec<u64> = Vec::new();
        assert!(RunFrame::seal(&empty).verify(&empty));
    }

    #[test]
    fn composites() {
        assert_eq!((1u32, 2u64).size_bytes(), 12);
        assert_eq!(vec![1u32, 2, 3].size_bytes(), 4 + 12);
        assert_eq!(Some(3u16).size_bytes(), 3);
        assert_eq!(None::<u16>.size_bytes(), 1);
        assert_eq!([1u8; 5].size_bytes(), 5);
        assert_eq!(Box::new(9u64).size_bytes(), 8);
    }
}
