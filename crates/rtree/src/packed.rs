//! A serialized, zero-copy view of an STR-packed R-tree.
//!
//! [`pack`] flattens an [`RTree<u32>`] into two plain `u64` word arrays —
//! one for the leaf-packed entries, one for the nodes — preserving the
//! bulk-load layout exactly: entries stay in leaf-pack order, each level's
//! nodes stay contiguous, children precede parents and the root is the
//! last node. [`PackedRTree`] reinterprets borrowed word slices as a
//! queryable tree without rebuilding anything: coordinates are read back
//! with `f64::from_bits` on the fly, so opening a stored dataset costs one
//! validation scan and no per-entry allocation.
//!
//! [`PackedRTree::query_within_scratch`] replicates the traversal of
//! [`RTree::query_within_scratch`] operation for operation (same pruning,
//! same acceptance arithmetic, same visit order), which is what lets the
//! map-side join over stored trees produce byte-identical results to the
//! in-memory kernels.

use mwsj_geom::{Coord, Rect};

use crate::tree::{Node, NodeContent};
use crate::RTree;

/// Words per packed entry: four corner coordinates (IEEE bit patterns)
/// plus the `u32` payload widened to a word.
pub const ENTRY_WORDS: usize = 5;

/// Words per packed node: four MBR corner coordinates, the node kind
/// (0 = leaf, 1 = inner) and the packed `start`/`end` range.
pub const NODE_WORDS: usize = 6;

const KIND_LEAF: u64 = 0;
const KIND_INNER: u64 = 1;

/// Flattens a bulk-loaded tree into `(entry_words, node_words)`.
///
/// Entry *i* occupies words `[5 i .. 5 i + 5]`: `min_x`, `min_y`, `max_x`,
/// `max_y` as `f64::to_bits`, then the payload. Node *j* occupies words
/// `[6 j .. 6 j + 6]`: the four MBR corners, the kind word and
/// `(start << 32) | end` (entry range for leaves, child-node range for
/// inner nodes). An empty tree packs to two empty arrays.
#[must_use]
pub fn pack(tree: &RTree<u32>) -> (Vec<u64>, Vec<u64>) {
    let mut entry_words = Vec::with_capacity(tree.entries.len() * ENTRY_WORDS);
    for (rect, id) in &tree.entries {
        push_rect(&mut entry_words, rect);
        entry_words.push(u64::from(*id));
    }
    let mut node_words = Vec::with_capacity(tree.nodes.len() * NODE_WORDS);
    for Node { mbr, content } in &tree.nodes {
        push_rect(&mut node_words, mbr);
        let (kind, start, end) = match *content {
            NodeContent::Leaf { start, end } => (KIND_LEAF, start, end),
            NodeContent::Inner { start, end } => (KIND_INNER, start, end),
        };
        node_words.push(kind);
        node_words.push((u64::from(start) << 32) | u64::from(end));
    }
    (entry_words, node_words)
}

fn push_rect(words: &mut Vec<u64>, r: &Rect) {
    words.push(r.min_x().to_bits());
    words.push(r.min_y().to_bits());
    words.push(r.max_x().to_bits());
    words.push(r.max_y().to_bits());
}

fn rect_at(words: &[u64], base: usize) -> Option<Rect> {
    Rect::from_bounds(
        f64::from_bits(words[base]),
        f64::from_bits(words[base + 1]),
        f64::from_bits(words[base + 2]),
        f64::from_bits(words[base + 3]),
    )
}

/// A read-only R-tree over borrowed packed words (see [`pack`]).
///
/// Construction validates the whole structure once — word counts, node
/// kinds, range bounds, child ordering and corner finiteness — so queries
/// can trust every access afterwards.
#[derive(Debug, Clone, Copy)]
pub struct PackedRTree<'a> {
    entries: &'a [u64],
    nodes: &'a [u64],
}

impl<'a> PackedRTree<'a> {
    /// Validates packed word arrays and wraps them as a queryable tree.
    ///
    /// # Errors
    /// Describes the first structural defect found: truncated arrays, a
    /// node/entry count mismatch, an unknown node kind, an out-of-bounds
    /// or inverted range, a child range that does not precede its node
    /// (which could cycle), or a non-finite/inverted rectangle.
    pub fn new(entries: &'a [u64], nodes: &'a [u64]) -> Result<Self, String> {
        if !entries.len().is_multiple_of(ENTRY_WORDS) {
            return Err(format!(
                "entry array length {} is not a multiple of {ENTRY_WORDS}",
                entries.len()
            ));
        }
        if !nodes.len().is_multiple_of(NODE_WORDS) {
            return Err(format!(
                "node array length {} is not a multiple of {NODE_WORDS}",
                nodes.len()
            ));
        }
        let num_entries = entries.len() / ENTRY_WORDS;
        let num_nodes = nodes.len() / NODE_WORDS;
        if (num_entries == 0) != (num_nodes == 0) {
            return Err(format!(
                "entry/node count mismatch: {num_entries} entries, {num_nodes} nodes"
            ));
        }
        for i in 0..num_entries {
            let base = i * ENTRY_WORDS;
            if rect_at(entries, base).is_none() {
                return Err(format!("entry {i}: non-finite or inverted rectangle"));
            }
            if entries[base + 4] > u64::from(u32::MAX) {
                return Err(format!("entry {i}: payload exceeds u32"));
            }
        }
        for j in 0..num_nodes {
            let base = j * NODE_WORDS;
            if rect_at(nodes, base).is_none() {
                return Err(format!("node {j}: non-finite or inverted MBR"));
            }
            let kind = nodes[base + 4];
            let range = nodes[base + 5];
            let start = (range >> 32) as usize;
            let end = (range & 0xFFFF_FFFF) as usize;
            if start >= end {
                return Err(format!("node {j}: empty or inverted range {start}..{end}"));
            }
            match kind {
                KIND_LEAF => {
                    if end > num_entries {
                        return Err(format!(
                            "node {j}: leaf range {start}..{end} exceeds {num_entries} entries"
                        ));
                    }
                }
                KIND_INNER => {
                    // Children must strictly precede their parent (the
                    // bulk-load invariant); this also rules out cycles.
                    if end > j {
                        return Err(format!(
                            "node {j}: child range {start}..{end} does not precede the node"
                        ));
                    }
                }
                k => return Err(format!("node {j}: unknown kind {k}")),
            }
        }
        Ok(Self { entries, nodes })
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len() / ENTRY_WORDS
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The MBR of the whole tree (`None` when empty) — the cheap
    /// whole-tree prune for forest probes.
    #[must_use]
    pub fn root_mbr(&self) -> Option<Rect> {
        let num_nodes = self.nodes.len() / NODE_WORDS;
        (num_nodes > 0).then(|| {
            rect_at(self.nodes, (num_nodes - 1) * NODE_WORDS).expect("validated at construction")
        })
    }

    /// The `(rect, payload)` of entry `i` in storage (leaf-pack) order.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn entry(&self, i: usize) -> (Rect, u32) {
        let base = i * ENTRY_WORDS;
        let rect = rect_at(self.entries, base).expect("validated at construction");
        (rect, self.entries[base + 4] as u32)
    }

    /// Iterates over all `(rect, payload)` entries in storage order —
    /// matches [`RTree::iter`] on the packed source tree.
    pub fn iter(&self) -> impl Iterator<Item = (Rect, u32)> + '_ {
        (0..self.len()).map(|i| self.entry(i))
    }

    /// Calls `visit` for every entry within distance `d` (closed) of the
    /// probe; `d == 0` is the overlap query. Pruning, acceptance tests and
    /// visit order replicate [`RTree::query_within_scratch`] exactly.
    pub fn query_within_scratch(
        &self,
        probe: &Rect,
        d: Coord,
        stack: &mut Vec<u32>,
        mut visit: impl FnMut(Rect, u32),
    ) {
        let num_nodes = self.nodes.len() / NODE_WORDS;
        if num_nodes == 0 {
            return;
        }
        stack.clear();
        stack.push((num_nodes - 1) as u32);
        let (p_min_x, p_min_y, p_max_x, p_max_y) =
            (probe.min_x(), probe.min_y(), probe.max_x(), probe.max_y());
        let overlaps = |base: usize, words: &[u64]| {
            let min_x = f64::from_bits(words[base]);
            let min_y = f64::from_bits(words[base + 1]);
            let max_x = f64::from_bits(words[base + 2]);
            let max_y = f64::from_bits(words[base + 3]);
            min_x <= p_max_x && p_min_x <= max_x && min_y <= p_max_y && p_min_y <= max_y
        };
        let distance_sq = |base: usize, words: &[u64]| {
            let min_x = f64::from_bits(words[base]);
            let min_y = f64::from_bits(words[base + 1]);
            let max_x = f64::from_bits(words[base + 2]);
            let max_y = f64::from_bits(words[base + 3]);
            let dx = (p_min_x - max_x).max(min_x - p_max_x).max(0.0);
            let dy = (p_min_y - max_y).max(min_y - p_max_y).max(0.0);
            dx * dx + dy * dy
        };
        if d == 0.0 {
            while let Some(id) = stack.pop() {
                let base = id as usize * NODE_WORDS;
                if !overlaps(base, self.nodes) {
                    continue;
                }
                let (start, end) = node_range(self.nodes[base + 5]);
                if self.nodes[base + 4] == KIND_LEAF {
                    for e in start..end {
                        if overlaps(e as usize * ENTRY_WORDS, self.entries) {
                            let (rect, payload) = self.entry(e as usize);
                            visit(rect, payload);
                        }
                    }
                } else {
                    stack.extend(start..end);
                }
            }
            return;
        }
        let d_sq = d * d;
        while let Some(id) = stack.pop() {
            let base = id as usize * NODE_WORDS;
            if distance_sq(base, self.nodes) > d_sq {
                continue;
            }
            let (start, end) = node_range(self.nodes[base + 5]);
            if self.nodes[base + 4] == KIND_LEAF {
                for e in start..end {
                    if distance_sq(e as usize * ENTRY_WORDS, self.entries) <= d_sq {
                        let (rect, payload) = self.entry(e as usize);
                        visit(rect, payload);
                    }
                }
            } else {
                stack.extend(start..end);
            }
        }
    }
}

fn node_range(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, (word & 0xFFFF_FFFF) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..1000.0);
                let y = rng.random_range(20.0..1000.0);
                let l = rng.random_range(0.0..40.0);
                let b = rng.random_range(0.0..20.0);
                (Rect::new(x, y, l, b), i as u32)
            })
            .collect()
    }

    #[test]
    fn empty_tree_packs_and_queries() {
        let tree: RTree<u32> = RTree::bulk_load(Vec::new());
        let (entries, nodes) = pack(&tree);
        assert!(entries.is_empty() && nodes.is_empty());
        let packed = PackedRTree::new(&entries, &nodes).unwrap();
        assert!(packed.is_empty());
        assert_eq!(packed.root_mbr(), None);
        let mut stack = Vec::new();
        let mut hits = 0;
        packed.query_within_scratch(
            &Rect::new(0.0, 100.0, 50.0, 50.0),
            0.0,
            &mut stack,
            |_, _| hits += 1,
        );
        assert_eq!(hits, 0);
    }

    #[test]
    fn iter_matches_source_tree_storage_order() {
        let tree = RTree::bulk_load(random_rects(777, 3));
        let (entries, nodes) = pack(&tree);
        let packed = PackedRTree::new(&entries, &nodes).unwrap();
        assert_eq!(packed.len(), tree.len());
        for (got, want) in packed.iter().zip(tree.iter()) {
            assert_eq!(got.0, want.0);
            assert_eq!(got.1, want.1);
        }
    }

    #[test]
    fn queries_replicate_source_tree_exactly() {
        // Same hits *in the same visit order*, on both the d == 0 overlap
        // fast path and the d > 0 distance path, across many probes.
        for n in [1usize, 15, 16, 17, 255, 1000, 5000] {
            let tree = RTree::bulk_load(random_rects(n, 40 + n as u64));
            let (entries, nodes) = pack(&tree);
            let packed = PackedRTree::new(&entries, &nodes).unwrap();
            assert_eq!(packed.root_mbr().is_some(), !tree.is_empty());
            let mut rng = StdRng::seed_from_u64(900 + n as u64);
            let mut stack = Vec::new();
            let mut tree_stack = Vec::new();
            for probe_no in 0..40 {
                let probe = Rect::new(
                    rng.random_range(0.0..900.0),
                    rng.random_range(100.0..1000.0),
                    rng.random_range(0.0..120.0),
                    rng.random_range(0.0..120.0),
                );
                let d = if probe_no % 2 == 0 {
                    0.0
                } else {
                    rng.random_range(0.0..90.0)
                };
                let mut got: Vec<(Rect, u32)> = Vec::new();
                packed.query_within_scratch(&probe, d, &mut stack, |r, id| got.push((r, id)));
                let mut want: Vec<(Rect, u32)> = Vec::new();
                tree.query_within_scratch(&probe, d, &mut tree_stack, |r, &id| {
                    want.push((*r, id));
                });
                assert_eq!(got, want, "n = {n}, probe {probe_no}, d = {d}");
            }
        }
    }

    #[test]
    fn validation_rejects_corrupt_words() {
        let tree = RTree::bulk_load(random_rects(100, 9));
        let (entries, nodes) = pack(&tree);
        assert!(PackedRTree::new(&entries, &nodes).is_ok());

        // Truncated arrays.
        assert!(PackedRTree::new(&entries[..entries.len() - 1], &nodes).is_err());
        assert!(PackedRTree::new(&entries, &nodes[..nodes.len() - 1]).is_err());
        // Entries without nodes (and vice versa).
        assert!(PackedRTree::new(&entries, &[]).is_err());
        assert!(PackedRTree::new(&[], &nodes).is_err());

        // Non-finite entry corner.
        let mut bad = entries.clone();
        bad[0] = f64::NAN.to_bits();
        assert!(PackedRTree::new(&bad, &nodes).is_err());
        // Inverted entry extent.
        let mut bad = entries.clone();
        bad.swap(0, 2);
        assert!(PackedRTree::new(&bad, &nodes).is_err());
        // Oversized payload.
        let mut bad = entries.clone();
        bad[4] = u64::from(u32::MAX) + 1;
        assert!(PackedRTree::new(&bad, &nodes).is_err());

        // Unknown node kind.
        let mut bad = nodes.clone();
        bad[4] = 7;
        assert!(PackedRTree::new(&entries, &bad).is_err());
        // Leaf range past the entries.
        let mut bad = nodes.clone();
        bad[5] = (u64::MAX << 32) | u64::MAX;
        assert!(PackedRTree::new(&entries, &bad).is_err());
        // Inner child range that does not precede its node.
        let last = nodes.len() - NODE_WORDS;
        let mut bad = nodes.clone();
        if bad[last + 4] == 1 {
            let count = (nodes.len() / NODE_WORDS) as u64;
            bad[last + 5] = ((count - 1) << 32) | count; // points at itself
            assert!(PackedRTree::new(&entries, &bad).is_err());
        }
        // Empty range.
        let mut bad = nodes.clone();
        bad[5] = 0;
        assert!(PackedRTree::new(&entries, &bad).is_err());
    }
}
