use mwsj_geom::{Coord, Rect};

use crate::NODE_CAPACITY;

/// An immutable R-tree over `(Rect, T)` entries, bulk-loaded with the
/// Sort-Tile-Recursive algorithm.
///
/// `T` is an arbitrary payload (record ids in the join algorithms). Queries
/// return references to payloads of entries whose rectangle overlaps a
/// window ([`RTree::query_overlaps`]) or lies within a distance of a probe
/// rectangle ([`RTree::query_within`]).
#[derive(Debug, Clone)]
pub struct RTree<T> {
    pub(crate) nodes: Vec<Node>,
    pub(crate) entries: Vec<(Rect, T)>,
    pub(crate) root: Option<usize>,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) mbr: Rect,
    pub(crate) content: NodeContent,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeContent {
    /// Entries `entries[start..end]`. Bulk load stores entries in leaf-pack
    /// order, so a leaf scan is one sequential read — no index indirection,
    /// no per-leaf allocation.
    Leaf { start: u32, end: u32 },
    /// Child nodes `nodes[start..end]` (each level is packed contiguously,
    /// so a node's children are consecutive ids).
    Inner { start: u32, end: u32 },
}

impl<T> RTree<T> {
    /// Bulk-loads a tree from `(rect, payload)` entries using STR packing.
    #[must_use]
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        if items.is_empty() {
            return Self {
                nodes: Vec::new(),
                entries: Vec::new(),
                root: None,
            };
        }
        // STR: sort by center-x, tile into vertical slabs of sqrt(n/cap)
        // runs, sort each slab by center-y, pack leaves of NODE_CAPACITY.
        items.sort_unstable_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let n = items.len();
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slab_count);

        // Determine the leaf packing order, then *store the entries in that
        // order*: each leaf owns a contiguous range of `entries`, scanned
        // sequentially at query time.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for slab in idx.chunks_mut(slab_size) {
            slab.sort_unstable_by(|&a, &b| {
                items[a as usize]
                    .0
                    .center()
                    .y
                    .total_cmp(&items[b as usize].0.center().y)
            });
        }
        let mut slots: Vec<Option<(Rect, T)>> = items.into_iter().map(Some).collect();
        let entries: Vec<(Rect, T)> = idx
            .iter()
            .map(|&i| slots[i as usize].take().expect("each index exactly once"))
            .collect();

        let mut nodes: Vec<Node> = Vec::with_capacity(2 * leaf_count);
        let mut start = 0;
        while start < n {
            let end = (start + NODE_CAPACITY).min(n);
            let mbr = entries[start..end]
                .iter()
                .map(|(r, _)| *r)
                .reduce(|a, b| a.union(&b))
                .expect("non-empty chunk");
            nodes.push(Node {
                mbr,
                content: NodeContent::Leaf {
                    start: start as u32,
                    end: end as u32,
                },
            });
            start = end;
        }

        // Build upper levels by packing child MBRs in index order (children
        // are already spatially clustered by the STR pass). Each level is
        // appended contiguously, so children form consecutive id ranges.
        let mut level_start = 0;
        let mut level_len = nodes.len();
        while level_len > 1 {
            let next_start = nodes.len();
            let mut child = level_start;
            let level_end = level_start + level_len;
            while child < level_end {
                let chunk_end = (child + NODE_CAPACITY).min(level_end);
                let mbr = nodes[child..chunk_end]
                    .iter()
                    .map(|node| node.mbr)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty chunk");
                nodes.push(Node {
                    mbr,
                    content: NodeContent::Inner {
                        start: child as u32,
                        end: chunk_end as u32,
                    },
                });
                child = chunk_end;
            }
            level_start = next_start;
            level_len = nodes.len() - next_start;
        }

        Self {
            root: Some(nodes.len() - 1),
            nodes,
            entries,
        }
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(rect, payload)` entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &(Rect, T)> {
        self.entries.iter()
    }

    /// Calls `visit` for every entry whose rectangle (closed) overlaps the
    /// query window.
    pub fn query_overlaps<'a>(&'a self, window: &Rect, visit: impl FnMut(&'a Rect, &'a T)) {
        self.query_within(window, 0.0, visit);
    }

    /// Calls `visit` for every entry whose rectangle lies within distance
    /// `d` (closed) of the probe rectangle. `d = 0` is the overlap query.
    pub fn query_within<'a>(&'a self, probe: &Rect, d: Coord, visit: impl FnMut(&'a Rect, &'a T)) {
        let mut stack = Vec::new();
        self.query_within_scratch(probe, d, &mut stack, visit);
    }

    /// [`RTree::query_within`] with a caller-owned traversal stack: probing
    /// in a loop reuses one buffer instead of allocating a stack per probe.
    /// The stack is cleared on entry; visit order is identical to
    /// [`RTree::query_within`].
    ///
    /// `d == 0` takes an overlap fast path — `distance_sq(a, b) <= 0` iff
    /// both axis gaps are zero iff the closed rectangles overlap, so the
    /// acceptance test reduces to four comparisons with no arithmetic.
    pub fn query_within_scratch<'a>(
        &'a self,
        probe: &Rect,
        d: Coord,
        stack: &mut Vec<u32>,
        mut visit: impl FnMut(&'a Rect, &'a T),
    ) {
        let Some(root) = self.root else { return };
        stack.clear();
        stack.push(root as u32);
        if d == 0.0 {
            while let Some(id) = stack.pop() {
                let node = &self.nodes[id as usize];
                if !node.mbr.overlaps(probe) {
                    continue;
                }
                match node.content {
                    NodeContent::Leaf { start, end } => {
                        for (rect, payload) in &self.entries[start as usize..end as usize] {
                            if rect.overlaps(probe) {
                                visit(rect, payload);
                            }
                        }
                    }
                    NodeContent::Inner { start, end } => stack.extend(start..end),
                }
            }
            return;
        }
        let d_sq = d * d;
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.mbr.distance_sq(probe) > d_sq {
                continue;
            }
            match node.content {
                NodeContent::Leaf { start, end } => {
                    for (rect, payload) in &self.entries[start as usize..end as usize] {
                        if rect.distance_sq(probe) <= d_sq {
                            visit(rect, payload);
                        }
                    }
                }
                NodeContent::Inner { start, end } => stack.extend(start..end),
            }
        }
    }

    /// Clears `out` and fills it with the payloads of every entry within
    /// distance `d` (closed) of the probe rectangle — the buffer-reusing
    /// twin of [`RTree::query_within`]. Callers probing in a loop keep one
    /// allocation alive across probes instead of collecting a fresh `Vec`
    /// each time.
    pub fn query_within_into(&self, probe: &Rect, d: Coord, out: &mut Vec<T>)
    where
        T: Clone,
    {
        out.clear();
        self.query_within(probe, d, |_, t| out.push(t.clone()));
    }

    /// Collects payload references overlapping the window (convenience for
    /// tests and small probes; hot paths use the visitor form).
    #[must_use]
    pub fn overlapping(&self, window: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.query_overlaps(window, |_, t| out.push(t));
        out
    }

    /// Returns the entry nearest to the probe rectangle (smallest closed
    /// rectangle-to-rectangle distance), with its distance. Ties resolve to
    /// the entry earliest in storage order. Best-first branch-and-bound
    /// over node MBR distances.
    #[must_use]
    pub fn nearest(&self, probe: &Rect) -> Option<(&Rect, &T, Coord)> {
        use std::cmp::Ordering as CmpOrdering;
        use std::collections::BinaryHeap;

        /// Min-heap item ordered by distance (then insertion order for
        /// deterministic tie-breaks).
        struct Item {
            dist: Coord,
            seq: u64,
            node: usize,
        }
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist && self.seq == other.seq
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                // Reverse for a min-heap; distances are finite by
                // construction.
                other
                    .dist
                    .total_cmp(&self.dist)
                    .then(other.seq.cmp(&self.seq))
            }
        }

        let root = self.root?;
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Item {
            dist: self.nodes[root].mbr.distance(probe),
            seq,
            node: root,
        });
        let mut best: Option<(u32, Coord)> = None;
        while let Some(item) = heap.pop() {
            if let Some((_, best_d)) = best {
                if item.dist > best_d {
                    break; // every remaining node is farther
                }
            }
            match self.nodes[item.node].content {
                NodeContent::Leaf { start, end } => {
                    for e in start..end {
                        let d = self.entries[e as usize].0.distance(probe);
                        let better = match best {
                            None => true,
                            Some((be, bd)) => d < bd || (d == bd && e < be),
                        };
                        if better {
                            best = Some((e, d));
                        }
                    }
                }
                NodeContent::Inner { start, end } => {
                    for c in start..end {
                        seq += 1;
                        heap.push(Item {
                            dist: self.nodes[c as usize].mbr.distance(probe),
                            seq,
                            node: c as usize,
                        });
                    }
                }
            }
        }
        best.map(|(e, d)| {
            let (rect, payload) = &self.entries[e as usize];
            (rect, payload, d)
        })
    }

    /// Returns the `k` entries nearest to the probe (by closed rectangle
    /// distance, ties toward earlier storage order), sorted nearest-first.
    /// Fewer than `k` when the tree is smaller. Branch-and-bound: nodes
    /// farther than the current k-th best are never opened.
    #[must_use]
    pub fn k_nearest(&self, probe: &Rect, k: usize) -> Vec<(&Rect, &T, Coord)> {
        if k == 0 {
            return Vec::new();
        }
        let Some(root) = self.root else {
            return Vec::new();
        };
        // Current k best as (distance, entry index), kept sorted ascending;
        // worst at the back. k is small in practice (NN queries), so a
        // sorted Vec beats a heap.
        let mut best: Vec<(Coord, u32)> = Vec::with_capacity(k + 1);
        let mut stack: Vec<(Coord, usize)> = vec![(self.nodes[root].mbr.distance(probe), root)];
        while let Some((node_dist, node)) = stack.pop() {
            if best.len() == k && node_dist > best[k - 1].0 {
                continue;
            }
            match self.nodes[node].content {
                NodeContent::Leaf { start, end } => {
                    for e in start..end {
                        let d = self.entries[e as usize].0.distance(probe);
                        let cand = (d, e);
                        if best.len() == k {
                            let worst = best[k - 1];
                            if (cand.0, cand.1) >= (worst.0, worst.1) {
                                continue;
                            }
                        }
                        let pos = best.partition_point(|&(bd, be)| (bd, be) < (cand.0, cand.1));
                        best.insert(pos, cand);
                        best.truncate(k);
                    }
                }
                NodeContent::Inner { start, end } => {
                    for c in start..end {
                        let d = self.nodes[c as usize].mbr.distance(probe);
                        if best.len() < k || d <= best[k - 1].0 {
                            stack.push((d, c as usize));
                        }
                    }
                }
            }
        }
        best.into_iter()
            .map(|(d, e)| {
                let (rect, payload) = &self.entries[e as usize];
                (rect, payload, d)
            })
            .collect()
    }

    /// True if any entry overlaps the window.
    #[must_use]
    pub fn any_overlaps(&self, window: &Rect) -> bool {
        let mut found = false;
        // Early exit: the visitor API scans the whole result set, so walk
        // manually here.
        let Some(root) = self.root else { return false };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if found {
                break;
            }
            let node = &self.nodes[id];
            if !node.mbr.overlaps(window) {
                continue;
            }
            match node.content {
                NodeContent::Leaf { start, end } => {
                    if self.entries[start as usize..end as usize]
                        .iter()
                        .any(|(r, _)| r.overlaps(window))
                    {
                        found = true;
                    }
                }
                NodeContent::Inner { start, end } => {
                    stack.extend((start..end).map(|c| c as usize));
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..1000.0);
                let y = rng.random_range(20.0..1000.0);
                let l = rng.random_range(0.0..40.0);
                let b = rng.random_range(0.0..20.0);
                (Rect::new(x, y, l, b), i)
            })
            .collect()
    }

    fn brute_overlaps(items: &[(Rect, usize)], w: &Rect) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.overlaps(w))
            .map(|&(_, i)| i)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_within(items: &[(Rect, usize)], w: &Rect, d: Coord) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.within_distance(w, d))
            .map(|&(_, i)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.overlapping(&Rect::new(0.0, 10.0, 10.0, 10.0)).is_empty());
        assert!(!t.any_overlaps(&Rect::new(0.0, 10.0, 10.0, 10.0)));
    }

    #[test]
    fn single_entry() {
        let t = RTree::bulk_load(vec![(Rect::new(5.0, 10.0, 2.0, 2.0), 42usize)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.overlapping(&Rect::new(6.0, 9.0, 1.0, 1.0)), vec![&42]);
        assert!(t.overlapping(&Rect::new(20.0, 9.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn overlap_query_matches_brute_force() {
        let items = random_rects(500, 7);
        let tree = RTree::bulk_load(items.clone());
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let w = Rect::new(
                rng.random_range(0.0..900.0),
                rng.random_range(100.0..1000.0),
                rng.random_range(0.0..150.0),
                rng.random_range(0.0..150.0),
            );
            let mut got: Vec<usize> = tree.overlapping(&w).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_overlaps(&items, &w));
        }
    }

    #[test]
    fn within_query_matches_brute_force() {
        let items = random_rects(400, 11);
        let tree = RTree::bulk_load(items.clone());
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let w = Rect::new(
                rng.random_range(0.0..900.0),
                rng.random_range(100.0..1000.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
            );
            let d = rng.random_range(0.0..80.0);
            let mut got = Vec::new();
            tree.query_within(&w, d, |_, &i| got.push(i));
            got.sort_unstable();
            assert_eq!(got, brute_within(&items, &w, d));
        }
    }

    #[test]
    fn query_within_into_matches_visitor_and_reuses_buffer() {
        let items = random_rects(400, 19);
        let tree = RTree::bulk_load(items.clone());
        let mut buf: Vec<usize> = Vec::new();
        let mut rng = StdRng::seed_from_u64(4000);
        for _ in 0..30 {
            let w = Rect::new(
                rng.random_range(0.0..900.0),
                rng.random_range(100.0..1000.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
            );
            let d = rng.random_range(0.0..80.0);
            // The buffer is cleared, not appended to — stale contents from
            // the previous probe must not leak.
            tree.query_within_into(&w, d, &mut buf);
            let mut expect = Vec::new();
            tree.query_within(&w, d, |_, &i| expect.push(i));
            assert_eq!(buf, expect, "same payloads in the same visit order");
        }
    }

    #[test]
    fn query_within_scratch_matches_fresh_stack_at_all_distances() {
        // d == 0 takes the overlap fast path; d > 0 the distance path —
        // both must visit exactly what query_within visits, in the same
        // order, with one stack reused across every probe.
        let items = random_rects(400, 21);
        let tree = RTree::bulk_load(items.clone());
        let mut stack: Vec<u32> = Vec::new();
        let mut rng = StdRng::seed_from_u64(4100);
        for probe_no in 0..30 {
            let w = Rect::new(
                rng.random_range(0.0..900.0),
                rng.random_range(100.0..1000.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
            );
            let d = if probe_no % 2 == 0 {
                0.0
            } else {
                rng.random_range(0.0..80.0)
            };
            let mut got = Vec::new();
            tree.query_within_scratch(&w, d, &mut stack, |_, &i| got.push(i));
            let mut expect = Vec::new();
            tree.query_within(&w, d, |_, &i| expect.push(i));
            assert_eq!(got, expect, "probe {probe_no} (d = {d})");
        }
    }

    #[test]
    fn any_overlaps_agrees_with_query() {
        let items = random_rects(300, 13);
        let tree = RTree::bulk_load(items.clone());
        let mut rng = StdRng::seed_from_u64(3000);
        for _ in 0..50 {
            let w = Rect::new(
                rng.random_range(0.0..1000.0),
                rng.random_range(20.0..1000.0),
                rng.random_range(0.0..30.0),
                rng.random_range(0.0..30.0),
            );
            assert_eq!(tree.any_overlaps(&w), !tree.overlapping(&w).is_empty());
        }
    }

    #[test]
    fn duplicate_rectangles_are_all_returned() {
        let r = Rect::new(10.0, 20.0, 5.0, 5.0);
        let items: Vec<(Rect, usize)> = (0..40).map(|i| (r, i)).collect();
        let tree = RTree::bulk_load(items);
        assert_eq!(tree.overlapping(&r).len(), 40);
    }

    #[test]
    fn large_tree_has_multiple_levels_and_stays_correct() {
        let items = random_rects(5000, 17);
        let tree = RTree::bulk_load(items.clone());
        let w = Rect::new(200.0, 800.0, 300.0, 300.0);
        let mut got: Vec<usize> = tree.overlapping(&w).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, brute_overlaps(&items, &w));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_overlap_query_equals_scan(
            rects in proptest::collection::vec(
                (0.0..500.0f64, 50.0..500.0f64, 0.0..50.0f64, 0.0..50.0f64), 0..120),
            wx in 0.0..500.0f64, wy in 50.0..500.0f64, wl in 0.0..200.0f64, wb in 0.0..200.0f64,
        ) {
            let items: Vec<(Rect, usize)> = rects
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, l, b))| (Rect::new(x, y, l, b), i))
                .collect();
            let w = Rect::new(wx, wy, wl, wb);
            let tree = RTree::bulk_load(items.clone());
            let mut got: Vec<usize> = tree.overlapping(&w).into_iter().copied().collect();
            got.sort_unstable();
            prop_assert_eq!(got, brute_overlaps(&items, &w));
        }

        #[test]
        fn prop_within_query_equals_scan(
            rects in proptest::collection::vec(
                (0.0..500.0f64, 50.0..500.0f64, 0.0..50.0f64, 0.0..50.0f64), 0..100),
            wx in 0.0..500.0f64, wy in 50.0..500.0f64, d in 0.0..100.0f64,
        ) {
            let items: Vec<(Rect, usize)> = rects
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, l, b))| (Rect::new(x, y, l, b), i))
                .collect();
            let w = Rect::new(wx, wy, 10.0, 10.0);
            let tree = RTree::bulk_load(items.clone());
            let mut got = Vec::new();
            tree.query_within(&w, d, |_, &i| got.push(i));
            got.sort_unstable();
            prop_assert_eq!(got, brute_within(&items, &w, d));
        }
    }
}

#[cfg(test)]
mod nearest_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..1000.0),
                        rng.random_range(20.0..1000.0),
                        rng.random_range(0.0..30.0),
                        rng.random_range(0.0..15.0),
                    ),
                    i,
                )
            })
            .collect()
    }

    fn brute_nearest(items: &[(Rect, usize)], probe: &Rect) -> Option<(usize, f64)> {
        items
            .iter()
            .map(|(r, i)| (*i, r.distance(probe)))
            .min_by(|(i1, d1), (i2, d2)| d1.total_cmp(d2).then(i1.cmp(i2)))
    }

    #[test]
    fn nearest_empty_tree() {
        let t: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(t.nearest(&Rect::new(0.0, 1.0, 1.0, 1.0)).is_none());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let items = random_rects(600, 5);
        let tree = RTree::bulk_load(items.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let probe = Rect::new(
                rng.random_range(0.0..1000.0),
                rng.random_range(10.0..1000.0),
                rng.random_range(0.0..10.0),
                rng.random_range(0.0..10.0),
            );
            let (_, &id, d) = tree.nearest(&probe).unwrap();
            let (bid, bd) = brute_nearest(&items, &probe).unwrap();
            assert_eq!(d, bd, "distance mismatch");
            // With equal distance, ids may differ only if distances tie;
            // the tree breaks ties by storage order == insertion order
            // after STR sorting, so compare distances of both.
            assert_eq!(items[bid].0.distance(&probe), items[id].0.distance(&probe));
        }
    }

    #[test]
    fn nearest_overlapping_probe_returns_zero() {
        let items = random_rects(100, 6);
        let tree = RTree::bulk_load(items.clone());
        let probe = items[42].0;
        let (_, _, d) = tree.nearest(&probe).unwrap();
        assert_eq!(d, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_nearest_distance_equals_scan(
            rects in proptest::collection::vec(
                (0.0..400.0f64, 40.0..400.0f64, 0.0..40.0f64, 0.0..40.0f64), 1..80),
            px in 0.0..400.0f64, py in 40.0..400.0f64,
        ) {
            let items: Vec<(Rect, usize)> = rects
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, l, b))| (Rect::new(x, y, l, b), i))
                .collect();
            let tree = RTree::bulk_load(items.clone());
            let probe = Rect::new(px, py, 1.0, 1.0);
            let (_, _, d) = tree.nearest(&probe).unwrap();
            let (_, bd) = brute_nearest(&items, &probe).unwrap();
            prop_assert_eq!(d, bd);
        }
    }
}

#[cfg(test)]
mod k_nearest_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..500.0),
                        rng.random_range(10.0..500.0),
                        rng.random_range(0.0..10.0),
                        rng.random_range(0.0..10.0),
                    ),
                    i,
                )
            })
            .collect()
    }

    fn brute_k(items: &[(Rect, usize)], probe: &Rect, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = items.iter().map(|(r, _)| r.distance(probe)).collect();
        d.sort_unstable_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn k_nearest_distances_match_brute_force() {
        let items = random_rects(300, 21);
        let tree = RTree::bulk_load(items.clone());
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..40 {
            let probe = Rect::new(
                rng.random_range(0.0..500.0),
                rng.random_range(10.0..500.0),
                2.0,
                2.0,
            );
            for k in [1usize, 3, 10, 50] {
                let got: Vec<f64> = tree
                    .k_nearest(&probe, k)
                    .iter()
                    .map(|&(_, _, d)| d)
                    .collect();
                assert_eq!(got, brute_k(&items, &probe, k), "k = {k}");
            }
        }
    }

    #[test]
    fn k_zero_and_k_exceeding_size() {
        let items = random_rects(5, 22);
        let tree = RTree::bulk_load(items);
        let probe = Rect::new(100.0, 100.0, 1.0, 1.0);
        assert!(tree.k_nearest(&probe, 0).is_empty());
        assert_eq!(tree.k_nearest(&probe, 50).len(), 5);
    }

    #[test]
    fn results_sorted_ascending() {
        let items = random_rects(200, 23);
        let tree = RTree::bulk_load(items);
        let probe = Rect::new(250.0, 250.0, 1.0, 1.0);
        let res = tree.k_nearest(&probe, 20);
        for w in res.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn k_one_agrees_with_nearest() {
        let items = random_rects(150, 24);
        let tree = RTree::bulk_load(items);
        let probe = Rect::new(33.0, 44.0, 1.0, 1.0);
        let (_, _, d1) = tree.nearest(&probe).unwrap();
        assert_eq!(tree.k_nearest(&probe, 1)[0].2, d1);
    }
}
