//! An STR (Sort-Tile-Recursive) bulk-loaded R-tree.
//!
//! Every reducer-local join in this workspace needs a spatial index: the
//! 2-way local joins of §5, the multi-way backtracking matcher, and the
//! C-Rep round-1 marking procedure all probe "which rectangles of relation
//! R overlap / lie within d of this window?". The paper leaves the local
//! algorithm unspecified; we use index nested loops over an R-tree,
//! validated against plane sweep and brute force in `mwsj-local`.
//!
//! The tree is immutable after construction (reducer inputs are batch data),
//! so STR bulk loading gives near-optimal packing with no insert machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packed;
mod tree;

pub use packed::{pack, PackedRTree};
pub use tree::RTree;

/// Maximum number of entries per R-tree node. 16 balances fan-out against
/// per-node scan cost for the workload sizes in the experiments.
pub const NODE_CAPACITY: usize = 16;
