//! Shared harness for the table benchmarks.
//!
//! Every table of the paper's evaluation (Tables 2-9) has a bench target
//! (`cargo bench -p mwsj-bench --bench tableN`) that regenerates the
//! table's rows and columns. The paper's runs use millions of rectangles
//! and a 16-core Hadoop cluster for hours; these harnesses run the same
//! experiments scaled down while preserving the join *density* (and thus
//! the comparative shape of the results): with scale factor `s`, dataset
//! sizes shrink to `s x nI` and the space extent to `sqrt(s)` of the
//! paper's, keeping `n x (side / extent)²` — the expected number of
//! neighbours per rectangle — identical to the paper's setup, row by row.
//!
//! Set the `MWSJ_SCALE` environment variable (default `0.01`) to rescale:
//! larger values approach the paper's workloads at the cost of runtime.
//!
//! Every table binary also accepts fault-injection flags after `--`
//! (`cargo bench -p mwsj-bench --bench table2 -- --fault-rate 0.05
//! --fault-seed 7 [--straggler-rate P]`): the whole table then runs under
//! the given chaos plan, and — because retried task attempts never commit
//! partial output — prints exactly the same numbers as the fault-free run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinOutput, JoinRun};
use mwsj_geom::Rect;
use mwsj_mapreduce::{CostModel, EngineConfig, FaultPlan};
use mwsj_query::Query;

/// The scale factor `s` (fraction of the paper's dataset sizes).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("MWSJ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(0.01)
}

/// Scales one of the paper's dataset sizes.
#[must_use]
pub fn scaled_n(paper_n: u64) -> usize {
    ((paper_n as f64) * scale()).round().max(1.0) as usize
}

/// Repetitions per measurement (`MWSJ_BENCH_REPS`, default 3); each
/// measured wall is the fastest of these.
#[must_use]
pub fn bench_reps() -> usize {
    std::env::var("MWSJ_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3)
}

/// Worker threads available to this bench run.
#[must_use]
pub fn nproc() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Scales one of the paper's space extents (by `sqrt(s)`, preserving
/// density).
#[must_use]
pub fn scaled_extent(paper_extent: f64) -> f64 {
    paper_extent * scale().sqrt()
}

/// Contracts rectangle *positions* toward the origin by `factor` while
/// keeping sizes — used to restore the paper's road density when sampling
/// fewer road MBBs than the full California dataset.
#[must_use]
pub fn densify(rects: &[Rect], factor: f64) -> Vec<Rect> {
    assert!(factor > 0.0 && factor <= 1.0);
    rects
        .iter()
        .map(|r| Rect::new(r.x() * factor, r.y() * factor, r.l(), r.b()))
        .collect()
}

/// The fault plan requested on the bench command line (`--fault-rate P`,
/// `--straggler-rate P`, `--fault-seed N` after `--`), or `None` when no
/// fault flag was given. Unknown flags are left for the harness.
#[must_use]
pub fn fault_plan_from_args() -> Option<FaultPlan> {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<f64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let rate = value_of("--fault-rate");
    let straggler = value_of("--straggler-rate");
    let seed = value_of("--fault-seed");
    if rate.is_none() && straggler.is_none() && seed.is_none() {
        return None;
    }
    Some(FaultPlan::chaos(
        seed.unwrap_or(0.0) as u64,
        rate.unwrap_or(0.0),
        straggler.unwrap_or(0.0),
    ))
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    if let Some(plan) = fault_plan_from_args() {
        eprintln!(
            "fault injection: rate {}, stragglers {}, seed {}",
            plan.map_failure_rate, plan.straggler_rate, plan.seed
        );
        config.fault_plan = Some(plan);
    }
    config
}

/// A square cluster over `[0, extent]²` with the paper's 8x8 reducer grid.
#[must_use]
pub fn paper_cluster(extent: f64) -> Cluster {
    Cluster::new(
        ClusterConfig::for_space((0.0, extent), (0.0, extent), 8).with_engine(engine_config()),
    )
}

/// A cluster over an `x_extent x y_extent` space (California experiments).
#[must_use]
pub fn rect_cluster(x_extent: f64, y_extent: f64) -> Cluster {
    Cluster::new(ClusterConfig {
        x_range: (0.0, x_extent),
        y_range: (0.0, y_extent),
        grid_cols: 8,
        grid_rows: 8,
        num_reducers: None,
        engine: engine_config(),
    })
}

/// One measured algorithm run.
pub struct Measured {
    /// Wall time of the full run.
    pub wall: Duration,
    /// The run's output and metrics.
    pub output: JoinOutput,
}

/// Runs one algorithm in count-only mode (the tables report times and
/// replication counts; the paper's heavier rows produce outputs too large
/// to materialize), measuring end-to-end wall time.
///
/// The run repeats `MWSJ_BENCH_REPS` times (default 3) and keeps the
/// fastest — on a small shared box a single run is dominated by scheduler
/// and allocator noise. The logical counters are deterministic across
/// repeats (the chaos suite pins this), so best-of-N only stabilizes the
/// walls.
#[must_use]
pub fn measure(
    cluster: &Cluster,
    query: &Query,
    relations: &[&[Rect]],
    algorithm: Algorithm,
) -> Measured {
    (0..bench_reps())
        .map(|_| {
            let t0 = Instant::now();
            let output = cluster
                .submit(
                    &JoinRun::new(query, relations)
                        .algorithm(algorithm)
                        .counting(),
                )
                .unwrap_or_else(|e| panic!("{e}"));
            Measured {
                wall: t0.elapsed(),
                output,
            }
        })
        .min_by_key(|m| m.wall)
        .expect("at least one rep")
}

/// Formats a duration as `mm:ss.mmm` (the paper prints hh:mm; at our scale
/// milliseconds matter).
#[must_use]
pub fn fmt_time(d: Duration) -> String {
    let ms = d.as_millis();
    format!(
        "{:02}:{:02}.{:03}",
        ms / 60_000,
        (ms / 1_000) % 60,
        ms % 1_000
    )
}

/// Extrapolates a scaled run to an estimated full-scale Hadoop time: the
/// metered byte counters and compute walls are scaled by `1 / s_eff`
/// (communication and join output grow linearly in the scale factor) and
/// priced with [`CostModel::hadoop_2013`] — per-job overhead, shuffle
/// bandwidth and DFS bandwidth. A rough extrapolation, but it restores the
/// costs the in-memory substrate hides (job startup and intermediate-result
/// I/O — exactly what §6.4 blames for the cascade's behaviour).
#[must_use]
pub fn extrapolated_model(m: &Measured, s_eff: f64) -> Duration {
    let model = CostModel::hadoop_2013();
    let r = &m.output.report;
    let mut total = Duration::ZERO;
    for j in &r.jobs {
        total += model.per_job_overhead;
        total += (j.map_wall + j.reduce_wall).div_f64(s_eff);
        total +=
            Duration::from_secs_f64(j.shuffle_bytes as f64 / s_eff / model.shuffle_bytes_per_sec);
    }
    total += Duration::from_secs_f64(
        (r.dfs_read_bytes + r.dfs_write_bytes) as f64 / s_eff / model.dfs_bytes_per_sec,
    );
    total
}

/// Formats a duration as `hh:mm:ss` (the paper prints hh:mm; the seconds
/// keep resolution for fast extrapolated rows).
#[must_use]
pub fn fmt_hhmm(d: Duration) -> String {
    let secs = d.as_secs();
    format!(
        "{:02}:{:02}:{:02}",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// The combined time column: measured wall, plus the full-scale Hadoop
/// extrapolation in the paper's `hh:mm` format.
#[must_use]
pub fn fmt_times(m: &Measured, s_eff: f64) -> String {
    format!(
        "{} [{}]",
        fmt_time(m.wall),
        fmt_hhmm(extrapolated_model(m, s_eff))
    )
}

/// Formats the paper's "# Recs Replicated (after replication)" column.
#[must_use]
pub fn fmt_repl(m: &Measured) -> String {
    format!(
        "{} ({})",
        m.output.stats.rectangles_replicated, m.output.stats.rectangles_after_replication
    )
}

/// Prints the standard table header block.
pub fn print_header(table: &str, caption: &str, workload: &str, columns: &[&str]) {
    println!("=== {table}: {caption} ===");
    println!("{workload}");
    println!(
        "scale s = {} (MWSJ_SCALE; 1.0 = the paper's sizes)",
        scale()
    );
    println!();
    println!("{}", columns.join(" | "));
    let width = columns.join(" | ").len();
    println!("{}", "-".repeat(width));
}

/// Collects per-phase timing records across a table's runs and writes them
/// as a machine-readable `BENCH_<table>.json` file next to the printed
/// table — one record per map-reduce job, with the phase walls and the
/// headline logical counters of that job.
///
/// The JSON is emitted by hand (the workspace's offline `serde` is a
/// no-op shim); `mwsj_mapreduce::validate_json` accepts the output.
pub struct BenchLog {
    table: String,
    records: Vec<String>,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

impl BenchLog {
    /// Starts a log for one table (e.g. `"table2"`).
    #[must_use]
    pub fn new(table: &str) -> Self {
        Self {
            table: table.to_string(),
            records: Vec::new(),
        }
    }

    /// Records every job of one measured run under a row label.
    pub fn record(&mut self, row: &str, algorithm: Algorithm, m: &Measured) {
        let r = &m.output.report;
        for j in &r.jobs {
            self.records.push(format!(
                concat!(
                    "{{\"row\":{row},\"algorithm\":{alg},\"job\":{job},",
                    "\"map_ms\":{map},\"sort_ms\":{sort},\"shuffle_ms\":{shuf},",
                    "\"merge_ms\":{merge},\"reduce_ms\":{red},",
                    "\"total_ms\":{total},\"kv_pairs\":{kv},\"shuffle_bytes\":{sb},",
                    "\"spill_runs\":{runs},",
                    "\"retries\":{retries},\"speculative_launched\":{spec}}}"
                ),
                row = json_str(row),
                alg = json_str(algorithm.name()),
                job = json_str(&j.job_name),
                map = ms(j.map_wall),
                sort = ms(j.sort_wall),
                shuf = ms(j.shuffle_wall),
                merge = ms(j.merge_wall),
                red = ms(j.reduce_wall),
                total = ms(j.total_wall),
                kv = j.map_output_records,
                sb = j.shuffle_bytes,
                runs = j.spill_runs,
                retries = j.retries,
                spec = j.speculative_launched,
            ));
        }
        self.records.push(format!(
            concat!(
                "{{\"row\":{row},\"algorithm\":{alg},\"run\":true,",
                "\"wall_ms\":{wall},\"tuples\":{tuples},\"jobs\":{jobs},",
                "\"dfs_read_bytes\":{dr},\"dfs_write_bytes\":{dw},",
                "\"replicated\":{repl},\"after_replication\":{after}}}"
            ),
            row = json_str(row),
            alg = json_str(algorithm.name()),
            wall = ms(m.wall),
            tuples = m.output.tuple_count,
            jobs = r.num_jobs(),
            dr = r.dfs_read_bytes,
            dw = r.dfs_write_bytes,
            repl = m.output.stats.rectangles_replicated,
            after = m.output.stats.rectangles_after_replication,
        ));
    }

    /// Appends one pre-rendered JSON object to the record list — for
    /// benches whose records do not follow the per-job table shape (the
    /// engine micro-benchmark records one object per shuffle
    /// implementation).
    pub fn push_record(&mut self, json: String) {
        self.records.push(json);
    }

    /// Renders the full document. The `env` header records where the
    /// numbers came from (worker threads, repetitions, scale), so
    /// `BENCH_*.json` trajectories are comparable across machines.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"table\":{},\"scale\":{},\"env\":{{\"nproc\":{},\"bench_reps\":{},\"scale\":{}}},\"records\":[\n{}\n]}}\n",
            json_str(&self.table),
            scale(),
            nproc(),
            bench_reps(),
            scale(),
            self.records.join(",\n")
        )
    }

    /// Writes `BENCH_<table>.json` into the workspace root (cargo runs
    /// benches from the package directory) and reports the path on stderr.
    ///
    /// # Errors
    /// Propagates the underlying file-system error.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate lives two levels below the workspace root");
        let path = root.join(format!("BENCH_{}.json", self.table));
        std::fs::write(&path, self.to_json())?;
        eprintln!(
            "bench log : {} records -> {}",
            self.records.len(),
            path.display()
        );
        Ok(path)
    }
}

/// Asserts that every algorithm in a row produced the same number of
/// output tuples — the tables compare costs of algorithms computing the
/// *same* result (full tuple-level equality is covered by the test
/// suites; counts are what count-only runs expose).
pub fn assert_same_results(row: &str, results: &[&Measured]) {
    if let Some((first, rest)) = results.split_first() {
        for m in rest {
            assert_eq!(
                first.output.tuple_count, m.output.tuple_count,
                "algorithms disagree on row {row}"
            );
        }
    }
}
