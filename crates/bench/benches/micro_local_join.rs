//! Micro-benchmarks for the reducer-local joins: 2-way plane sweep vs the
//! multi-way backtracking matcher restricted to two relations, and the
//! matcher on a 3-chain.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_datagen::SyntheticConfig;
use mwsj_local::{multiway, planesweep, LocalRect};
use mwsj_query::Query;
use std::hint::black_box;

fn relation(n: usize, seed: u64) -> Vec<LocalRect> {
    let mut cfg = SyntheticConfig::paper_default(n, seed);
    cfg.x_range = (0.0, 10_000.0);
    cfg.y_range = (0.0, 10_000.0);
    cfg.generate()
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u32))
        .collect()
}

fn bench_local(c: &mut Criterion) {
    let a = relation(3_000, 1);
    let b = relation(3_000, 2);
    let d3 = relation(3_000, 3);
    let q2 = Query::parse("A ov B").unwrap();
    let q3 = Query::parse("A ov B and B ov C").unwrap();

    let mut group = c.benchmark_group("local_join");
    group.sample_size(20);
    group.bench_function("plane_sweep_2way_3k", |bch| {
        bch.iter(|| black_box(planesweep::sweep_join_pairs(&a, &b, 0.0).len()));
    });
    group.bench_function("matcher_2way_3k", |bch| {
        bch.iter(|| {
            let rels = vec![a.clone(), b.clone()];
            black_box(multiway::multiway_join_ids(&q2, &rels).len())
        });
    });
    group.bench_function("matcher_3chain_3k", |bch| {
        bch.iter(|| {
            let rels = vec![a.clone(), b.clone(), d3.clone()];
            black_box(multiway::multiway_join_ids(&q3, &rels).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_local);
criterion_main!(benches);
