//! Micro-benchmark for the reducer-local multi-way join: the naive
//! recursive matcher (per-group graph walk, `min_by` probe selection,
//! per-candidate neighbor scans, fresh allocations everywhere) vs the
//! precompiled [`mwsj_local::JoinKernel`] the distributed reducers run
//! (static per-depth probe/verify lists, SoA rectangle storage with a
//! linear-scan fast path, iterative stack over a reusable scratch arena).
//!
//! Every workload runs both implementations on identical inputs and
//! asserts the *normalized outputs are identical* before any timing is
//! reported — a result mismatch fails the bench (and the CI perf-smoke
//! step that runs it). Timings land in `BENCH_local.json`.
//!
//! The `reducer_groups` workload is the production shape: many small
//! per-cell groups through one compiled kernel, the case the reusable
//! scratch and one-time plan compilation are designed for.

use std::time::{Duration, Instant};

use mwsj_bench::BenchLog;
use mwsj_datagen::SyntheticConfig;
use mwsj_local::{multiway, planesweep, JoinKernel, LocalRect};
use mwsj_query::Query;

const REPS: usize = 3;

fn relation(n: usize, seed: u64) -> Vec<LocalRect> {
    let mut cfg = SyntheticConfig::paper_default(n, seed);
    cfg.x_range = (0.0, 10_000.0);
    cfg.y_range = (0.0, 10_000.0);
    cfg.generate()
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u32))
        .collect()
}

/// Splits one relation into `groups` spatially coherent chunks (sorted by
/// start x, then chunked) — a stand-in for the per-cell groups a reducer
/// sees (small, many, same query, members close enough to join).
fn grouped(rel: &[LocalRect], groups: usize) -> Vec<Vec<LocalRect>> {
    let mut sorted = rel.to_vec();
    sorted.sort_by(|a, b| a.0.x().total_cmp(&b.0.x()));
    let chunk = sorted.len().div_ceil(groups).max(1);
    sorted.chunks(chunk).map(<[LocalRect]>::to_vec).collect()
}

struct Timed {
    best: Duration,
    tuples: usize,
}

/// Best of [`REPS`] runs of `f`, which returns the tuple count (the
/// returned tuples themselves are compared once, outside the timing).
fn best_of(mut f: impl FnMut() -> usize) -> Timed {
    let mut best = Duration::MAX;
    let mut tuples = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        tuples = f();
        best = best.min(t0.elapsed());
    }
    Timed { best, tuples }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct Workload {
    name: &'static str,
    query: Query,
    relations: Vec<Vec<LocalRect>>,
}

fn workloads() -> Vec<Workload> {
    let a = relation(3_000, 1);
    let b = relation(3_000, 2);
    let c = relation(3_000, 3);
    let d = relation(3_000, 4);
    vec![
        Workload {
            name: "2way_overlap_3k",
            query: Query::parse("A ov B").unwrap(),
            relations: vec![a.clone(), b.clone()],
        },
        Workload {
            name: "3chain_overlap_3k",
            query: Query::parse("A ov B and B ov C").unwrap(),
            relations: vec![a.clone(), b.clone(), c.clone()],
        },
        Workload {
            name: "3chain_hybrid_3k",
            query: Query::parse("A ov B and B ra(60) C").unwrap(),
            relations: vec![a.clone(), b.clone(), c.clone()],
        },
        Workload {
            name: "4star_overlap_3k",
            query: Query::parse("C ov L1 and C ov L2 and C ov L3").unwrap(),
            relations: vec![a.clone(), b.clone(), c, d],
        },
        Workload {
            name: "3cycle_overlap_3k",
            query: Query::parse("A ov B and B ov C and C ov A").unwrap(),
            relations: vec![a, b, relation(3_000, 5)],
        },
    ]
}

fn main() {
    let mut log = BenchLog::new("local");
    println!("=== local-join micro-bench: naive recursive matcher vs compiled kernel ===");
    println!("best of {REPS} runs per implementation; outputs asserted identical");
    println!();
    println!("workload          | naive ms | kernel ms | speedup | tuples");
    println!("------------------+----------+-----------+---------+-------");

    for w in workloads() {
        // Correctness first: identical normalized outputs, once.
        let expected =
            multiway::normalized(multiway::multiway_join_ids_naive(&w.query, &w.relations));
        let got = multiway::normalized(multiway::multiway_join_ids(&w.query, &w.relations));
        assert_eq!(
            expected, got,
            "{}: kernel deviates from naive matcher",
            w.name
        );

        let naive = best_of(|| multiway::multiway_join_ids_naive(&w.query, &w.relations).len());
        let kernel_handle = JoinKernel::new(&w.query);
        let kernel = best_of(|| {
            let mut n = 0;
            kernel_handle.execute(&w.relations, |_| n += 1);
            n
        });
        assert_eq!(naive.tuples, kernel.tuples, "{}", w.name);
        report(&mut log, w.name, &naive, &kernel);
    }

    // The production shape: 64 small groups through one compiled kernel
    // (plan compiled once, scratch warm after the first group) vs the
    // naive matcher rebuilding its walk per group.
    let q = Query::parse("A ov B and B ov C").unwrap();
    let parts: Vec<Vec<Vec<LocalRect>>> = (0..3)
        .map(|i| grouped(&relation(6_400, 10 + i), 64))
        .collect();
    let groups: Vec<Vec<Vec<LocalRect>>> = (0..64)
        .map(|g| (0..3).map(|r| parts[r][g].clone()).collect())
        .collect();
    for g in &groups {
        let expected = multiway::normalized(multiway::multiway_join_ids_naive(&q, g));
        assert_eq!(
            expected,
            multiway::normalized(multiway::multiway_join_ids(&q, g)),
            "reducer_groups: kernel deviates from naive matcher"
        );
    }
    let naive = best_of(|| {
        groups
            .iter()
            .map(|g| multiway::multiway_join_ids_naive(&q, g).len())
            .sum()
    });
    let kernel_handle = JoinKernel::new(&q);
    let kernel = best_of(|| {
        let mut n = 0;
        for g in &groups {
            kernel_handle.execute(g, |_| n += 1);
        }
        n
    });
    assert_eq!(naive.tuples, kernel.tuples, "reducer_groups");
    report(&mut log, "reducer_groups_64x100_3chain", &naive, &kernel);

    // Context line: the specialized 2-way plane sweep on the same input
    // (not an old-vs-new pair; logged for cross-PR comparability).
    let a = relation(3_000, 1);
    let b = relation(3_000, 2);
    let sweep = best_of(|| planesweep::sweep_join_pairs(&a, &b, 0.0).len());
    println!(
        "{:<17} | {:>8} | {:>9.3} | {:>7} | {}",
        "planesweep_2way",
        "-",
        ms(sweep.best),
        "-",
        sweep.tuples
    );
    log.push_record(format!(
        "{{\"workload\":\"planesweep_2way_3k\",\"impl\":\"planesweep\",\"best_ms\":{:.3},\"tuples\":{}}}",
        ms(sweep.best),
        sweep.tuples
    ));

    log.write().expect("write BENCH_local.json");
}

fn report(log: &mut BenchLog, name: &str, naive: &Timed, kernel: &Timed) {
    println!(
        "{:<17} | {:>8.3} | {:>9.3} | {:>6.2}x | {}",
        name,
        ms(naive.best),
        ms(kernel.best),
        naive.best.as_secs_f64() / kernel.best.as_secs_f64().max(1e-9),
        kernel.tuples
    );
    for (im, t) in [("naive", naive), ("kernel", kernel)] {
        log.push_record(format!(
            "{{\"workload\":{name:?},\"impl\":{im:?},\"best_ms\":{ms:.3},\"reps\":{REPS},\"tuples\":{tuples}}}",
            name = name,
            im = im,
            ms = ms(t.best),
            tuples = t.tuples
        ));
    }
}
