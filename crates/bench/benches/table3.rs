//! Table 3 — Query Q2, varying the maximum rectangle dimensions.
//!
//! Paper setup: nI = 2M per relation, l_max = b_max ∈ {100..500}, space
//! 100K². Larger rectangles overlap more, blowing up the intermediate
//! results that make the 2-way Cascade collapse (5h14 at l_max = 500 vs
//! 33min for C-Rep-L). Output sizes grow cubically, so this table runs at
//! an extra 1/20 of the global scale.

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, paper_cluster, print_header, scale,
};
use mwsj_core::Algorithm;
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let s = scale() * 0.05;
    let n = ((2_000_000.0 * s) as usize).max(100);
    let extent = 100_000.0 * s.sqrt();
    let cluster = paper_cluster(extent);
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();

    print_header(
        "Table 3",
        "Q2, varying rectangle dimensions",
        &format!("nI={n}, dS=Uniform, space [0,{extent:.0}]², 8x8 grid (table scale s={s})"),
        &[
            "l_max,b_max",
            "tuples",
            "t Cascade",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
        ],
    );

    for l_max in [100.0, 200.0, 300.0, 400.0, 500.0] {
        let gen = |seed: u64| {
            let mut cfg = SyntheticConfig::paper_default(n, seed).with_max_sides(l_max, l_max);
            cfg.x_range = (0.0, extent);
            cfg.y_range = (0.0, extent);
            cfg.generate()
        };
        let (r1, r2, r3) = (gen(31), gen(32), gen(33));
        let rels: [&[_]; 3] = [&r1, &r2, &r3];

        let cascade = measure(&cluster, &query, &rels, Algorithm::TwoWayCascade);
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_same_results(&format!("l_max = {l_max}"), &[&cascade, &crep, &crepl]);

        println!(
            "{l_max} | {} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&cascade, s),
            fmt_times(&crep, s),
            fmt_times(&crepl, s),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
}
