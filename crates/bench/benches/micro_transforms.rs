//! Micro-benchmarks for the project / split / replicate transforms (§4) —
//! the per-rectangle cost of generating intermediate key-value pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_datagen::SyntheticConfig;
use mwsj_partition::{Grid, Transform};
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let grid = Grid::square((0.0, 100_000.0), (0.0, 100_000.0), 8);
    let data = SyntheticConfig::paper_default(10_000, 7).generate();
    let mut group = c.benchmark_group("transforms");
    group.sample_size(20);
    for (name, t) in [
        ("project", Transform::Project),
        ("split", Transform::Split),
        ("replicate_f1", Transform::ReplicateF1),
        ("replicate_f2_d1000", Transform::ReplicateF2 { d: 1_000.0 }),
        ("split_enlarged_d500", Transform::SplitEnlarged { d: 500.0 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pairs = 0usize;
                for r in &data {
                    pairs += t.target_cells(black_box(r), &grid).len();
                }
                black_box(pairs)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
