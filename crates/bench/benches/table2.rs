//! Table 2 — Query Q2 (`R1 Ov R2 and R2 Ov R3`), varying the dataset size.
//!
//! Paper setup: nI ∈ {1M..5M} per relation, uniform data, sides ≤ 100,
//! space 100K². Compares 2-way Cascade, All-Replicate, C-Rep and C-Rep-L:
//! wall time and rectangles replicated / after replication. The paper cuts
//! All-Rep off beyond 2M ("> 03:00"); this harness mirrors that by running
//! All-Rep only on the two smallest rows.

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, paper_cluster, print_header, scale,
    scaled_extent, scaled_n, BenchLog,
};
use mwsj_core::Algorithm;
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let extent = scaled_extent(100_000.0);
    let cluster = paper_cluster(extent);
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();

    print_header(
        "Table 2",
        "Q2, varying the dataset size",
        &format!(
            "dS=Uniform, dX,dY,dL,dB=Uniform, space [0,{extent:.0}]², sides [0,100], 8x8 grid"
        ),
        &[
            "nI",
            "tuples",
            "t Cascade",
            "t All-Rep",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs All-Rep",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
        ],
    );

    let mut log = BenchLog::new("table2");
    for (row, paper_n) in [1u64, 2, 3, 4, 5].iter().enumerate() {
        let n = scaled_n(paper_n * 1_000_000);
        let gen = |seed: u64| {
            let mut cfg = SyntheticConfig::paper_default(n, seed);
            cfg.x_range = (0.0, extent);
            cfg.y_range = (0.0, extent);
            cfg.generate()
        };
        let (r1, r2, r3) = (
            gen(1000 + row as u64),
            gen(2000 + row as u64),
            gen(3000 + row as u64),
        );
        let rels: [&[_]; 3] = [&r1, &r2, &r3];

        let cascade = measure(&cluster, &query, &rels, Algorithm::TwoWayCascade);
        let all_rep = (row < 2).then(|| measure(&cluster, &query, &rels, Algorithm::AllReplicate));
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);

        let mut same: Vec<&mwsj_bench::Measured> = vec![&cascade, &crep, &crepl];
        if let Some(a) = &all_rep {
            same.push(a);
        }
        assert_same_results(&format!("nI = {n}"), &same);

        let label = format!("nI={n}");
        log.record(&label, Algorithm::TwoWayCascade, &cascade);
        if let Some(a) = &all_rep {
            log.record(&label, Algorithm::AllReplicate, a);
        }
        log.record(&label, Algorithm::ControlledReplicate, &crep);
        log.record(&label, Algorithm::ControlledReplicateLimit, &crepl);

        println!(
            "{n} | {} | {} | {} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&cascade, scale()),
            all_rep
                .as_ref()
                .map_or_else(|| "> cut-off".into(), |a| fmt_times(a, scale())),
            fmt_times(&crep, scale()),
            fmt_times(&crepl, scale()),
            all_rep.as_ref().map_or_else(
                || {
                    // The replication counts of All-Rep are computable
                    // without running it: every rectangle, to its full 4th
                    // quadrant (the paper reports these even for timed-out
                    // rows).
                    let after: u64 = rels
                        .iter()
                        .flat_map(|r| r.iter())
                        .map(|r| cluster.grid().fourth_quadrant_cells(r).len() as u64)
                        .sum();
                    format!("{} ({})", 3 * n, after)
                },
                fmt_repl
            ),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
    log.write().expect("writing BENCH_table2.json");
}
