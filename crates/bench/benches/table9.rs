//! Table 9 — the hybrid self-join Q4s (`R Ov R and R Ra(d) R`) on
//! California road data sampled with probability 0.5, varying d.
//!
//! Paper setup: 1M road MBBs, d ∈ {10, 20, 30, 40}.

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, print_header, rect_cluster, scale, scaled_n,
};
use mwsj_core::Algorithm;
use mwsj_datagen::{bernoulli_sample, CaliforniaConfig};
use mwsj_query::Query;

fn main() {
    let n_full = scaled_n(2_000_000);
    let cfg = CaliforniaConfig::scaled_to(n_full, 2013);
    let full = cfg.generate();
    let data = bernoulli_sample(&full, 0.5, 9);
    let (x_extent, y_extent) = (cfg.x_extent(), cfg.y_extent());
    let cluster = rect_cluster(x_extent, y_extent);

    print_header(
        "Table 9",
        "Q4s (hybrid), California road data (sampled p=0.5), varying d",
        &format!(
            "nI={} road MBBs, space [0,{x_extent:.0}]x[0,{y_extent:.0}], 8x8 grid",
            data.len()
        ),
        &[
            "d",
            "tuples",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
        ],
    );

    let rels: [&[_]; 3] = [&data, &data, &data];
    for d in [10.0, 20.0, 30.0, 40.0] {
        let query = Query::builder()
            .overlap("Ra", "Rb")
            .range("Rb", "Rc", d)
            .build()
            .unwrap();
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_same_results(&format!("d = {d}"), &[&crep, &crepl]);

        println!(
            "{d} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&crep, scale()),
            fmt_times(&crepl, scale()),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
}
