//! Engine micro-benchmark — the sorted-run shuffle vs the legacy one.
//!
//! Runs one fixed-seed map-reduce job twice over the same input:
//!
//! * **legacy** — an in-bench reimplementation of the engine's previous
//!   shuffle: map attempts extend one contended `Mutex<Vec>` per partition
//!   with unsorted pairs, the shuffle comparison-sorts each full partition,
//!   and every key group is *cloned* into a `Vec` before the reducer sees
//!   it;
//! * **sorted-run** — the real engine: mapper-side sorted spills committed
//!   as immutable runs, a k-way merge computing group boundaries inline,
//!   and reducers borrowing each group as a slice.
//!
//! Both paths must produce identical outputs and logical counters (the
//! bench asserts it); the timings land in `BENCH_engine.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mwsj_bench::BenchLog;
use mwsj_mapreduce::{Engine, EngineConfig, JobSpec};

const N: usize = 200_000;
const REDUCERS: usize = 64;
const SEED: u64 = 0xC0FFEE;
const REPS: usize = 3;

/// Both paths run at the machine's parallelism (like the engine default):
/// oversubscribing a small box only measures scheduler thrash.
fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// The shuffled value: a payload of rectangle-ish weight (the join jobs
/// move ~40-byte tagged rectangles, not bare integers), so the cost of
/// sorting, merging and per-group cloning is representative.
type Payload = [u64; 4];

/// Deterministic pseudo-random records (SplitMix64).
fn synth(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn payload(x: u64) -> Payload {
    [x, x ^ 0x5BD1_E995, x.rotate_left(17), x >> 3]
}

fn map_pairs(x: &u64, emit: &mut dyn FnMut(u64, Payload)) {
    emit(x % 9973, payload(*x));
    emit((x >> 5) % 9973, payload(x.wrapping_mul(3)));
}

fn route(k: &u64, n: usize) -> usize {
    usize::try_from(*k % n as u64).expect("fits")
}

/// One reducer output row: `(key, group size, xor digest)`.
type Row = (u64, u64, u64);

fn reduce_group(k: u64, vs: &[Payload]) -> Row {
    let digest = vs.iter().fold(0u64, |a, v| v.iter().fold(a, |a, &w| a ^ w));
    (k, vs.len() as u64, digest)
}

struct Timings {
    map: Duration,
    shuffle: Duration,
    reduce: Duration,
    total: Duration,
    kv_pairs: u64,
    groups: u64,
}

/// The engine's previous shuffle, reproduced outside the engine: contended
/// per-partition `Mutex<Vec>` extends, one full comparison sort per
/// partition, and a per-group `Vec` clone feeding the reducer.
fn legacy_run(input: &[u64]) -> (Vec<Row>, Timings) {
    let workers = threads();
    let t_job = Instant::now();
    let t0 = Instant::now();
    let chunk_size = input.len().div_ceil(workers * 4).max(1);
    let chunks: Vec<&[u64]> = input.chunks(chunk_size).collect();
    let partitions: Vec<Mutex<Vec<(u64, u64, Payload)>>> =
        (0..REDUCERS).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = next.fetch_add(1, Ordering::Relaxed);
                if task >= chunks.len() {
                    break;
                }
                let mut buckets: Vec<Vec<(u64, u64, Payload)>> =
                    (0..REDUCERS).map(|_| Vec::new()).collect();
                let base_tag = (task as u64) << 32;
                let mut seq = 0u64;
                for record in chunks[task] {
                    map_pairs(record, &mut |k, v| {
                        buckets[route(&k, REDUCERS)].push((k, base_tag | seq, v));
                        seq += 1;
                    });
                }
                for (p, bucket) in buckets.into_iter().enumerate() {
                    partitions[p].lock().expect("poisoned").extend(bucket);
                }
            });
        }
    });
    let map = t0.elapsed();

    let t0 = Instant::now();
    let sorted: Vec<Vec<(u64, u64, Payload)>> = {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<(u64, u64, Payload)>>> = partitions;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    if p >= slots.len() {
                        break;
                    }
                    let mut part = std::mem::take(&mut *slots[p].lock().expect("poisoned"));
                    part.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                    *slots[p].lock().expect("poisoned") = part;
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("poisoned"))
            .collect()
    };
    let shuffle = t0.elapsed();

    let t0 = Instant::now();
    let mut out = Vec::new();
    let mut kv_pairs = 0u64;
    let mut groups = 0u64;
    for part in sorted {
        kv_pairs += part.len() as u64;
        let mut i = 0;
        while i < part.len() {
            let key = part[i].0;
            let mut j = i;
            while j < part.len() && part[j].0 == key {
                j += 1;
            }
            // The per-group clone the zero-copy path eliminates.
            let values: Vec<Payload> = part[i..j].iter().map(|t| t.2).collect();
            out.push(reduce_group(key, &values));
            groups += 1;
            i = j;
        }
    }
    let reduce = t0.elapsed();
    (
        out,
        Timings {
            map,
            shuffle,
            reduce,
            total: t_job.elapsed(),
            kv_pairs,
            groups,
        },
    )
}

fn main() {
    let input = synth(N, SEED);
    let workers = threads();

    // Best of REPS runs per implementation: a single run on a small box is
    // dominated by scheduler and allocator noise.
    let (legacy_out, legacy) = (0..REPS)
        .map(|_| legacy_run(&input))
        .min_by_key(|(_, t)| t.total)
        .expect("REPS > 0");

    let engine = Engine::new(EngineConfig {
        map_tasks: workers,
        reduce_tasks: workers,
        ..EngineConfig::default()
    });
    let mut best: Option<(Vec<Row>, Duration)> = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = engine
            .run(
                JobSpec::new("engine-shuffle")
                    .reducers(REDUCERS)
                    .map(|x: &u64, emit| map_pairs(x, emit))
                    .partition(route)
                    .reduce(|&k: &u64, vs: &[Payload], out| out(reduce_group(k, vs))),
                &input,
            )
            .expect("fault-free run");
        let wall = t0.elapsed();
        if best.as_ref().is_none_or(|(_, w)| wall < *w) {
            best = Some((out, wall));
        }
    }
    let (engine_out, wall) = best.expect("REPS > 0");
    let jobs = engine.report().jobs;
    let m = jobs
        .iter()
        .min_by_key(|j| j.total_wall)
        .expect("REPS jobs ran")
        .clone();

    // Both implementations shuffle the same data the same way — identical
    // outputs (partition/key order) and identical logical counters.
    assert_eq!(engine_out, legacy_out, "shuffle implementations disagree");
    assert_eq!(m.map_output_records, legacy.kv_pairs);
    assert_eq!(m.reduce_input_groups, legacy.groups);
    for j in &jobs {
        assert_eq!(j.map_output_records, m.map_output_records);
        assert_eq!(j.shuffle_bytes, m.shuffle_bytes);
    }

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!("=== engine micro-bench: legacy vs sorted-run shuffle ===");
    println!(
        "workload: {N} records x 2 emits of 32-byte values, {REDUCERS} reducers, \
         {workers} threads, seed {SEED:#x}, best of {REPS}"
    );
    println!();
    println!("impl       |   map ms |  shuf ms |   red ms | total ms");
    println!("-----------+----------+----------+----------+---------");
    println!(
        "legacy     | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3}",
        ms(legacy.map),
        ms(legacy.shuffle),
        ms(legacy.reduce),
        ms(legacy.total),
    );
    println!(
        "sorted-run | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3}",
        ms(m.map_wall),
        ms(m.shuffle_wall),
        ms(m.reduce_wall),
        ms(m.total_wall),
    );
    println!(
        "sorted-run detail: sort {:.3} ms (in-attempt), merge {:.3} ms, {} spill runs",
        ms(m.sort_wall),
        ms(m.merge_wall),
        m.spill_runs,
    );

    let mut log = BenchLog::new("engine");
    log.push_record(format!(
        concat!(
            "{{\"impl\":\"legacy\",\"map_ms\":{:.3},\"shuffle_ms\":{:.3},",
            "\"reduce_ms\":{:.3},\"total_ms\":{:.3},",
            "\"kv_pairs\":{},\"groups\":{}}}"
        ),
        ms(legacy.map),
        ms(legacy.shuffle),
        ms(legacy.reduce),
        ms(legacy.total),
        legacy.kv_pairs,
        legacy.groups,
    ));
    log.push_record(format!(
        concat!(
            "{{\"impl\":\"sorted-run\",\"map_ms\":{:.3},\"sort_ms\":{:.3},",
            "\"shuffle_ms\":{:.3},\"merge_ms\":{:.3},\"reduce_ms\":{:.3},",
            "\"total_ms\":{:.3},\"wall_ms\":{:.3},",
            "\"kv_pairs\":{},\"groups\":{},\"spill_runs\":{}}}"
        ),
        ms(m.map_wall),
        ms(m.sort_wall),
        ms(m.shuffle_wall),
        ms(m.merge_wall),
        ms(m.reduce_wall),
        ms(m.total_wall),
        ms(wall),
        m.map_output_records,
        m.reduce_input_groups,
        m.spill_runs,
    ));
    log.write().expect("write BENCH_engine.json");
}
