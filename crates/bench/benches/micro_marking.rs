//! Micro-benchmark for the C-Rep round-1 marking procedure (§7.4): the cost
//! of evaluating conditions C1-C4 per reducer, for overlap, range and
//! hybrid queries.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_datagen::SyntheticConfig;
use mwsj_local::{marking, LocalRect};
use mwsj_partition::Grid;
use mwsj_query::Query;
use std::hint::black_box;

fn bench_marking(c: &mut Criterion) {
    let grid = Grid::square((0.0, 10_000.0), (0.0, 10_000.0), 8);
    let cell = grid.cell_of_point(&mwsj_geom::Point::new(5_100.0, 5_100.0));
    // Rectangles concentrated on one cell, as a reducer would see.
    let gen = |seed: u64| -> Vec<LocalRect> {
        let mut cfg = SyntheticConfig::paper_default(2_000, seed);
        cfg.x_range = (5_000.0, 6_250.0);
        cfg.y_range = (5_000.0, 6_250.0);
        cfg.generate()
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, i as u32))
            .collect()
    };
    let rels = vec![gen(1), gen(2), gen(3)];

    let queries = [
        ("overlap_chain", Query::parse("A ov B and B ov C").unwrap()),
        (
            "range_chain",
            Query::parse("A ra(100) B and B ra(100) C").unwrap(),
        ),
        (
            "hybrid_chain",
            Query::parse("A ov B and B ra(200) C").unwrap(),
        ),
    ];
    let mut group = c.benchmark_group("marking");
    group.sample_size(20);
    for (name, q) in &queries {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(marking::mark_for_replication(
                    black_box(q),
                    &grid,
                    cell,
                    &rels,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marking);
criterion_main!(benches);
