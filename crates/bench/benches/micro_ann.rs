//! Micro-benchmark for the nearest-neighbor joins (§10 future work): the
//! three-round distributed ANN/kNN vs the brute-force reference.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_core::ann::{ann_brute_force, ann_join, knn_join};
use mwsj_core::{Cluster, ClusterConfig};
use mwsj_datagen::SyntheticConfig;
use std::hint::black_box;

fn bench_ann(c: &mut Criterion) {
    let extent = 20_000.0;
    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(5_000, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (outer, inner) = (gen(1), gen(2));
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, extent), (0.0, extent), 8));

    let mut group = c.benchmark_group("ann_5k");
    group.sample_size(10);
    group.bench_function("distributed_ann", |b| {
        b.iter(|| black_box(ann_join(&cluster, &outer, &inner).len()));
    });
    group.bench_function("distributed_knn_k5", |b| {
        b.iter(|| black_box(knn_join(&cluster, &outer, &inner, 5).len()));
    });
    group.bench_function("brute_force_baseline", |b| {
        b.iter(|| black_box(ann_brute_force(&outer, &inner).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_ann);
criterion_main!(benches);
