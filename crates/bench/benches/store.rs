//! Stored map-side join vs the shuffle algorithms — the Table 2 nI=20000
//! row (Q2, `R1 Ov R2 and R2 Ov R3`) with every relation ingested into an
//! on-disk `mwsj-store` dataset.
//!
//! Measures three things into `BENCH_store.json`:
//!
//! * **ingest** — partitioning + STR-packing + writing each relation,
//!   reported separately (it is paid once, not per query);
//! * the **shuffle algorithms** from in-memory inputs, as Table 2 runs
//!   them;
//! * the **stored map-side join end-to-end**: opening the three stores
//!   cold from disk *plus* the shuffle-free join, which must beat the
//!   best shuffle algorithm's wall by at least 2x (asserted).

use std::time::{Duration, Instant};

use mwsj_bench::{
    bench_reps, measure, paper_cluster, scale, scaled_extent, scaled_n, BenchLog, Measured,
};
use mwsj_core::store::{StoreBuilder, StoredDataset};
use mwsj_core::{Algorithm, Cluster, StoredRun};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One cold end-to-end stored run: open every store from disk, then join.
fn stored_run(
    cluster: &Cluster,
    query: &Query,
    paths: &[std::path::PathBuf],
) -> (Duration, Duration, Measured) {
    let t_open = Instant::now();
    let stores: Vec<StoredDataset> = paths
        .iter()
        .map(|p| StoredDataset::open(p).expect("open store"))
        .collect();
    let open = t_open.elapsed();
    let refs: Vec<&StoredDataset> = stores.iter().collect();
    let t_join = Instant::now();
    let output = cluster
        .submit_stored(
            &StoredRun::new(query, &refs)
                .algorithm(Algorithm::MapSide)
                .counting()
                .open_wall(open),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    let join = t_join.elapsed();
    (
        open,
        join,
        Measured {
            wall: open + join,
            output,
        },
    )
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let extent = scaled_extent(100_000.0);
    let cluster = paper_cluster(extent);
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let n = scaled_n(2_000_000); // the Table 2 nI=20000 row at s=0.01
    let label = format!("nI={n}");

    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(n, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(1001), gen(2001), gen(3001));
    let rels: [&[_]; 3] = [&r1, &r2, &r3];

    let mut log = BenchLog::new("store");

    // Ingest each relation once, reporting the cost separately from the
    // per-query numbers it amortizes over.
    let dir = std::env::temp_dir().join(format!("mwsj-bench-store-{n}"));
    std::fs::create_dir_all(&dir).expect("bench store dir");
    let builder = StoreBuilder::new(cluster.grid());
    let mut paths = Vec::new();
    for (name, rel) in [("R1", &r1), ("R2", &r2), ("R3", &r3)] {
        let path = dir.join(format!("{name}.store"));
        let t0 = Instant::now();
        builder.write(rel, &path).expect("ingest");
        let wall = t0.elapsed();
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "ingest    : {name} ({} records) -> {} bytes in {wall:.2?}",
            rel.len(),
            bytes
        );
        log.push_record(format!(
            "{{\"phase\":\"ingest\",\"relation\":\"{name}\",\"records\":{},\"bytes\":{bytes},\"wall_ms\":{:.3}}}",
            rel.len(),
            ms(wall),
        ));
        paths.push(path);
    }

    // The stored plan must pick map-side on its own under `auto`.
    {
        let stores: Vec<StoredDataset> = paths
            .iter()
            .map(|p| StoredDataset::open(p).expect("open store"))
            .collect();
        let refs: Vec<&StoredDataset> = stores.iter().collect();
        let plan = cluster.plan_stored(&query, &refs);
        assert_eq!(
            plan.algorithm,
            Algorithm::MapSide,
            "auto must pick map-side for stored inputs: {}",
            plan.to_json()
        );
    }

    // The shuffle field, exactly as Table 2 runs it.
    let shuffle: Vec<(Algorithm, Measured)> = [
        Algorithm::TwoWayCascade,
        Algorithm::AllReplicate,
        Algorithm::ControlledReplicate,
        Algorithm::ControlledReplicateLimit,
    ]
    .into_iter()
    .map(|a| (a, measure(&cluster, &query, &rels, a)))
    .collect();
    let (best_algo, best) = shuffle
        .iter()
        .min_by_key(|(_, m)| m.wall)
        .map(|(a, m)| (*a, m.wall))
        .expect("shuffle runs");
    for (a, m) in &shuffle {
        eprintln!("shuffle   : {} {:.2?}", a.name(), m.wall);
        log.record(&label, *a, m);
    }

    // Stored map-side, cold each rep: open from disk + join.
    let (open, join, map_side) = (0..bench_reps())
        .map(|_| stored_run(&cluster, &query, &paths))
        .min_by_key(|(_, _, m)| m.wall)
        .expect("at least one rep");
    eprintln!(
        "map-side  : open {open:.2?} + join {join:.2?} = {:.2?} \
         (best shuffle: {} {best:.2?}, {:.1}x)",
        map_side.wall,
        best_algo.name(),
        best.as_secs_f64() / map_side.wall.as_secs_f64()
    );
    log.push_record(format!(
        concat!(
            "{{\"row\":\"{label}\",\"algorithm\":\"Map-Side\",\"run\":true,",
            "\"open_ms\":{open:.3},\"join_ms\":{join:.3},\"wall_ms\":{wall:.3},",
            "\"tuples\":{tuples},",
            "\"best_shuffle\":\"{best_name}\",\"best_shuffle_wall_ms\":{best:.3},",
            "\"speedup_vs_best_shuffle\":{speedup:.3}}}"
        ),
        label = label,
        open = ms(open),
        join = ms(join),
        wall = ms(map_side.wall),
        tuples = map_side.output.tuple_count,
        best_name = best_algo.name(),
        best = ms(best),
        speedup = best.as_secs_f64() / map_side.wall.as_secs_f64(),
    ));

    // Same logical result as every shuffle algorithm...
    for (a, m) in &shuffle {
        assert_eq!(
            m.output.tuple_count,
            map_side.output.tuple_count,
            "map-side disagrees with {} on {label}",
            a.name()
        );
    }
    // ...at least twice as fast end-to-end, ingest amortized away.
    assert!(
        map_side.wall.as_secs_f64() * 2.0 <= best.as_secs_f64(),
        "stored map-side (open + join = {:.2?}) must beat the best shuffle wall \
         ({} at {best:.2?}) by >= 2x",
        map_side.wall,
        best_algo.name(),
    );

    println!(
        "{label} | tuples {} | map-side {:.3} ms (open {:.3} + join {:.3}) | \
         best shuffle {} {:.3} ms | speedup {:.1}x | scale {}",
        map_side.output.tuple_count,
        ms(map_side.wall),
        ms(open),
        ms(join),
        best_algo.name(),
        ms(best),
        best.as_secs_f64() / map_side.wall.as_secs_f64(),
        scale(),
    );

    std::fs::remove_dir_all(&dir).ok();
    log.write().expect("writing BENCH_store.json");
}
