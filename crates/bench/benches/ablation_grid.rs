//! Ablation: reducer-grid resolution.
//!
//! The paper fixes 64 reducers (8x8). This ablation sweeps the grid side
//! and reports how C-Rep's marking and communication respond: finer grids
//! mean more crossing rectangles (more marked) but smaller cells to
//! replicate across; coarser grids mark less but each reducer does more
//! local work. A design-space datapoint the paper does not explore.

use mwsj_bench::{fmt_time, measure, print_header, scaled_extent, scaled_n};
use mwsj_core::{Algorithm, Cluster, ClusterConfig};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let extent = scaled_extent(100_000.0);
    let n = scaled_n(2_000_000);
    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(n, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(41), gen(42), gen(43));
    let rels: [&[_]; 3] = [&r1, &r2, &r3];
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();

    print_header(
        "Ablation: grid resolution",
        "Q2 under varying reducer-grid sides (the paper fixes 8x8)",
        &format!("nI={n}, space [0,{extent:.0}]²"),
        &[
            "grid",
            "tuples",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
            "max/mean reducer load",
        ],
    );

    for side in [2u32, 4, 8, 16] {
        let cluster = Cluster::new(ClusterConfig::for_space((0.0, extent), (0.0, extent), side));
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_eq!(crep.output.tuple_count, crepl.output.tuple_count);
        let join_job = &crep.output.report.jobs[1];
        let mean = join_job.reduce_input_records as f64 / f64::from(side * side);
        let skew = join_job.max_partition_records as f64 / mean.max(1.0);
        println!(
            "{side}x{side} | {} | {} | {} | {} ({}) | {} ({}) | {:.2}",
            crep.output.len(),
            fmt_time(crep.wall),
            fmt_time(crepl.wall),
            crep.output.stats.rectangles_replicated,
            crep.output.stats.rectangles_after_replication,
            crepl.output.stats.rectangles_replicated,
            crepl.output.stats.rectangles_after_replication,
            skew,
        );
    }
}
