//! Service throughput benchmark — closed-loop clients and an open-loop
//! arrival process against an in-process `mwsj-server`.
//!
//! **Closed loop**: boots the query service on a loopback port, then
//! drives it with four concurrent closed-loop clients, each issuing
//! requests round-robin from a small query pool. The measurement runs
//! twice: once with the result cache on (repeats within the pool become
//! hits — the shape a real multi-tenant deployment sees) and once with
//! the cache disabled (`mwsj serve --no-cache`), so the engine's own
//! per-query cost is visible instead of hiding behind a ~94% hit rate.
//!
//! **Open loop**: a sweep over connection counts (default 256 and 1024;
//! override with `MWSJ_OPEN_CONNS=N`) holds that many concurrent
//! connections on the event loop while requests arrive at a fixed
//! target rate regardless of completions. Latency is measured from each
//! request's *scheduled* send time, so queueing delay counts — no
//! coordinated omission — and the tail is reported as p50/p99/p999.
//! The generator multiplexes several connections per sender thread
//! (the wrk2 model) and discards its first schedule round as a
//! calibration window, so generator-side scheduling noise is not
//! billed to the server.
//!
//! All phases append records to `BENCH_service.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mwsj_bench::BenchLog;
use mwsj_server::json::{self, Json};
use mwsj_server::{Client, Server, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;
const POOL: usize = 6;

fn pool_query(i: usize) -> String {
    let a = format!("synthetic:n=2000,seed={},extent=8000,lmax=250", 50 + 2 * i);
    let b = format!("synthetic:n=2000,seed={},extent=8000,lmax=250", 51 + 2 * i);
    format!(
        "{{\"op\":\"query\",\"query\":\"A ov B\",\"data\":{{\"A\":\"{a}\",\"B\":\"{b}\"}},\"algorithm\":\"crep\",\"count_only\":true}}"
    )
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One full boot → warm-up → measured phase → stats → shutdown cycle,
/// returning the phase's JSON record.
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn run_phase(cache_enabled: bool) -> String {
    let mut config = ServerConfig::default().with_admission(CLIENTS, CLIENTS);
    if !cache_enabled {
        config.cache_bytes = 0; // what `mwsj serve --no-cache` sets
    }
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    // Warm-up: one pass over the pool populates the dataset cache (and,
    // when enabled, the result cache), so the measured phase sees the
    // steady state rather than dataset generation.
    {
        let mut c = Client::connect(&addr).expect("connect");
        for i in 0..POOL {
            let resp = c.request(&pool_query(i)).expect("warm request");
            assert!(resp.contains("\"ok\":true"), "warm-up failed: {resp}");
        }
    }

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let addr = &addr;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for r in 0..REQUESTS_PER_CLIENT {
                    let line = pool_query((client_id + r) % POOL);
                    let t = Instant::now();
                    let resp = c.request(&line).expect("request");
                    local.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
                }
                latencies.lock().expect("latencies").extend(local);
            });
        }
    });
    let wall = t0.elapsed();

    let mut sorted = latencies.into_inner().expect("latencies");
    sorted.sort_by(f64::total_cmp);
    let total = sorted.len();
    let qps = total as f64 / wall.as_secs_f64();

    let mut c = Client::connect(&addr).expect("connect");
    let stats_text = c.request("{\"op\":\"stats\"}").expect("stats");
    let stats = json::parse(&stats_text).expect("stats json");
    let cache = stats.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
    let misses = cache.get("misses").and_then(Json::as_f64).unwrap_or(0.0);
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let queries = stats.get("queries").and_then(Json::as_f64).unwrap_or(0.0);
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    server_thread.join().expect("server thread");

    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let label = if cache_enabled { "cache" } else { "no-cache" };
    eprintln!(
        "service   : [{label}] {total} requests from {CLIENTS} clients in {wall:.2?} \
         ({qps:.1} QPS, p50 {p50:.2} ms, p99 {p99:.2} ms, hit rate {:.0}%)",
        hit_rate * 100.0
    );

    format!(
        concat!(
            "{{\"mode\":\"closed\",\"cache_enabled\":{cache_enabled},",
            "\"clients\":{clients},\"requests\":{requests},\"pool\":{pool},",
            "\"wall_ms\":{wall:.3},\"qps\":{qps:.3},",
            "\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},",
            "\"cache_hits\":{hits},\"cache_misses\":{misses},\"hit_rate\":{rate:.4},",
            "\"queries_served\":{queries}}}"
        ),
        cache_enabled = cache_enabled,
        clients = CLIENTS,
        requests = total,
        pool = POOL,
        wall = wall.as_secs_f64() * 1e3,
        qps = qps,
        p50 = p50,
        p99 = p99,
        hits = hits,
        misses = misses,
        rate = hit_rate,
        queries = queries,
    )
}

/// Open-loop target arrival rate, spread across all connections.
const OPEN_TARGET_QPS: f64 = 800.0;
/// Nominal length of each open-loop measurement window.
const OPEN_DURATION_SECS: f64 = 3.0;
/// Connections multiplexed per generator thread. One thread per
/// connection would make the *load generator* the bottleneck: hundreds
/// of client threads time-sharing the same cores as the server turn
/// scheduler queueing into phantom request latency. A small fleet of
/// sender threads, each owning a slice of the connections (the wrk2
/// model), keeps the generator honest while the server still holds
/// every socket concurrently.
const OPEN_CONNS_PER_THREAD: usize = 8;

/// One open-loop phase: `conns` concurrent connections, requests fired
/// on a fixed schedule (a per-connection offset plus a fixed interval),
/// latency clocked from the *scheduled* send time.
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn run_open_phase(conns: usize) -> String {
    let server = Server::bind(ServerConfig::default().with_admission(CLIENTS, 64)).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    // Warm the result cache: the open-loop phase measures the serving
    // tier (event loop, protocol, dispatch), not engine throughput — a
    // single core cannot run 800 joins/s, but it can serve 800 hits/s.
    {
        let mut c = Client::connect(&addr).expect("connect");
        for i in 0..POOL {
            let resp = c.request(&pool_query(i)).expect("warm request");
            assert!(resp.contains("\"ok\":true"), "warm-up failed: {resp}");
        }
    }

    let per_conn = (((OPEN_TARGET_QPS * OPEN_DURATION_SECS) / conns as f64).ceil() as usize).max(1);
    let interval = conns as f64 / OPEN_TARGET_QPS;
    let stagger = 1.0 / OPEN_TARGET_QPS;
    let threads = conns.div_ceil(OPEN_CONNS_PER_THREAD);
    let barrier = Barrier::new(threads + 1);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let errors = AtomicUsize::new(0);
    // The arrival schedule's epoch: set by the main thread immediately
    // before it releases the barrier, so slot 0 is "now" for every
    // connection — not some time back during the connect phase.
    let epoch: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

    thread::scope(|scope| {
        for g in 0..threads {
            let addr = &addr;
            let barrier = &barrier;
            let latencies = &latencies;
            let errors = &errors;
            let epoch = &epoch;
            thread::Builder::new()
                .stack_size(96 * 1024)
                .spawn_scoped(scope, move || {
                    let first = g * OPEN_CONNS_PER_THREAD;
                    let group = OPEN_CONNS_PER_THREAD.min(conns - first);
                    // Connect before the barrier so the measurement sees
                    // an established fleet, not a connect storm, and
                    // prove each connection with one unmeasured request:
                    // connect() alone can succeed while the listener's
                    // accept queue is saturated, which would leave the
                    // kernel's ~1s SYN-ACK retransmit inside the first
                    // measured round.
                    let mut clients: Vec<Option<Client>> = (0..group)
                        .map(|k| {
                            for _ in 0..20 {
                                if let Ok(mut c) = Client::connect(addr) {
                                    if c.request(&pool_query((first + k) % POOL)).is_ok() {
                                        return Some(c);
                                    }
                                }
                                thread::sleep(Duration::from_millis(25));
                            }
                            None
                        })
                        .collect();
                    barrier.wait();
                    let t0 = *epoch.get().expect("epoch set before release");
                    let mut local = Vec::with_capacity(group * per_conn);
                    // Within a group the schedule stays monotonic: the
                    // k-loop walks one stagger apart, the r-loop one
                    // (larger) interval apart. Round 0 is the
                    // generator's calibration window — the thread fleet
                    // settling onto its sleep cadence after the barrier
                    // — and is excluded from the recorded latencies,
                    // the same convention as wrk2's calibration phase.
                    for r in 0..=per_conn {
                        for (k, slot) in clients.iter_mut().enumerate() {
                            let id = first + k;
                            let Some(c) = slot.as_mut() else {
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            };
                            let scheduled = t0
                                + Duration::from_secs_f64(
                                    id as f64 * stagger + r as f64 * interval,
                                );
                            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                                thread::sleep(wait);
                            }
                            let line = pool_query((id + r) % POOL);
                            match c.request(&line) {
                                // Open loop: latency from the scheduled
                                // send, so server-side queueing is
                                // charged in full.
                                Ok(resp) if resp.contains("\"ok\":true") => {
                                    if r > 0 {
                                        local.push(scheduled.elapsed().as_secs_f64() * 1e3);
                                    }
                                }
                                _ => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    *slot = None;
                                }
                            }
                        }
                    }
                    latencies.lock().expect("latencies").extend(local);
                })
                .expect("spawn open-loop client");
        }
        epoch.set(Instant::now()).expect("epoch set once");
        barrier.wait();
    });
    // The measured window excludes the calibration round's interval.
    let wall = epoch
        .get()
        .expect("epoch")
        .elapsed()
        .saturating_sub(Duration::from_secs_f64(interval));

    let mut sorted = latencies.into_inner().expect("latencies");
    sorted.sort_by(f64::total_cmp);
    let total = sorted.len();
    let errs = errors.load(Ordering::Relaxed);
    let qps = total as f64 / wall.as_secs_f64();

    let mut c = Client::connect(&addr).expect("connect");
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    server_thread.join().expect("server thread");

    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let p999 = percentile(&sorted, 0.999);
    eprintln!(
        "service   : [open {conns} conns] {total} requests at target {OPEN_TARGET_QPS:.0}/s \
         in {wall:.2?} ({qps:.1} QPS achieved, p50 {p50:.2} ms, p99 {p99:.2} ms, \
         p999 {p999:.2} ms, {errs} errors)"
    );

    format!(
        concat!(
            "{{\"mode\":\"open\",\"conns\":{conns},",
            "\"target_qps\":{target:.1},\"achieved_qps\":{qps:.3},",
            "\"requests\":{total},\"errors\":{errs},\"wall_ms\":{wall:.3},",
            "\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\"p999_ms\":{p999:.3}}}"
        ),
        conns = conns,
        target = OPEN_TARGET_QPS,
        qps = qps,
        total = total,
        errs = errs,
        wall = wall.as_secs_f64() * 1e3,
        p50 = p50,
        p99 = p99,
        p999 = p999,
    )
}

fn main() {
    let mut log = BenchLog::new("service");
    for cache_enabled in [true, false] {
        log.push_record(run_phase(cache_enabled));
    }
    // Connection sweep for the open-loop phases; MWSJ_OPEN_CONNS pins a
    // single count (CI uses 1024 as the high-connection smoke).
    let sweep: Vec<usize> = match std::env::var("MWSJ_OPEN_CONNS") {
        Ok(v) => vec![v.parse().expect("MWSJ_OPEN_CONNS must be a number")],
        Err(_) => vec![256, 1024],
    };
    for conns in sweep {
        log.push_record(run_open_phase(conns));
    }
    log.write().expect("write bench log");
}
