//! Service throughput benchmark — closed-loop clients against an
//! in-process `mwsj-server`.
//!
//! Boots the query service on a loopback port, then drives it with four
//! concurrent closed-loop clients, each issuing requests round-robin
//! from a small query pool. The measurement runs twice: once with the
//! result cache on (repeats within the pool become hits — the shape a
//! real multi-tenant deployment sees) and once with the cache disabled
//! (`mwsj serve --no-cache`), so the engine's own per-query cost is
//! visible instead of hiding behind a ~94% hit rate. Reports per-request
//! latency percentiles, aggregate QPS and the cache hit rate for both
//! phases into `BENCH_service.json`.

use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use mwsj_bench::BenchLog;
use mwsj_server::json::{self, Json};
use mwsj_server::{Client, Server, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;
const POOL: usize = 6;

fn pool_query(i: usize) -> String {
    let a = format!("synthetic:n=2000,seed={},extent=8000,lmax=250", 50 + 2 * i);
    let b = format!("synthetic:n=2000,seed={},extent=8000,lmax=250", 51 + 2 * i);
    format!(
        "{{\"op\":\"query\",\"query\":\"A ov B\",\"data\":{{\"A\":\"{a}\",\"B\":\"{b}\"}},\"algorithm\":\"crep\",\"count_only\":true}}"
    )
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One full boot → warm-up → measured phase → stats → shutdown cycle,
/// returning the phase's JSON record.
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn run_phase(cache_enabled: bool) -> String {
    let mut config = ServerConfig::default().with_admission(CLIENTS, CLIENTS);
    if !cache_enabled {
        config.cache_bytes = 0; // what `mwsj serve --no-cache` sets
    }
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = thread::spawn(move || server.run().expect("server run"));

    // Warm-up: one pass over the pool populates the dataset cache (and,
    // when enabled, the result cache), so the measured phase sees the
    // steady state rather than dataset generation.
    {
        let mut c = Client::connect(&addr).expect("connect");
        for i in 0..POOL {
            let resp = c.request(&pool_query(i)).expect("warm request");
            assert!(resp.contains("\"ok\":true"), "warm-up failed: {resp}");
        }
    }

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let addr = &addr;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for r in 0..REQUESTS_PER_CLIENT {
                    let line = pool_query((client_id + r) % POOL);
                    let t = Instant::now();
                    let resp = c.request(&line).expect("request");
                    local.push(t.elapsed().as_secs_f64() * 1e3);
                    assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
                }
                latencies.lock().expect("latencies").extend(local);
            });
        }
    });
    let wall = t0.elapsed();

    let mut sorted = latencies.into_inner().expect("latencies");
    sorted.sort_by(f64::total_cmp);
    let total = sorted.len();
    let qps = total as f64 / wall.as_secs_f64();

    let mut c = Client::connect(&addr).expect("connect");
    let stats_text = c.request("{\"op\":\"stats\"}").expect("stats");
    let stats = json::parse(&stats_text).expect("stats json");
    let cache = stats.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
    let misses = cache.get("misses").and_then(Json::as_f64).unwrap_or(0.0);
    let hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let queries = stats.get("queries").and_then(Json::as_f64).unwrap_or(0.0);
    c.request("{\"op\":\"shutdown\"}").expect("shutdown");
    server_thread.join().expect("server thread");

    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let label = if cache_enabled { "cache" } else { "no-cache" };
    eprintln!(
        "service   : [{label}] {total} requests from {CLIENTS} clients in {wall:.2?} \
         ({qps:.1} QPS, p50 {p50:.2} ms, p99 {p99:.2} ms, hit rate {:.0}%)",
        hit_rate * 100.0
    );

    format!(
        concat!(
            "{{\"cache_enabled\":{cache_enabled},",
            "\"clients\":{clients},\"requests\":{requests},\"pool\":{pool},",
            "\"wall_ms\":{wall:.3},\"qps\":{qps:.3},",
            "\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},",
            "\"cache_hits\":{hits},\"cache_misses\":{misses},\"hit_rate\":{rate:.4},",
            "\"queries_served\":{queries}}}"
        ),
        cache_enabled = cache_enabled,
        clients = CLIENTS,
        requests = total,
        pool = POOL,
        wall = wall.as_secs_f64() * 1e3,
        qps = qps,
        p50 = p50,
        p99 = p99,
        hits = hits,
        misses = misses,
        rate = hit_rate,
        queries = queries,
    )
}

fn main() {
    let mut log = BenchLog::new("service");
    for cache_enabled in [true, false] {
        log.push_record(run_phase(cache_enabled));
    }
    log.write().expect("write bench log");
}
