//! Optimizer bench — Q2 over the Table 2 size grid, `auto` vs every
//! manually pinned algorithm.
//!
//! For each row the harness runs the cost-based planner's choice
//! (`Algorithm::Auto`) and all five concrete algorithms (All-Rep only on
//! the two smallest rows, mirroring Table 2's cut-off), then reports the
//! chosen algorithm and the ratio of auto's wall to the best manual wall.
//! A well-calibrated cost model keeps that ratio near 1.0: the planner
//! picks the winning algorithm — or one whose wall is within noise of it —
//! from samples alone, without running anything.

use mwsj_bench::{
    assert_same_results, fmt_time, measure, paper_cluster, print_header, scaled_extent, scaled_n,
    BenchLog, Measured,
};
use mwsj_core::Algorithm;
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let extent = scaled_extent(100_000.0);
    let cluster = paper_cluster(extent);
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();

    print_header(
        "Opt",
        "Q2, auto vs the best manually pinned algorithm",
        &format!(
            "dS=Uniform, dX,dY,dL,dB=Uniform, space [0,{extent:.0}]², sides [0,100], 8x8 grid"
        ),
        &["nI", "chosen", "t auto", "best manual", "t best", "ratio"],
    );

    let mut log = BenchLog::new("opt");
    for (row, paper_n) in [1u64, 2, 3, 4, 5].iter().enumerate() {
        let n = scaled_n(paper_n * 1_000_000);
        let gen = |seed: u64| {
            let mut cfg = SyntheticConfig::paper_default(n, seed);
            cfg.x_range = (0.0, extent);
            cfg.y_range = (0.0, extent);
            cfg.generate()
        };
        let (r1, r2, r3) = (
            gen(1000 + row as u64),
            gen(2000 + row as u64),
            gen(3000 + row as u64),
        );
        let rels: [&[_]; 3] = [&r1, &r2, &r3];

        let auto = measure(&cluster, &query, &rels, Algorithm::Auto);
        let manual: Vec<(Algorithm, Measured)> = Algorithm::ALL
            .into_iter()
            .filter(|&a| a != Algorithm::AllReplicate || row < 2)
            .map(|a| (a, measure(&cluster, &query, &rels, a)))
            .collect();

        let mut same: Vec<&Measured> = vec![&auto];
        same.extend(manual.iter().map(|(_, m)| m));
        assert_same_results(&format!("nI = {n}"), &same);

        let (best_alg, best) = manual
            .iter()
            .min_by_key(|(_, m)| m.wall)
            .expect("at least one manual run");
        let ratio = auto.wall.as_secs_f64() / best.wall.as_secs_f64();

        let label = format!("nI={n}");
        log.record(&label, Algorithm::Auto, &auto);
        for (a, m) in &manual {
            log.record(&label, *a, m);
        }
        log.push_record(format!(
            concat!(
                "{{\"row\":\"nI={n}\",\"summary\":true,",
                "\"chosen\":\"{chosen}\",\"best_manual\":\"{best}\",",
                "\"auto_ms\":{auto_ms:.3},\"best_ms\":{best_ms:.3},",
                "\"ratio\":{ratio:.4}}}"
            ),
            n = n,
            chosen = auto.output.algorithm,
            best = best_alg,
            auto_ms = auto.wall.as_secs_f64() * 1e3,
            best_ms = best.wall.as_secs_f64() * 1e3,
            ratio = ratio,
        ));

        println!(
            "{n} | {} | {} | {} | {} | {ratio:.2}x",
            auto.output.algorithm.name(),
            fmt_time(auto.wall),
            best_alg.name(),
            fmt_time(best.wall),
        );
    }
    log.write().expect("writing BENCH_opt.json");
}
