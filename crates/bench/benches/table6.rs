//! Table 6 — Query Q3, varying the distance parameter d.
//!
//! Paper setup: nI = 1M per relation, d ∈ {100..500}. C-Rep's replication
//! extent grows with d while C-Rep-L's bound keeps the communicated copies
//! nearly flat (the paper's 9.1M -> 24.8M vs 3.0M -> 3.5M columns). Runs
//! at an extra 1/20 of the global scale (outputs grow ~d²).

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, paper_cluster, print_header, scale,
};
use mwsj_core::Algorithm;
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let s = scale() * 0.05;
    let n = ((1_000_000.0 * s) as usize).max(100);
    let extent = 100_000.0 * s.sqrt();
    let cluster = paper_cluster(extent);

    print_header(
        "Table 6",
        "Q3, varying the distance parameter d",
        &format!("nI={n}, dS=Uniform, sides [0,100], space [0,{extent:.0}]², 8x8 grid (table scale s={s})"),
        &["d", "tuples", "t C-Rep", "t C-Rep-L", "#Recs C-Rep", "#Recs C-Rep-L"],
    );

    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(n, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(61), gen(62), gen(63));
    let rels: [&[_]; 3] = [&r1, &r2, &r3];

    for d in [100.0, 200.0, 300.0, 400.0, 500.0] {
        let query = Query::builder()
            .range("R1", "R2", d)
            .range("R2", "R3", d)
            .build()
            .unwrap();
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_same_results(&format!("d = {d}"), &[&crep, &crepl]);

        println!(
            "{d} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&crep, s),
            fmt_times(&crepl, s),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
}
