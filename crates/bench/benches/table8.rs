//! Table 8 — the hybrid query Q4 (`R1 Ov R2 and R2 Ra(d) R3`, d = 200),
//! varying the dataset size.
//!
//! Paper setup: nI ∈ {1M..5M}, uniform data, sides ≤ 100, space 100K².
//! Runs at an extra 1/20 of the global scale (the range edge dominates
//! the output size).

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, paper_cluster, print_header, scale,
};
use mwsj_core::Algorithm;
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;

fn main() {
    let s = scale() * 0.05;
    let extent = 100_000.0 * s.sqrt();
    let cluster = paper_cluster(extent);
    let query = Query::parse("R1 ov R2 and R2 ra(200) R3").unwrap();

    print_header(
        "Table 8",
        "Q4 (hybrid, d = 200), varying the dataset size",
        &format!("dS=Uniform, sides [0,100], space [0,{extent:.0}]², 8x8 grid (table scale s={s})"),
        &[
            "nI",
            "tuples",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
        ],
    );

    for paper_n in [1u64, 2, 3, 4, 5] {
        let n = ((paper_n as f64) * 1_000_000.0 * s) as usize;
        let gen = |seed: u64| {
            let mut cfg = SyntheticConfig::paper_default(n, seed);
            cfg.x_range = (0.0, extent);
            cfg.y_range = (0.0, extent);
            cfg.generate()
        };
        let (r1, r2, r3) = (gen(81 + paper_n), gen(181 + paper_n), gen(281 + paper_n));
        let rels: [&[_]; 3] = [&r1, &r2, &r3];

        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_same_results(&format!("nI = {n}"), &[&crep, &crepl]);

        println!(
            "{n} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&crep, s),
            fmt_times(&crepl, s),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
}
