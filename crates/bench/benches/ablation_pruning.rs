//! Ablation: designated-cell pruning in the reducer-local matcher.
//!
//! C-Rep round 2 may deliver every member of a tuple to many reducers; the
//! naive reducer enumerates the tuple at each and keeps it only at the
//! designated cell (§6.2). `multiway_cell` pushes that test into the
//! backtracking. This ablation measures both strategies over the same
//! per-cell inputs.

use std::time::Instant;

use mwsj_bench::{print_header, scaled_extent, scaled_n};
use mwsj_datagen::SyntheticConfig;
use mwsj_local::{dedup, multiway, multiway_cell, LocalRect};
use mwsj_partition::Grid;
use mwsj_query::Query;

fn main() {
    let extent = scaled_extent(100_000.0);
    let n = scaled_n(2_000_000);
    let grid = Grid::square((0.0, extent), (0.0, extent), 8);
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();
    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(n, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let rels_full = [gen(71), gen(72), gen(73)];

    // Simulate C-Rep round 2 delivery: replicate everything f1 (the worst
    // case, i.e. All-Replicate's reducer inputs).
    let mut per_cell: Vec<Vec<Vec<LocalRect>>> =
        vec![vec![Vec::new(); 3]; grid.num_cells() as usize];
    for (pos, rel) in rels_full.iter().enumerate() {
        for (id, r) in rel.iter().enumerate() {
            for cell in grid.fourth_quadrant_cells(r) {
                per_cell[cell.0 as usize][pos].push((*r, id as u32));
            }
        }
    }

    print_header(
        "Ablation: matcher pruning",
        "reducer-local enumeration with vs without designated-cell pruning",
        &format!("Q2, nI={n}, f1-replicated inputs over an 8x8 grid"),
        &["strategy", "tuples", "time"],
    );

    // Naive: enumerate everything per cell, filter by designated cell.
    let t0 = Instant::now();
    let mut naive = 0u64;
    for cell in grid.cells() {
        let rels = &per_cell[cell.0 as usize];
        multiway::multiway_join(&query, rels, |tuple| {
            let rects: Vec<_> = tuple.iter().map(|&(r, _)| r).collect();
            if dedup::multiway_tuple_cell(&grid, &rects) == cell {
                naive += 1;
            }
        });
    }
    let naive_t = t0.elapsed();
    println!("enumerate-then-filter | {naive} | {naive_t:?}");

    // Pruned: designated-cell bounds inside the backtracking.
    let t0 = Instant::now();
    let mut pruned = 0u64;
    for cell in grid.cells() {
        let rels = &per_cell[cell.0 as usize];
        multiway_cell::multiway_join_at_cell(&query, rels, &grid, cell, |_| pruned += 1);
    }
    let pruned_t = t0.elapsed();
    println!("designated-cell-pruned | {pruned} | {pruned_t:?}");

    assert_eq!(naive, pruned, "both strategies must agree");
    println!(
        "\nspeedup: {:.2}x",
        naive_t.as_secs_f64() / pruned_t.as_secs_f64()
    );
}
