//! Table 4 — Query Q2s (`R Ov R and R Ov R`, a star self-join) on
//! California road data, varying the enlargement factor k.
//!
//! Paper setup: the 2.09M road MBBs (we generate a calibrated road-like
//! dataset and contract positions to keep the paper's spatial density at
//! the scaled-down count), each rectangle enlarged by factor
//! k ∈ {1.0, 1.25, 1.5, 1.75, 2.0}.

use mwsj_bench::{
    assert_same_results, fmt_repl, fmt_times, measure, print_header, rect_cluster, scale, scaled_n,
};
use mwsj_core::Algorithm;
use mwsj_datagen::{enlarge_all, CaliforniaConfig};
use mwsj_geom::Rect;
use mwsj_query::Query;

fn main() {
    let n = scaled_n(2_000_000);
    let cfg = CaliforniaConfig::scaled_to(n, 2013);
    let roads = cfg.generate();
    let (x_extent, y_extent) = (cfg.x_extent(), cfg.y_extent());
    let space = Rect::new(0.0, y_extent, x_extent, y_extent);
    let _ = scale(); // the effective scale for extrapolation is n / 2.09M
    let cluster = rect_cluster(x_extent, y_extent);
    let query = Query::parse("Ra ov Rb and Rb ov Rc").unwrap();

    print_header(
        "Table 4",
        "Q2s, California road data, varying the enlargement factor",
        &format!("nI={n} road MBBs, space [0,{x_extent:.0}]x[0,{y_extent:.0}], 8x8 grid"),
        &[
            "k",
            "tuples",
            "t Cascade",
            "t C-Rep",
            "t C-Rep-L",
            "#Recs C-Rep",
            "#Recs C-Rep-L",
        ],
    );

    for k in [1.0, 1.25, 1.5, 1.75, 2.0] {
        let data = enlarge_all(&roads, k, &space);
        let rels: [&[_]; 3] = [&data, &data, &data];

        let cascade = measure(&cluster, &query, &rels, Algorithm::TwoWayCascade);
        let crep = measure(&cluster, &query, &rels, Algorithm::ControlledReplicate);
        let crepl = measure(&cluster, &query, &rels, Algorithm::ControlledReplicateLimit);
        assert_same_results(&format!("k = {k}"), &[&cascade, &crep, &crepl]);

        println!(
            "{k} | {} | {} | {} | {} | {} | {}",
            crep.output.len(),
            fmt_times(&cascade, scale()),
            fmt_times(&crep, scale()),
            fmt_times(&crepl, scale()),
            fmt_repl(&crep),
            fmt_repl(&crepl),
        );
    }
}
