//! End-to-end algorithm comparison on a small fixed workload — the
//! Criterion-tracked counterpart of the table benches (regression tracking
//! for the full distributed pipelines).

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinRun};
use mwsj_datagen::SyntheticConfig;
use mwsj_query::Query;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let extent = 10_000.0;
    let gen = |seed: u64| {
        let mut cfg = SyntheticConfig::paper_default(5_000, seed);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        cfg.generate()
    };
    let (r1, r2, r3) = (gen(1), gen(2), gen(3));
    let cluster = Cluster::new(ClusterConfig::for_space((0.0, extent), (0.0, extent), 8));
    let query = Query::parse("R1 ov R2 and R2 ov R3").unwrap();

    let mut group = c.benchmark_group("algorithms_q2_5k");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                black_box(
                    cluster
                        .submit(
                            &JoinRun::new(&query, &[&r1, &r2, &r3])
                                .algorithm(alg)
                                .counting(),
                        )
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
