//! Micro-benchmarks for the STR R-tree substrate: bulk load and window
//! queries vs a linear scan.

use criterion::{criterion_group, criterion_main, Criterion};
use mwsj_datagen::SyntheticConfig;
use mwsj_geom::Rect;
use mwsj_rtree::RTree;
use std::hint::black_box;

fn bench_rtree(c: &mut Criterion) {
    let data: Vec<(Rect, u32)> = SyntheticConfig::paper_default(20_000, 11)
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u32))
        .collect();
    let tree = RTree::bulk_load(data.clone());
    let probes = SyntheticConfig::paper_default(200, 13)
        .with_max_sides(2_000.0, 2_000.0)
        .generate();

    let mut group = c.benchmark_group("rtree");
    group.sample_size(20);
    group.bench_function("bulk_load_20k", |b| {
        b.iter(|| RTree::bulk_load(black_box(data.clone())));
    });
    group.bench_function("window_query_200", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                tree.query_overlaps(black_box(p), |_, _| hits += 1);
            }
            black_box(hits)
        });
    });
    group.bench_function("window_scan_200_baseline", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                hits += data.iter().filter(|(r, _)| r.overlaps(p)).count();
            }
            black_box(hits)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);
