//! Hand-rolled `--flag value` argument parsing (the workspace's offline
//! dependency set has no CLI parser; the grammar here is small).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, `--key value` options (repeatable
/// keys collect in order) and bare flags.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a token stream (excluding the program name).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag `--`".into());
                }
                // `--key=value` or `--key value` or bare flag.
                if let Some((k, v)) = key.split_once('=') {
                    args.options
                        .entry(k.to_string())
                        .or_default()
                        .push(v.to_string());
                } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                    let v = iter.next().expect("peeked");
                    args.options.entry(key.to_string()).or_default().push(v);
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(format!("unexpected positional argument `{tok}`"));
            }
        }
        Ok(args)
    }

    /// The single value of `--key`, if present (errors if repeated).
    pub fn get(&self, key: &str) -> Result<Option<&str>, String> {
        match self.options.get(key).map(Vec::as_slice) {
            None => Ok(None),
            Some([v]) => Ok(Some(v)),
            Some(_) => Err(format!("--{key} given more than once")),
        }
    }

    /// All values of a repeatable `--key`.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map_or(&[], Vec::as_slice)
    }

    /// A required `--key value`.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)?
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--key` as a number with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{key} `{v}` is invalid: {e}")),
        }
    }

    /// Rejects unknown options/flags (catches typos).
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self
            .options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
        {
            if !known.contains(&k) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_flags() {
        let a = parse("run --query q --grid 8 --count-only").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("query").unwrap(), Some("q"));
        assert_eq!(a.get_parsed_or("grid", 0u32).unwrap(), 8);
        assert!(a.flag("count-only"));
    }

    #[test]
    fn equals_form_and_repeats() {
        let a = parse("run --data=a.csv --data b.csv").unwrap();
        assert_eq!(a.get_all("data"), ["a.csv", "b.csv"]);
        assert!(a.get("data").is_err(), "repeated key is not a single get");
    }

    #[test]
    fn missing_required() {
        let a = parse("run").unwrap();
        assert!(a.require("query").is_err());
    }

    #[test]
    fn rejects_positional_after_command() {
        assert!(parse("run extra").is_err());
    }

    #[test]
    fn unknown_option_detection() {
        let a = parse("run --typo 3").unwrap();
        assert!(a.check_known(&["query"]).is_err());
        assert!(a.check_known(&["typo"]).is_ok());
    }
}
