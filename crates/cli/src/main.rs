//! `mwsj` — run multi-way spatial joins on the simulated map-reduce
//! cluster from the command line.
//!
//! ```text
//! mwsj run --query "R1 ov R2 and R2 ov R3" \
//!          --data R1=synthetic:n=10000,seed=1,extent=20000 \
//!          --data R2=synthetic:n=10000,seed=2,extent=20000 \
//!          --data R3=synthetic:n=10000,seed=3,extent=20000 \
//!          [--algorithm auto] [--grid 8] [--count-only] [--plan] [--out results.csv]
//!
//! mwsj explain --query "R1 ov R2 and R2 ov R3" --data R1=... --data R2=... --data R3=...
//!
//! mwsj serve --addr 127.0.0.1:7878 --slots 8 --cache-bytes 16777216
//! mwsj query --connect 127.0.0.1:7878 --query "R1 ov R2" \
//!          --data R1=synthetic:n=1000,seed=1 --data R2=synthetic:n=1000,seed=2
//!
//! mwsj gen  --source california:n=20000,seed=7 --out roads.csv
//! mwsj ann  --outer a.csv --inner b.csv [--grid 8]
//! mwsj stats --source roads.csv
//! ```

mod args;

use mwsj_server::source as data;

use std::process::ExitCode;

use args::Args;
use mwsj_core::mapreduce::{validate_json, EngineConfig, FaultPlan, TraceSink};
use mwsj_core::{planner, Algorithm, Cluster, ClusterConfig, JoinRun};
use mwsj_datagen::CaliforniaStats;
use mwsj_query::Query;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let result = match args.command.as_deref() {
        Some("run") => cmd_run(&args),
        Some("explain") => cmd_explain(&args),
        Some("serve") => cmd_serve(&args),
        Some("query") => cmd_query(&args),
        Some("ingest") => cmd_ingest(&args),
        Some("gen") => cmd_gen(&args),
        Some("ann") => cmd_ann(&args),
        Some("stats") => cmd_stats(&args),
        Some("trace-check") => cmd_trace_check(&args),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `mwsj help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

const HELP: &str = "\
mwsj — multi-way spatial joins on a simulated map-reduce cluster

USAGE:
  mwsj run   --query Q --data NAME=SOURCE [--data ...] [options]
  mwsj explain --query Q --data NAME=SOURCE [--data ...] [--grid N | --connect HOST:PORT]
  mwsj serve --addr HOST:PORT [serve options]
  mwsj query --connect HOST:PORT --query Q --data NAME=SOURCE [--data ...]
  mwsj ingest --source SOURCE --out FILE.store [--grid N] [--extent E]
  mwsj gen   --source SOURCE --out FILE.csv
  mwsj ann   --outer SOURCE --inner SOURCE [--grid N] [--k K]
  mwsj stats --source SOURCE
  mwsj trace-check --file FILE
  mwsj help

QUERIES  (see the library docs for the full grammar)
  \"R1 overlaps R2 and R2 within 100 of R3\"
  \"county contains city and city ov river\"

SOURCES
  file.csv                                  CSV rows: x,y,l,b
  synthetic:n=10000,seed=1,extent=100000,lmax=100[,bmax=..]
  california:n=20000,seed=2013[,full]
  store:file.store                          `mwsj ingest` output; when every
                  binding is a store on the same grid, `run` and `serve`
                  join shuffle-free off the per-cell indexes (map-side)

RUN OPTIONS
  --algorithm auto|cascade|allrep|crep|crep-l|hypercube|map-side
                  (default auto: the cost-based optimizer picks;
                  `mwsj explain` shows why; map-side needs store: inputs)
  --grid N        reducer grid side, N x N cells (default 8)
  --count-only    count result tuples without materializing them
  --plan          reorder the cascade's joins by sampled selectivity
  --out FILE      write result tuples as CSV ids

INGEST OPTIONS  (partition + index a dataset into an on-disk store)
  --source SOURCE any source above; --out FILE.store the store to write
  --grid N        partition grid side (default 8; must match the grid the
                  store is later queried on)
  --extent E      the store space is [0, E]^2 (default 100000, matching
                  `mwsj serve`; every rectangle must fit)

EXPLAIN  (print the optimizer's costed plan as JSON, without executing)
  --grid N            reducer grid side for a local plan (default 8)
  --connect HOST:PORT ask a running `mwsj serve` instead (uses its grid)

SERVE OPTIONS  (a concurrent query service; line-JSON or binary framing)
  --addr HOST:PORT    listen address (default 127.0.0.1:7878; :0 picks a port)
  --slots N           engine worker slots shared by all queries (default auto)
  --cache-bytes N     result-cache budget in bytes (default 16 MiB; 0 disables)
  --no-cache          disable the result cache (same as --cache-bytes 0)
  --grid N            reducer grid side (default 8)
  --extent E          service space is [0, E]^2 (default 100000)
  --max-inflight N    concurrent joins before queueing (default 4)
  --max-queue N       queued joins before shedding `overloaded` (default 16)
  --net-fault-rate P  inject each network fault kind (torn frame, stall,
                      disconnect, corrupt byte, slow loris) into every
                      connection with probability P per I/O op (default 0)
  --net-fault-seed N  seed for the deterministic network faults (default 0)
  --drain-deadline-ms N  on shutdown, let in-flight queries finish for up
                      to N ms before cancelling them (default 5000)
  --shards N          shard stored map-side queries across N engine
                      instances, each owning a disjoint seed-cell range;
                      results stay byte-identical to --shards 1 (default 1)
  --proto auto|line   wire protocol per connection: auto sniffs the first
                      byte (0xB1 opens length-prefixed binary framing,
                      `{` stays line JSON); line pins line JSON (default auto)

QUERY OPTIONS  (submit to a running `mwsj serve`)
  --connect HOST:PORT server address (required)
  --proto line|binary|auto  client wire protocol; auto probes for binary
                      and falls back to line JSON (default line)
  --algorithm NAME    as in run (default auto)
  --count-only        count tuples without materializing them
  --deadline-ms N     cancel the run past this wall-clock budget
  --priority N / --share N   scheduler priority and fair-share weight
  --stats             print service statistics instead of running a query
  --shutdown          stop the server instead of running a query

FAULT INJECTION  (run and ann; results are identical to fault-free runs)
  --fault-rate P      fail each task attempt and DFS read with probability P
  --straggler-rate P  delay attempts with probability P, racing speculative copies
  --fault-seed N      seed for the deterministic fault decisions (default 0)

TRACING  (run and ann; recording does not perturb the metric counters)
  --trace-out FILE    record spans for every job/phase/task attempt, write to FILE
  --trace-format F    chrome (default; load FILE in chrome://tracing) or jsonl
  trace-check         validate a written trace file (whole-document or JSON-lines)
";

/// Builds the engine config from the `--fault-*` flags; no flags means a
/// fault-free engine.
fn parse_engine_config(args: &Args) -> Result<EngineConfig, String> {
    let rate: f64 = args.get_parsed_or("fault-rate", 0.0)?;
    let straggler: f64 = args.get_parsed_or("straggler-rate", 0.0)?;
    let seed: u64 = args.get_parsed_or("fault-seed", 0u64)?;
    for (name, p) in [("fault-rate", rate), ("straggler-rate", straggler)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} must be a probability in [0, 1], got {p}"));
        }
    }
    let mut config = EngineConfig::default();
    if rate > 0.0 || straggler > 0.0 || args.get("fault-seed")?.is_some() {
        config.fault_plan = Some(FaultPlan::chaos(seed, rate, straggler));
        eprintln!("faults    : rate {rate}, stragglers {straggler}, seed {seed}");
    }
    Ok(config)
}

/// The `--trace-out` / `--trace-format` pair: a recording sink plus where
/// and how to flush it after the run.
struct TraceSpec {
    sink: TraceSink,
    path: String,
    format: String,
}

/// Parses the tracing flags; `None` when tracing is off.
fn parse_trace_args(args: &Args) -> Result<Option<TraceSpec>, String> {
    let Some(path) = args.get("trace-out")? else {
        if args.get("trace-format")?.is_some() {
            return Err("--trace-format requires --trace-out".into());
        }
        return Ok(None);
    };
    let format = args.get("trace-format")?.unwrap_or("chrome");
    if !["chrome", "jsonl"].contains(&format) {
        return Err(format!(
            "--trace-format must be `chrome` or `jsonl`, got `{format}`"
        ));
    }
    Ok(Some(TraceSpec {
        sink: TraceSink::recording(),
        path: path.to_string(),
        format: format.to_string(),
    }))
}

impl TraceSpec {
    /// Exports the recorded events in the chosen format and writes the file.
    fn write(&self) -> Result<(), String> {
        let body = match self.format.as_str() {
            "jsonl" => self.sink.to_jsonl(),
            _ => self.sink.to_chrome_trace(),
        };
        std::fs::write(&self.path, &body).map_err(|e| format!("writing {}: {e}", self.path))?;
        eprintln!(
            "trace     : {} events -> {} ({})",
            self.sink.len(),
            self.path,
            self.format
        );
        Ok(())
    }
}

fn cmd_trace_check(args: &Args) -> Result<(), String> {
    args.check_known(&["file"])?;
    let path = args.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // A chrome trace is one JSON document; an event log is JSON lines.
    if validate_json(text.trim()).is_ok() {
        println!("{path}: valid JSON document");
        return Ok(());
    }
    let mut records = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records += 1;
    }
    println!("{path}: valid JSON lines ({records} records)");
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "addr",
        "slots",
        "cache-bytes",
        "no-cache",
        "grid",
        "extent",
        "max-inflight",
        "max-queue",
        "net-fault-rate",
        "net-fault-seed",
        "drain-deadline-ms",
        "shards",
        "proto",
    ])?;
    if args.flag("no-cache") && args.get("cache-bytes")?.is_some() {
        return Err("--no-cache and --cache-bytes are mutually exclusive".into());
    }
    let cache_bytes = if args.flag("no-cache") {
        0
    } else {
        args.get_parsed_or("cache-bytes", 16usize << 20)?
    };
    let mut config = mwsj_server::ServerConfig {
        addr: args.get("addr")?.unwrap_or("127.0.0.1:7878").to_string(),
        slots: args.get_parsed_or("slots", 0usize)?,
        cache_bytes,
        max_inflight: args.get_parsed_or("max-inflight", 4usize)?,
        max_queue: args.get_parsed_or("max-queue", 16usize)?,
        grid: args.get_parsed_or("grid", 8u32)?,
        extent: args.get_parsed_or("extent", 100_000.0f64)?,
        shards: args.get_parsed_or("shards", 1u32)?.max(1),
        proto: match args.get("proto")?.unwrap_or("auto") {
            "auto" => mwsj_server::ProtoPolicy::Auto,
            "line" => mwsj_server::ProtoPolicy::LineOnly,
            other => return Err(format!("--proto must be `auto` or `line`, got `{other}`")),
        },
        ..mwsj_server::ServerConfig::default()
    };
    let net_fault_rate: f64 = args.get_parsed_or("net-fault-rate", 0.0f64)?;
    if !(0.0..=1.0).contains(&net_fault_rate) {
        return Err(format!(
            "--net-fault-rate must be in [0, 1], got {net_fault_rate}"
        ));
    }
    if net_fault_rate > 0.0 {
        let seed: u64 = args.get_parsed_or("net-fault-seed", 0u64)?;
        config = config.with_net_faults(mwsj_core::mapreduce::NetFaultPlan::chaos(
            seed,
            net_fault_rate,
        ));
    }
    config.drain_deadline =
        std::time::Duration::from_millis(args.get_parsed_or("drain-deadline-ms", 5_000u64)?);
    mwsj_server::signal::install_handlers();
    let server = mwsj_server::Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("serving on {addr} (SIGTERM or the `shutdown` op stops it)");
    server.run().map_err(|e| format!("server: {e}"))
}

fn cmd_query(args: &Args) -> Result<(), String> {
    use mwsj_core::mapreduce::json_escape;
    use mwsj_server::json::{self, Json};

    args.check_known(&[
        "connect",
        "query",
        "data",
        "algorithm",
        "count-only",
        "deadline-ms",
        "priority",
        "share",
        "stats",
        "shutdown",
        "proto",
    ])?;
    let addr = args.require("connect")?;
    let proto = match args.get("proto")?.unwrap_or("line") {
        "line" => mwsj_server::Proto::Line,
        "binary" => mwsj_server::Proto::Binary,
        "auto" => mwsj_server::Proto::Auto,
        other => {
            return Err(format!(
                "--proto must be `line`, `binary` or `auto`, got `{other}`"
            ))
        }
    };
    let client_config = mwsj_server::ClientConfig::default().with_proto(proto);
    let mut client = mwsj_server::Client::with_config(addr, client_config)
        .map_err(|e| format!("connecting {addr}: {e}"))?;

    if args.flag("stats") || args.flag("shutdown") {
        let op = if args.flag("shutdown") {
            "shutdown"
        } else {
            "stats"
        };
        let resp = client
            .request(&format!("{{\"op\":\"{op}\"}}"))
            .map_err(|e| e.to_string())?;
        println!("{resp}");
        return Ok(());
    }

    let query = args.require("query")?;
    // Validate the algorithm name client-side for a friendlier error.
    let algorithm = args.get("algorithm")?.unwrap_or("auto");
    algorithm.parse::<Algorithm>()?;
    let mut bindings = Vec::new();
    for spec in args.get_all("data") {
        let (name, source) = spec
            .split_once('=')
            .ok_or_else(|| format!("`{spec}` is not NAME=SOURCE"))?;
        bindings.push(format!(
            "\"{}\":\"{}\"",
            json_escape(name),
            json_escape(source)
        ));
    }
    let mut request = format!(
        "{{\"op\":\"query\",\"query\":\"{}\",\"data\":{{{}}},\"algorithm\":\"{algorithm}\"",
        json_escape(query),
        bindings.join(",")
    );
    if args.flag("count-only") {
        request.push_str(",\"count_only\":true");
    }
    if let Some(ms) = args.get("deadline-ms")? {
        let ms: u64 = ms.parse().map_err(|e| format!("--deadline-ms: {e}"))?;
        request.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    let priority: i32 = args.get_parsed_or("priority", 0i32)?;
    let share: u32 = args.get_parsed_or("share", 1u32)?;
    request.push_str(&format!(",\"priority\":{priority},\"share\":{share}}}"));

    let resp = client.request(&request).map_err(|e| e.to_string())?;
    let doc = json::parse(&resp).map_err(|e| format!("bad response `{resp}`: {e}"))?;
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = doc.get("error").and_then(Json::as_str).unwrap_or("error");
        let message = doc.get("message").and_then(Json::as_str).unwrap_or(&resp);
        return Err(format!("{code}: {message}"));
    }
    let count = doc.get("tuple_count").and_then(Json::as_f64).unwrap_or(0.0);
    let cached = doc.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let wall = doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    eprintln!("tuples    : {count}");
    if let Some(chosen) = doc.get("algorithm").and_then(Json::as_str) {
        eprintln!("algorithm : {chosen}");
    }
    eprintln!("cached    : {cached}");
    eprintln!("wall_ms   : {wall:.3}");
    if let Some(fp) = doc.get("fingerprint").and_then(Json::as_str) {
        eprintln!("fingerprint: {fp}");
    }
    // Tuples go to stdout as deterministic CSV, one per line.
    for tuple in doc.get("tuples").and_then(Json::as_arr).unwrap_or(&[]) {
        let ids: Vec<String> = tuple
            .as_arr()
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_f64)
            .map(|v| format!("{v}"))
            .collect();
        println!("{}", ids.join(","));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "query",
        "data",
        "algorithm",
        "grid",
        "count-only",
        "plan",
        "out",
        "fault-rate",
        "straggler-rate",
        "fault-seed",
        "trace-out",
        "trace-format",
    ])?;
    let query_text = args.require("query")?;
    let mut query = Query::parse(query_text).map_err(|e| format!("query: {e}"))?;
    let algorithm: Algorithm = args.get("algorithm")?.unwrap_or("auto").parse()?;
    let grid: u32 = args.get_parsed_or("grid", 8u32)?;

    // All-stored bindings run off the stores (shuffle-free under auto);
    // the space and grid come from the stores themselves.
    if let Some(bindings) = stored_bindings(args)? {
        if args.get("grid")?.is_some() {
            eprintln!("note      : --grid is ignored for stored runs (the stores' grid is used)");
        }
        return cmd_run_stored(args, &query, algorithm, &bindings);
    }
    if algorithm == Algorithm::MapSide {
        return Err(
            "the map-side join needs every --data binding to be a store:PATH dataset \
             (see `mwsj ingest`)"
                .into(),
        );
    }

    // Bind datasets to relation positions by name.
    let mut bindings = std::collections::BTreeMap::new();
    for spec in args.get_all("data") {
        let (name, rects) = data::parse_binding(spec)?;
        bindings.insert(name, rects);
    }
    let mut datasets: Vec<&[mwsj_geom::Rect]> = Vec::new();
    for pos in query.relations() {
        let name = query.name(pos);
        datasets.push(
            bindings
                .get(name)
                .ok_or_else(|| format!("no --data binding for relation `{name}`"))?,
        );
    }

    let trace = parse_trace_args(args)?;
    let (x_range, y_range) = data::bounding_space(&datasets);
    let cluster = Cluster::new(ClusterConfig {
        x_range,
        y_range,
        grid_cols: grid,
        grid_rows: grid,
        num_reducers: None,
        engine: parse_engine_config(args)?,
    });

    if args.flag("plan") {
        query = planner::optimize_cascade_order(&query, &datasets, planner::DEFAULT_SAMPLE, 7);
        eprintln!("planned order: {query}");
    }

    let mut run = JoinRun::new(&query, &datasets)
        .algorithm(algorithm)
        .count_only(args.flag("count-only"));
    if let Some(t) = &trace {
        run = run.trace(t.sink.clone());
    }
    let t0 = std::time::Instant::now();
    let output = cluster
        .submit(&run)
        .map_err(|e| format!("join failed: {e}"))?;
    let wall = t0.elapsed();
    finish_run(
        args,
        &query,
        algorithm,
        &output,
        (x_range, y_range),
        (grid, grid),
        wall,
        &trace,
    )
}

/// Runs a query whose bindings are all `store:PATH` datasets: the cluster
/// takes its space and grid from the stores, the join runs through
/// [`Cluster::submit_stored`], and under `auto` the optimizer can pick
/// the shuffle-free map-side join.
fn cmd_run_stored(
    args: &Args,
    query: &Query,
    algorithm: Algorithm,
    bindings: &[(String, String)],
) -> Result<(), String> {
    use mwsj_core::store::StoredDataset;
    use mwsj_core::StoredRun;

    if args.flag("plan") {
        return Err(
            "--plan needs in-memory inputs; stored runs are ordered by the stored plan".into(),
        );
    }
    let (by_name, open_wall) = open_stores(bindings)?;
    let mut stores: Vec<&StoredDataset> = Vec::new();
    for pos in query.relations() {
        let name = query.name(pos);
        stores.push(
            by_name
                .get(name)
                .ok_or_else(|| format!("no --data binding for relation `{name}`"))?,
        );
    }
    let grid = check_store_grids(&stores)?.clone();

    let trace = parse_trace_args(args)?;
    let cluster = Cluster::new(ClusterConfig {
        x_range: grid.x_range(),
        y_range: grid.y_range(),
        grid_cols: grid.cols(),
        grid_rows: grid.rows(),
        num_reducers: None,
        engine: parse_engine_config(args)?,
    });
    let mut run = StoredRun::new(query, &stores)
        .algorithm(algorithm)
        .count_only(args.flag("count-only"))
        .open_wall(open_wall);
    if let Some(t) = &trace {
        run = run.trace(t.sink.clone());
    }
    let t0 = std::time::Instant::now();
    let output = cluster
        .submit_stored(&run)
        .map_err(|e| format!("join failed: {e}"))?;
    let wall = t0.elapsed();
    eprintln!(
        "stores    : {} relations, {} records, opened in {open_wall:?}",
        stores.len(),
        stores.iter().map(|s| s.record_count()).sum::<u64>()
    );
    finish_run(
        args,
        query,
        algorithm,
        &output,
        (grid.x_range(), grid.y_range()),
        (grid.cols(), grid.rows()),
        wall,
        &trace,
    )
}

/// Opens every `NAME=PATH` stored binding, returning the stores by name
/// and the total open wall (charged to the run's `open_wall`).
fn open_stores(
    bindings: &[(String, String)],
) -> Result<
    (
        std::collections::BTreeMap<String, mwsj_core::store::StoredDataset>,
        std::time::Duration,
    ),
    String,
> {
    let t0 = std::time::Instant::now();
    let mut by_name = std::collections::BTreeMap::new();
    for (name, path) in bindings {
        let store = mwsj_core::store::StoredDataset::open(std::path::Path::new(path))
            .map_err(|e| format!("opening store `{path}`: {e}"))?;
        by_name.insert(name.clone(), store);
    }
    Ok((by_name, t0.elapsed()))
}

/// All stores in a run must be co-partitioned; returns their shared grid.
fn check_store_grids<'a>(
    stores: &[&'a mwsj_core::store::StoredDataset],
) -> Result<&'a mwsj_core::partition::Grid, String> {
    let first = stores
        .first()
        .ok_or("a stored run needs at least one --data binding")?;
    for s in stores {
        if s.grid() != first.grid() {
            return Err(
                "stores were ingested on different grids; re-ingest with matching \
                 --grid and --extent so they are co-partitioned"
                    .into(),
            );
        }
    }
    Ok(first.grid())
}

/// The `(NAME, PATH)` pairs of the `--data` bindings when *every* binding
/// is a `store:PATH` spec; `None` when any is not (or there are none).
fn stored_bindings(args: &Args) -> Result<Option<Vec<(String, String)>>, String> {
    let mut out = Vec::new();
    for spec in args.get_all("data") {
        let (name, source) = spec
            .split_once('=')
            .ok_or_else(|| format!("`{spec}` is not NAME=SOURCE"))?;
        match source.strip_prefix("store:") {
            Some(path) => out.push((name.to_string(), path.to_string())),
            None => return Ok(None),
        }
    }
    Ok((!out.is_empty()).then_some(out))
}

/// Prints the run summary and writes `--out` — the shared tail of the
/// in-memory and stored paths of `mwsj run`.
#[allow(clippy::too_many_arguments)]
fn finish_run(
    args: &Args,
    query: &Query,
    requested: Algorithm,
    output: &mwsj_core::JoinOutput,
    ((x0, x1), (y0, y1)): ((f64, f64), (f64, f64)),
    (cols, rows): (u32, u32),
    wall: std::time::Duration,
    trace: &Option<TraceSpec>,
) -> Result<(), String> {
    eprintln!("query     : {query}");
    if requested == Algorithm::Auto {
        eprintln!("algorithm : {} (picked by auto)", output.algorithm.name());
    } else {
        eprintln!("algorithm : {}", output.algorithm.name());
    }
    eprintln!("space     : [{x0:.1}, {x1:.1}] x [{y0:.1}, {y1:.1}], {cols}x{rows} reducers");
    eprintln!("tuples    : {}", output.len());
    eprintln!(
        "replicated: {} rectangles ({} copies)",
        output.stats.rectangles_replicated, output.stats.rectangles_after_replication
    );
    eprint!("{}", output.report.phase_table());
    for job in &output.report.jobs {
        if job.retries > 0 || job.speculative_launched > 0 {
            eprintln!(
                "faults in {}: {} map + {} reduce attempt failures, {} retries, {} speculative ({} won)",
                job.job_name,
                job.map_task_failures,
                job.reduce_task_failures,
                job.retries,
                job.speculative_launched,
                job.speculative_won
            );
        }
    }
    eprintln!("wall      : {wall:?}");
    if let Some(t) = trace {
        t.write()?;
    }

    if let Some(path) = args.get("out")? {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        );
        let names: Vec<&str> = query.relations().map(|r| query.name(r)).collect();
        writeln!(f, "# {}", names.join(",")).map_err(|e| e.to_string())?;
        for tuple in &output.tuples {
            let ids: Vec<String> = tuple.iter().map(u32::to_string).collect();
            writeln!(f, "{}", ids.join(",")).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {} tuples to {path}", output.tuples.len());
    }
    Ok(())
}

/// Partitions and indexes a dataset into an on-disk store (see
/// `mwsj_core::store`): rectangles are homed to grid cells, each cell
/// gets an STR-packed R-tree, and every section is checksummed.
fn cmd_ingest(args: &Args) -> Result<(), String> {
    args.check_known(&["source", "out", "grid", "extent"])?;
    let source = args.require("source")?;
    let out = args.require("out")?;
    let side: u32 = args.get_parsed_or("grid", 8u32)?;
    let extent: f64 = args.get_parsed_or("extent", 100_000.0f64)?;
    if !extent.is_finite() || extent <= 0.0 {
        return Err(format!("--extent must be positive, got {extent}"));
    }
    if side == 0 {
        return Err("--grid must be at least 1".into());
    }
    let rects = data::load_source(source)?;
    let grid = mwsj_core::partition::Grid::square((0.0, extent), (0.0, extent), side);
    let t0 = std::time::Instant::now();
    mwsj_core::store::StoreBuilder::new(&grid)
        .write(&rects, std::path::Path::new(out))
        .map_err(|e| format!("ingest: {e}"))?;
    let wall = t0.elapsed();
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!("records   : {}", rects.len());
    eprintln!("space     : [0, {extent:.1}]^2, {side}x{side} cells");
    eprintln!(
        "fingerprint: {:016x}",
        mwsj_core::store::dataset_fingerprint(&rects)
    );
    eprintln!("wrote {bytes} bytes to {out} in {wall:?}");
    Ok(())
}

/// Prints the optimizer's costed plan for a query without executing it.
/// With `--connect` the plan comes from a running server (its grid and
/// extent); otherwise it is computed locally as `mwsj run` would.
fn cmd_explain(args: &Args) -> Result<(), String> {
    use mwsj_core::mapreduce::json_escape;

    args.check_known(&["query", "data", "grid", "connect"])?;
    let query_text = args.require("query")?;

    if let Some(addr) = args.get("connect")? {
        let mut client =
            mwsj_server::Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let mut bindings = Vec::new();
        for spec in args.get_all("data") {
            let (name, source) = spec
                .split_once('=')
                .ok_or_else(|| format!("`{spec}` is not NAME=SOURCE"))?;
            bindings.push(format!(
                "\"{}\":\"{}\"",
                json_escape(name),
                json_escape(source)
            ));
        }
        let request = format!(
            "{{\"op\":\"explain\",\"query\":\"{}\",\"data\":{{{}}}}}",
            json_escape(query_text),
            bindings.join(",")
        );
        let resp = client.request(&request).map_err(|e| e.to_string())?;
        println!("{resp}");
        return Ok(());
    }

    let query = Query::parse(query_text).map_err(|e| format!("query: {e}"))?;
    let grid: u32 = args.get_parsed_or("grid", 8u32)?;

    // All-stored bindings are planned with the map-side candidate in
    // play, on the stores' own grid.
    if let Some(stored) = stored_bindings(args)? {
        let (by_name, _) = open_stores(&stored)?;
        let mut stores: Vec<&mwsj_core::store::StoredDataset> = Vec::new();
        for pos in query.relations() {
            let name = query.name(pos);
            stores.push(
                by_name
                    .get(name)
                    .ok_or_else(|| format!("no --data binding for relation `{name}`"))?,
            );
        }
        let g = check_store_grids(&stores)?.clone();
        let cluster = Cluster::new(ClusterConfig {
            x_range: g.x_range(),
            y_range: g.y_range(),
            grid_cols: g.cols(),
            grid_rows: g.rows(),
            num_reducers: None,
            engine: EngineConfig::default(),
        });
        let plan = cluster.plan_stored(&query, &stores);
        println!("{}", plan.to_json());
        return Ok(());
    }

    let mut bindings = std::collections::BTreeMap::new();
    for spec in args.get_all("data") {
        let (name, rects) = data::parse_binding(spec)?;
        bindings.insert(name, rects);
    }
    let mut datasets: Vec<&[mwsj_geom::Rect]> = Vec::new();
    for pos in query.relations() {
        let name = query.name(pos);
        datasets.push(
            bindings
                .get(name)
                .ok_or_else(|| format!("no --data binding for relation `{name}`"))?,
        );
    }
    let (x_range, y_range) = data::bounding_space(&datasets);
    let cluster = Cluster::new(ClusterConfig {
        x_range,
        y_range,
        grid_cols: grid,
        grid_rows: grid,
        num_reducers: None,
        engine: EngineConfig::default(),
    });
    let plan = cluster.plan(&query, &datasets);
    println!("{}", plan.to_json());
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    args.check_known(&["source", "out"])?;
    let source = args.require("source")?;
    let out = args.require("out")?;
    let rects = data::load_source(source)?;
    mwsj_datagen::io::save_rects(out, &rects).map_err(|e| e.to_string())?;
    eprintln!("wrote {} rectangles to {out}", rects.len());
    Ok(())
}

fn cmd_ann(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "outer",
        "inner",
        "grid",
        "out",
        "k",
        "fault-rate",
        "straggler-rate",
        "fault-seed",
        "trace-out",
        "trace-format",
    ])?;
    let outer = data::load_source(args.require("outer")?)?;
    let inner = data::load_source(args.require("inner")?)?;
    let grid: u32 = args.get_parsed_or("grid", 8u32)?;
    let k: usize = args.get_parsed_or("k", 1usize)?;
    let trace = parse_trace_args(args)?;
    let (x_range, y_range) = data::bounding_space(&[&outer, &inner]);
    let mut engine = parse_engine_config(args)?;
    if let Some(t) = &trace {
        // The ANN rounds run directly on the engine, so the sink attaches
        // engine-wide rather than per run.
        engine = engine.with_trace(t.sink.clone());
    }
    let cluster = Cluster::new(ClusterConfig {
        x_range,
        y_range,
        grid_cols: grid,
        grid_rows: grid,
        num_reducers: None,
        engine,
    });
    let t0 = std::time::Instant::now();
    let result: Vec<mwsj_core::ann::NearestNeighbor> = if k == 1 {
        mwsj_core::ann::try_ann_join(&cluster, &outer, &inner)
            .map_err(|e| format!("ann join failed: {e}"))?
    } else {
        mwsj_core::ann::try_knn_join(&cluster, &outer, &inner, k)
            .map_err(|e| format!("knn join failed: {e}"))?
            .into_iter()
            .flatten()
            .collect()
    };
    eprintln!(
        "{} nearest neighbors in {:?} ({} jobs)",
        result.len(),
        t0.elapsed(),
        cluster.engine().report().num_jobs()
    );
    if let Some(t) = &trace {
        t.write()?;
    }
    if let Some(path) = args.get("out")? {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
        );
        writeln!(f, "# outer,inner,distance").map_err(|e| e.to_string())?;
        for nn in &result {
            writeln!(f, "{},{},{}", nn.outer, nn.inner, nn.distance).map_err(|e| e.to_string())?;
        }
    } else {
        for nn in result.iter().take(10) {
            println!(
                "outer {} -> inner {} (distance {:.3})",
                nn.outer, nn.inner, nn.distance
            );
        }
        if result.len() > 10 {
            println!(
                "... and {} more (use --out FILE for all)",
                result.len() - 10
            );
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    args.check_known(&["source"])?;
    let rects = data::load_source(args.require("source")?)?;
    if rects.is_empty() {
        println!("empty dataset");
        return Ok(());
    }
    let s = CaliforniaStats::of(&rects);
    let ((x0, x1), (y0, y1)) = data::bounding_space(&[&rects]);
    println!("rectangles          : {}", rects.len());
    println!("extent              : [{x0:.1}, {x1:.1}] x [{y0:.1}, {y1:.1}]");
    println!(
        "mean length/breadth : {:.2} / {:.2}",
        s.mean_length, s.mean_breadth
    );
    println!(
        "max length/breadth  : {:.2} / {:.2}",
        s.max_length, s.max_breadth
    );
    println!("min side            : {:.2}", s.min_side);
    println!(
        "both sides < 100    : {:.2}%   < 1000: {:.2}%",
        s.frac_both_under_100 * 100.0,
        s.frac_both_under_1000 * 100.0
    );
    Ok(())
}
