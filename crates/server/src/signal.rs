//! Process signal handling for graceful shutdown.
//!
//! `SIGTERM` / `SIGINT` flip a process-wide flag that the accept loop
//! polls; the server then stops accepting, finishes in-flight requests
//! and joins its connection threads. This is the one place the crate
//! needs `unsafe` (the `signal(2)` FFI), kept to a handler that only
//! touches an atomic.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed (or
/// [`request_shutdown`] was called).
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically (the `shutdown` protocol op and
/// tests use this; signals use the handler below).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Re-arms the flag (tests start several servers in one process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that performs a single
        // lock-free atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs `SIGTERM`/`SIGINT` handlers that request shutdown. No-op on
/// non-Unix platforms (the `shutdown` op still works everywhere).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_latches_and_resets() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}
