//! The line-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. Four operations:
//!
//! ```text
//! {"op":"query","query":"R1 ov R2","data":{"R1":"synthetic:n=100,seed=1","R2":"..."},
//!  "algorithm":"auto","count_only":false,"deadline_ms":2000,"priority":0,"share":1}
//! {"op":"explain","query":"R1 ov R2","data":{"R1":"synthetic:n=100,seed=1","R2":"..."}}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `algorithm` defaults to `"auto"`: the cost-based optimizer picks the
//! concrete algorithm, and the response reports the choice in its
//! `"algorithm"` field. `explain` returns the costed plan without
//! executing it.
//!
//! Successful query responses carry `"ok":true`, the (sorted) result
//! tuples in the *requester's* relation order, a `cached` flag, the
//! combined input fingerprint and the per-job logical counters; failures
//! carry `"ok":false` plus a typed error code from [`ErrorCode`].

use mwsj_core::mapreduce::json_escape;
use mwsj_core::Algorithm;

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a join query.
    Query(QueryRequest),
    /// Return the costed plan for a query without executing it.
    Explain(ExplainRequest),
    /// Report service statistics.
    Stats,
    /// Stop accepting connections and shut the service down.
    Shutdown,
}

/// The payload of an `explain` operation: the query and its dataset
/// bindings, as in a `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    /// Query text, in the grammar of [`mwsj_query::Query::parse`].
    pub query: String,
    /// `(relation name, dataset source spec)` bindings.
    pub data: Vec<(String, String)>,
}

/// The payload of a `query` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Query text, in the grammar of [`mwsj_query::Query::parse`].
    pub query: String,
    /// `(relation name, dataset source spec)` bindings.
    pub data: Vec<(String, String)>,
    /// Which join algorithm runs the query.
    pub algorithm: Algorithm,
    /// Count tuples without materializing (or returning) them.
    pub count_only: bool,
    /// Wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Slot-scheduler priority.
    pub priority: i32,
    /// Slot-scheduler fair-share weight.
    pub share: u32,
}

/// Typed error codes, so clients can distinguish load shedding from bad
/// requests without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed (syntax, unknown op, missing binding,
    /// out-of-space dataset).
    BadRequest,
    /// Admission control rejected the request: the service is at its
    /// in-flight and queue limits. Retry later.
    Overloaded,
    /// The run was cancelled (client disconnect).
    Cancelled,
    /// The run exceeded its deadline.
    DeadlineExceeded,
    /// The join itself failed (task attempts exhausted under faults).
    JoinFailed,
}

impl ErrorCode {
    /// The wire name of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::JoinFailed => "join_failed",
        }
    }
}

/// Parses the `query` text and `data` bindings shared by the `query` and
/// `explain` operations.
fn query_and_data(doc: &Json) -> Result<(String, Vec<(String, String)>), String> {
    let query = doc
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string field `query`")?
        .to_string();
    let data = doc
        .get("data")
        .and_then(Json::as_obj)
        .ok_or("missing object field `data`")?
        .iter()
        .map(|(k, v)| {
            v.as_str()
                .map(|s| (k.clone(), s.to_string()))
                .ok_or_else(|| format!("data binding `{k}` must be a string source"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((query, data))
}

fn num_field(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a number")),
    }
}

/// Parses one request line.
///
/// # Errors
/// A human-readable message; the server wraps it as a `bad_request`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = crate::json::parse(line.trim())?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "explain" => {
            let (query, data) = query_and_data(&doc)?;
            Ok(Request::Explain(ExplainRequest { query, data }))
        }
        "query" => {
            let (query, data) = query_and_data(&doc)?;
            let algorithm = match doc.get("algorithm").and_then(Json::as_str) {
                Some(name) => name.parse::<Algorithm>()?,
                None => Algorithm::Auto,
            };
            let count_only = doc
                .get("count_only")
                .map(|v| v.as_bool().ok_or("`count_only` must be a boolean"))
                .transpose()?
                .unwrap_or(false);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let deadline_ms = num_field(&doc, "deadline_ms")?.map(|v| v.max(0.0) as u64);
            #[allow(clippy::cast_possible_truncation)]
            let priority = num_field(&doc, "priority")?.unwrap_or(0.0) as i32;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let share = num_field(&doc, "share")?.unwrap_or(1.0).max(1.0) as u32;
            Ok(Request::Query(QueryRequest {
                query,
                data,
                algorithm,
                count_only,
                deadline_ms,
                priority,
                share,
            }))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Renders a typed error response line.
#[must_use]
pub fn error_response(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        code.as_str(),
        json_escape(message)
    )
}

/// Renders result tuples as a JSON array of id arrays.
#[must_use]
pub fn tuples_json(tuples: &[Vec<u32>]) -> String {
    let mut out = String::from("[");
    for (i, t) in tuples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, id) in t.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push(']');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query_request() {
        let r = parse_request(
            r#"{"op":"query","query":"A ov B","data":{"A":"x.csv","B":"synthetic:n=5"},
               "algorithm":"allrep","count_only":true,"deadline_ms":250,"priority":3,"share":4}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        let Request::Query(q) = r else {
            panic!("expected query")
        };
        assert_eq!(q.query, "A ov B");
        assert_eq!(q.data.len(), 2);
        assert_eq!(q.algorithm, Algorithm::AllReplicate);
        assert!(q.count_only);
        assert_eq!(q.deadline_ms, Some(250));
        assert_eq!(q.priority, 3);
        assert_eq!(q.share, 4);
    }

    #[test]
    fn defaults_are_applied() {
        let Request::Query(q) =
            parse_request(r#"{"op":"query","query":"A ov B","data":{"A":"x","B":"y"}}"#).unwrap()
        else {
            panic!("expected query")
        };
        assert_eq!(q.algorithm, Algorithm::Auto);
        assert!(!q.count_only);
        assert_eq!(q.deadline_ms, None);
        assert_eq!(q.priority, 0);
        assert_eq!(q.share, 1);
    }

    #[test]
    fn explain_parses_query_and_bindings() {
        let r = parse_request(
            r#"{"op":"explain","query":"A ov B","data":{"A":"x.csv","B":"synthetic:n=5"}}"#,
        )
        .unwrap();
        let Request::Explain(e) = r else {
            panic!("expected explain")
        };
        assert_eq!(e.query, "A ov B");
        assert_eq!(e.data.len(), 2);
        assert!(parse_request(r#"{"op":"explain","query":"A ov B"}"#).is_err());
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn bad_requests_report() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request(r#"{"op":"query","query":"A ov B"}"#).is_err());
        assert!(
            parse_request(r#"{"op":"query","query":"A ov B","data":{"A":1,"B":"y"}}"#).is_err()
        );
    }

    #[test]
    fn wire_algorithm_names_reach_the_parser() {
        // Parse/format logic lives in mwsj-core; the protocol only relays
        // it — every wire name must round-trip through a request line.
        for a in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
            let line = format!(
                r#"{{"op":"query","query":"A ov B","data":{{"A":"x","B":"y"}},"algorithm":"{a}"}}"#
            );
            let Request::Query(q) = parse_request(&line).unwrap() else {
                panic!("expected query")
            };
            assert_eq!(q.algorithm, a);
        }
        assert!(parse_request(
            r#"{"op":"query","query":"A ov B","data":{"A":"x","B":"y"},"algorithm":"quantum"}"#
        )
        .is_err());
    }

    #[test]
    fn error_response_is_valid_json() {
        let line = error_response(ErrorCode::Overloaded, "queue full: 4 waiting");
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("overloaded"));
    }

    #[test]
    fn tuples_render_compactly() {
        assert_eq!(tuples_json(&[]), "[]");
        assert_eq!(
            tuples_json(&[vec![1, 2, 3], vec![4, 5, 6]]),
            "[[1,2,3],[4,5,6]]"
        );
    }
}
