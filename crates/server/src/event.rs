//! The readiness event loop of the serving tier.
//!
//! One thread owns every connection: a [`Poller`] (epoll on Linux)
//! reports socket readiness, [`Connection`] state machines buffer and
//! frame both directions, a [`TimerWheel`] paces idle eviction and
//! injected-fault resumption, and a [`Sequencer`] per connection keeps
//! pipelined responses in request order. Query execution itself still
//! runs on worker threads — one per in-flight request — which report
//! back through a completion queue and a cross-thread [`Waker`], so a
//! slow join never stalls the thousands of other connections the loop
//! is holding.
//!
//! Lifecycle rules (matching the blocking server this replaces):
//!
//! * A client that reaches EOF mid-run has its in-flight queries
//!   cancelled; requests parsed *after* EOF run with a pre-cancelled
//!   token, so cheap operations (`stats`, cache hits) still answer but
//!   joins report `cancelled` instead of burning slots for a
//!   half-closed peer.
//! * Oversized or malformed requests get a typed `bad_request` response
//!   — sequenced after any earlier pipelined responses — and the
//!   connection closes once it flushes.
//! * On shutdown the loop stops accepting, stops parsing new requests,
//!   lets in-flight work finish until the drain deadline, then cancels
//!   the stragglers through their tokens and exits once every
//!   connection has flushed (with a hard backstop well past the
//!   deadline).

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mwsj_core::mapreduce::CancelToken;
use mwsj_net::poll::waker;
use mwsj_net::{
    Connection, FaultGate, FlushOutcome, Interest, Poller, ProtoError, ReadOutcome, Sequencer,
    TimerWheel, Waker, WireMode,
};

use crate::protocol::{self, ErrorCode};
use crate::{Inner, ProtoPolicy};

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Token of the wake pipe's receive end.
const WAKER: u64 = 1;
/// First connection token.
const FIRST_CONN: u64 = 2;
/// Timer tokens with this bit set are stall-resume hints for the
/// connection in the low bits; without it, idle-eviction checks.
const STALL_BIT: u64 = 1 << 63;
/// The poll tick: an upper bound on how stale the stop flag and drain
/// deadline can get while the loop is otherwise idle.
const TICK: Duration = Duration::from_millis(25);
/// How long past the drain deadline the loop waits for cancelled
/// stragglers to flush before force-exiting.
const DRAIN_BACKSTOP: Duration = Duration::from_secs(30);

/// A worker's finished response, routed back to its connection.
struct Completion {
    token: u64,
    req: u64,
    response: String,
}

struct ConnState {
    conn: Connection,
    seq: Sequencer,
    /// Cancel tokens of requests dispatched but not yet completed.
    inflight: HashMap<u64, CancelToken>,
    /// Reading has stopped (protocol violation); close once flushed.
    closing: bool,
    /// What the poller is currently watching for this socket.
    registered: Interest,
    /// A write stall is waiting on its resume timer, not on readiness.
    write_stalled: bool,
}

impl ConnState {
    /// Everything answered and flushed — nothing left to do for this
    /// connection but wait for more requests.
    fn drained(&self) -> bool {
        self.inflight.is_empty() && self.seq.drained() && !self.conn.wants_write()
    }
}

/// Runs the event loop until shutdown completes. See module docs.
pub(crate) fn run(listener: &TcpListener, inner: &Arc<Inner>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let (wake, mut wake_rx) = waker()?;
    poller.register(listener, LISTENER, Interest::READ)?;
    poller.register(&wake_rx, WAKER, Interest::READ)?;

    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token = FIRST_CONN;
    // The fault-plan connection index: increments per accepted
    // connection, matching the blocking server's numbering so pinned
    // chaos seeds exercise the same per-connection decision streams.
    let mut conn_seq = 0u64;
    let mut timers = TimerWheel::new(Duration::from_millis(10), 512, Instant::now());
    let mut events = Vec::new();
    let mut due: Vec<u64> = Vec::new();
    let mut dirty: Vec<u64> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();
    let mut drain_cancelled = false;

    loop {
        let timeout = timers
            .next_due()
            .map_or(TICK, |at| at.saturating_duration_since(Instant::now()))
            .min(TICK);
        poller.wait(&mut events, timeout)?;
        let now = Instant::now();

        if !draining && inner.stopping() {
            draining = true;
            drain_deadline = now + inner.config.drain_deadline;
            poller.deregister(listener).ok();
        }

        dirty.clear();
        for ev in &events {
            match ev.token {
                LISTENER => {
                    if !draining {
                        accept_all(
                            listener,
                            &poller,
                            inner,
                            &mut conns,
                            &mut next_token,
                            &mut conn_seq,
                            &mut timers,
                            now,
                        )?;
                    }
                }
                WAKER => wake_rx.drain(),
                token => {
                    if conns.contains_key(&token) && !dirty.contains(&token) {
                        dirty.push(token);
                    }
                }
            }
        }

        timers.advance(now, &mut due);
        for t in due.drain(..) {
            let token = t & !STALL_BIT;
            let Some(cs) = conns.get_mut(&token) else {
                continue;
            };
            if t & STALL_BIT != 0 {
                // Stall resumes are hints: clear the latch and re-drive;
                // the connection re-checks its own resume clocks.
                cs.write_stalled = false;
                if !dirty.contains(&token) {
                    dirty.push(token);
                }
            } else {
                idle_check(inner, cs, &mut timers, token, now);
            }
        }

        // Route finished responses through each connection's sequencer.
        let batch: Vec<Completion> = {
            let mut guard = completions.lock().expect("completions lock");
            std::mem::take(&mut *guard)
        };
        for c in batch {
            let Some(cs) = conns.get_mut(&c.token) else {
                continue;
            };
            cs.inflight.remove(&c.req);
            for payload in cs.seq.complete(c.req, c.response.into_bytes()) {
                cs.conn.enqueue_response(&payload, now);
            }
            if !dirty.contains(&c.token) {
                dirty.push(c.token);
            }
        }

        for token in dirty.drain(..) {
            if let Some(cs) = conns.get_mut(&token) {
                drive(
                    inner,
                    &poller,
                    &completions,
                    &wake,
                    cs,
                    &mut timers,
                    token,
                    now,
                    draining,
                );
            }
        }

        // Reap: dead connections, and violators that finished flushing.
        conns.retain(|_, cs| {
            let gone = cs.conn.is_dead() || (cs.closing && cs.drained());
            if gone {
                for tok in cs.inflight.values() {
                    tok.cancel();
                }
                poller.deregister(cs.conn.socket()).ok();
                cs.conn.kill();
            }
            !gone
        });

        if draining {
            if !drain_cancelled && now >= drain_deadline {
                for cs in conns.values() {
                    for tok in cs.inflight.values() {
                        tok.cancel();
                    }
                }
                drain_cancelled = true;
            }
            conns.retain(|_, cs| {
                if cs.drained() {
                    poller.deregister(cs.conn.socket()).ok();
                    cs.conn.kill();
                    false
                } else {
                    true
                }
            });
            if conns.is_empty() || now >= drain_deadline + DRAIN_BACKSTOP {
                return Ok(());
            }
        }
    }
}

/// Accepts every pending connection (edge-free: loops to `WouldBlock`).
#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    inner: &Arc<Inner>,
    conns: &mut HashMap<u64, ConnState>,
    next_token: &mut u64,
    conn_seq: &mut u64,
    timers: &mut TimerWheel,
    now: Instant,
) -> std::io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let gate = FaultGate::new(inner.config.net_fault.clone(), *conn_seq);
                *conn_seq += 1;
                let Ok(mut conn) = Connection::new(stream, gate, now) else {
                    continue;
                };
                if inner.config.proto == ProtoPolicy::LineOnly {
                    conn.force_mode(WireMode::Line);
                }
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(conn.socket(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                timers.schedule(token, inner.config.idle_timeout);
                conns.insert(
                    token,
                    ConnState {
                        conn,
                        seq: Sequencer::new(),
                        inflight: HashMap::new(),
                        closing: false,
                        registered: Interest::READ,
                        write_stalled: false,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The recurring idle check: evicts a connection that has made no
/// progress for the idle timeout with nothing in flight (the slow-loris
/// defence), otherwise re-arms the timer for the remaining window.
fn idle_check(
    inner: &Arc<Inner>,
    cs: &mut ConnState,
    timers: &mut TimerWheel,
    token: u64,
    now: Instant,
) {
    if cs.conn.is_dead() {
        return;
    }
    let idle_for = now.saturating_duration_since(cs.conn.last_activity());
    let timeout = inner.config.idle_timeout;
    if cs.inflight.is_empty() && idle_for >= timeout {
        if !cs.closing {
            inner.stats.evicted.fetch_add(1, Ordering::Relaxed);
        }
        cs.conn.kill(); // reaped by the caller's sweep
    } else {
        timers.schedule(token, timeout.saturating_sub(idle_for).max(TICK));
    }
}

/// Drives one connection: read, parse and dispatch pipelined requests,
/// flush pending responses, and resync poller interest.
#[allow(clippy::too_many_arguments)]
fn drive(
    inner: &Arc<Inner>,
    poller: &Poller,
    completions: &Arc<Mutex<Vec<Completion>>>,
    wake: &Waker,
    cs: &mut ConnState,
    timers: &mut TimerWheel,
    token: u64,
    now: Instant,
    draining: bool,
) {
    if cs.conn.is_dead() {
        return;
    }

    if !cs.closing {
        match cs.conn.fill(now) {
            ReadOutcome::Open | ReadOutcome::Eof => {}
            ReadOutcome::Stalled(resume) => {
                timers.schedule(token | STALL_BIT, resume.saturating_duration_since(now));
            }
            ReadOutcome::Dead => {
                for tok in cs.inflight.values() {
                    tok.cancel();
                }
                return;
            }
        }
    }

    // Parse and dispatch every complete request in the buffer. During
    // drain nothing new is dispatched — in-flight work finishes, the
    // rest stays buffered until the connection closes.
    while !cs.closing && !draining {
        match cs.conn.next_request(inner.config.max_request_line) {
            Ok(Some(payload)) => {
                let text = String::from_utf8_lossy(&payload).into_owned();
                if text.trim().is_empty() {
                    continue;
                }
                let req = cs.seq.assign();
                let cancel = CancelToken::new();
                if cs.conn.peer_eof() {
                    // Dispatched after EOF: answer cheap operations, but
                    // never start a join for a half-closed peer.
                    cancel.cancel();
                }
                cs.inflight.insert(req, cancel.clone());
                let inner = Arc::clone(inner);
                let completions = Arc::clone(completions);
                let wake = wake.clone();
                thread::spawn(move || {
                    let response = crate::answer(&inner, &text, &cancel);
                    completions
                        .lock()
                        .expect("completions lock")
                        .push(Completion {
                            token,
                            req,
                            response,
                        });
                    wake.wake();
                });
            }
            Ok(None) => break,
            Err(err) => {
                let (message, evict) = match &err {
                    ProtoError::Oversize { .. } => (
                        match cs.conn.mode() {
                            Some(WireMode::Binary) => {
                                "request frame exceeds the configured maximum length"
                            }
                            _ => "request line exceeds the configured maximum length",
                        },
                        true,
                    ),
                    ProtoError::BadFrame(_) => ("malformed binary frame", false),
                };
                if evict {
                    inner.stats.evicted.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                let response = protocol::error_response(ErrorCode::BadRequest, message);
                let req = cs.seq.assign();
                for payload in cs.seq.complete(req, response.into_bytes()) {
                    cs.conn.enqueue_response(&payload, now);
                }
                cs.closing = true;
            }
        }
    }

    // A peer that half-closed mid-run gets its in-flight joins
    // cancelled — their slots go back to the other tenants.
    if cs.conn.peer_eof() {
        for tok in cs.inflight.values() {
            tok.cancel();
        }
    }

    match cs.conn.flush(now) {
        FlushOutcome::Flushed | FlushOutcome::Blocked => {}
        FlushOutcome::Stalled(resume) => {
            cs.write_stalled = true;
            timers.schedule(token | STALL_BIT, resume.saturating_duration_since(now));
        }
        FlushOutcome::Dead => {
            for tok in cs.inflight.values() {
                tok.cancel();
            }
            return;
        }
    }

    // An EOF'd connection with nothing left to answer or flush is done.
    if cs.conn.peer_eof() && cs.drained() {
        cs.conn.kill();
        return;
    }

    let desired = Interest {
        readable: !cs.closing && !cs.conn.peer_eof() && !cs.conn.read_stalled() && !draining,
        writable: cs.conn.wants_write() && !cs.write_stalled,
    };
    if desired != cs.registered && poller.reregister(cs.conn.socket(), token, desired).is_ok() {
        cs.registered = desired;
    }
}
