//! A resilient blocking client for both wire protocols.
//!
//! One TCP connection, one request out, one response back — over either
//! line-delimited JSON (the default) or the length-prefixed binary
//! framing (see [`mwsj_net::frame`]), selected by [`Proto`]. With
//! [`Proto::Auto`] the first request doubles as the probe: it goes out
//! as a binary frame tailed with a newline, and a server that answers
//! in line JSON (one pinned to the line protocol) makes the client
//! reconnect and resend on line JSON — every later request sticks with
//! the negotiated mode. Retries, deadlines and hedging are all
//! protocol-agnostic: [`Client::request_idempotent`] and
//! [`Client::request_hedged`] ride on the same codec as
//! [`Client::request`].
//!
//! Also here: explicit connect/read/write timeouts, typed errors
//! ([`ClientError::TimedOut`] instead of a raw `WouldBlock`), opt-in
//! deadline-aware retries with deterministic jittered exponential
//! backoff ([`Client::request_idempotent`]), and an opt-in hedged second
//! attempt for read-only requests ([`Client::request_hedged`]).
//!
//! Retries and hedging are **not** applied by [`Client::request`]: a
//! query submission is only safely retryable when the caller knows it is
//! idempotent (the protocol's queries are — results are deterministic
//! and cached — but the choice stays with the caller).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mwsj_net::frame::encode_frame;
use mwsj_net::FRAME_MAGIC;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A connect, read or write exceeded its configured timeout, or the
    /// total request deadline expired mid-retry.
    TimedOut(String),
    /// The server closed the connection before responding.
    Disconnected,
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut(what) => write!(f, "timed out: {what}"),
            ClientError::Disconnected => {
                write!(f, "server closed the connection before responding")
            }
            ClientError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ClientError {
    /// Classifies an I/O error from operation `what`.
    fn from_io(what: &str, e: std::io::Error) -> ClientError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ClientError::TimedOut(what.to_string())
            }
            std::io::ErrorKind::UnexpectedEof => ClientError::Disconnected,
            _ => ClientError::Io(e),
        }
    }
}

/// Which wire protocol the client speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// Line-delimited JSON — the original protocol; every server
    /// accepts it, so it is the default.
    #[default]
    Line,
    /// Length-prefixed binary frames, unconditionally. Against a server
    /// pinned to the line protocol this times out — prefer
    /// [`Proto::Auto`] unless the fleet is known-binary.
    Binary,
    /// Negotiate: probe with a newline-tailed binary frame on the first
    /// request and fall back to line JSON if the server answers in it.
    Auto,
}

/// Client-side resilience knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read timeout while waiting for a response line.
    pub read_timeout: Duration,
    /// Per-write timeout while sending a request line.
    pub write_timeout: Duration,
    /// Extra attempts [`Client::request_idempotent`] makes after the
    /// first failure (0 = no retries).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt, plus
    /// deterministic jitter in `[0, backoff/2)`.
    pub backoff: Duration,
    /// Overall deadline across all attempts of one
    /// [`Client::request_idempotent`] call (`None` = unbounded).
    pub total_deadline: Option<Duration>,
    /// If set, [`Client::request_hedged`] launches a second connection
    /// after this delay and takes whichever response arrives first.
    pub hedge: Option<Duration>,
    /// Seed for the jitter stream, so retry timing is reproducible.
    pub seed: u64,
    /// The wire protocol to speak (or negotiate, with [`Proto::Auto`]).
    pub proto: Proto,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            retries: 0,
            backoff: Duration::from_millis(50),
            total_deadline: None,
            hedge: None,
            seed: 0,
            proto: Proto::default(),
        }
    }
}

impl ClientConfig {
    /// Sets the retry budget and base backoff.
    #[must_use]
    pub fn with_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.backoff = backoff;
        self
    }

    /// Sets the overall per-request deadline.
    #[must_use]
    pub fn with_total_deadline(mut self, deadline: Duration) -> Self {
        self.total_deadline = Some(deadline);
        self
    }

    /// Enables hedged reads with the given hedge delay.
    #[must_use]
    pub fn with_hedge(mut self, delay: Duration) -> Self {
        self.hedge = Some(delay);
        self
    }

    /// Sets the read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Seeds the deterministic jitter stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the wire protocol (or [`Proto::Auto`] negotiation).
    #[must_use]
    pub fn with_proto(mut self, proto: Proto) -> Self {
        self.proto = proto;
        self
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// The mode this connection speaks. [`Proto::Auto`] means "not yet
    /// negotiated" — the first request settles it to `Line` or `Binary`,
    /// and a reconnect resets it to the configured value.
    mode: Proto,
    /// xorshift state for backoff jitter (derived from the seed).
    rng: u64,
}

impl Client {
    /// Connects to a running server with the default timeouts.
    ///
    /// # Errors
    /// [`ClientError::TimedOut`] on connect timeout, otherwise the
    /// underlying I/O failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::with_config(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience settings.
    ///
    /// # Errors
    /// [`ClientError::TimedOut`] on connect timeout, otherwise the
    /// underlying I/O failure.
    pub fn with_config(addr: &str, config: ClientConfig) -> Result<Client, ClientError> {
        let (stream, reader) = Client::open(addr, &config)?;
        let mut rng = config.seed ^ 0x9E37_79B9_7F4A_7C15;
        if rng == 0 {
            rng = 1;
        }
        let mode = config.proto;
        Ok(Client {
            addr: addr.to_string(),
            config,
            stream,
            reader,
            mode,
            rng,
        })
    }

    /// Opens one fresh connection per the config's timeouts.
    fn open(
        addr: &str,
        config: &ClientConfig,
    ) -> Result<(TcpStream, BufReader<TcpStream>), ClientError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::from_io("resolve", e))?;
        let mut last: Option<std::io::Error> = None;
        let mut stream: Option<TcpStream> = None;
        for sock in resolved {
            match TcpStream::connect_timeout(&sock, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = match (stream, last) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(ClientError::from_io("connect", e)),
            (None, None) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    format!("`{addr}` resolved to no addresses"),
                )))
            }
        };
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(config.write_timeout))
            .map_err(ClientError::Io)?;
        let reader = BufReader::new(stream.try_clone().map_err(ClientError::Io)?);
        Ok((stream, reader))
    }

    /// Sends one request and reads one response, over whichever wire
    /// mode this connection speaks (negotiating it first under
    /// [`Proto::Auto`]). No retries: see [`Client::request_idempotent`]
    /// for the retrying variant.
    ///
    /// # Errors
    /// [`ClientError::TimedOut`] when a read or write exceeds its
    /// timeout, [`ClientError::Disconnected`] on EOF before a complete
    /// response, otherwise the underlying I/O failure.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        match self.mode {
            Proto::Line => self.request_over_line(line),
            Proto::Binary => self.request_over_binary(line, false),
            Proto::Auto => self.negotiate(line),
        }
    }

    /// The line-JSON leg of the codec: request line out, response line
    /// back. A response cut short before its terminating newline (a torn
    /// write from a dying server) reports [`ClientError::Disconnected`],
    /// never a truncated payload.
    fn request_over_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.stream
            .write_all(line.as_bytes())
            .map_err(|e| ClientError::from_io("write request", e))?;
        if !line.ends_with('\n') {
            self.stream
                .write_all(b"\n")
                .map_err(|e| ClientError::from_io("write request", e))?;
        }
        self.stream
            .flush()
            .map_err(|e| ClientError::from_io("write request", e))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| ClientError::from_io("read response", e))?;
        if n == 0 || !response.ends_with('\n') {
            return Err(ClientError::Disconnected);
        }
        Ok(response.trim_end().to_string())
    }

    /// The binary leg of the codec: one frame out (newline-tailed when
    /// probing), one frame back.
    fn request_over_binary(&mut self, line: &str, probe: bool) -> Result<String, ClientError> {
        let mut wire = Vec::with_capacity(line.len() + 6);
        encode_frame(line.trim_end().as_bytes(), &mut wire);
        if probe {
            wire.push(b'\n');
        }
        self.stream
            .write_all(&wire)
            .map_err(|e| ClientError::from_io("write request", e))?;
        self.stream
            .flush()
            .map_err(|e| ClientError::from_io("write request", e))?;
        let mut magic = [0u8; 1];
        self.reader
            .read_exact(&mut magic)
            .map_err(|e| ClientError::from_io("read response", e))?;
        if magic[0] != FRAME_MAGIC {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a binary frame, got first byte 0x{:02x}", magic[0]),
            )));
        }
        self.read_frame_body()
    }

    /// Reads a frame's length prefix and payload (the magic byte has
    /// already been consumed).
    fn read_frame_body(&mut self) -> Result<String, ClientError> {
        let mut len_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut len_bytes)
            .map_err(|e| ClientError::from_io("read response", e))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| ClientError::from_io("read response", e))?;
        String::from_utf8(payload).map_err(|_| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "binary response payload is not UTF-8",
            ))
        })
    }

    /// [`Proto::Auto`]'s first request: a newline-tailed binary frame.
    /// A binary-capable server answers with a frame (its first byte the
    /// magic) and the connection settles on binary; a line-pinned server
    /// reads the probe as one garbled line and answers a line-JSON
    /// error, so the client reconnects on line JSON and resends.
    fn negotiate(&mut self, line: &str) -> Result<String, ClientError> {
        let mut wire = Vec::with_capacity(line.len() + 7);
        encode_frame(line.trim_end().as_bytes(), &mut wire);
        wire.push(b'\n');
        self.stream
            .write_all(&wire)
            .map_err(|e| ClientError::from_io("write request", e))?;
        self.stream
            .flush()
            .map_err(|e| ClientError::from_io("write request", e))?;
        let mut magic = [0u8; 1];
        self.reader
            .read_exact(&mut magic)
            .map_err(|e| ClientError::from_io("read response", e))?;
        if magic[0] == FRAME_MAGIC {
            self.mode = Proto::Binary;
            return self.read_frame_body();
        }
        // Line-JSON first byte: the server is pinned to the line
        // protocol and just answered an error for the garbled probe.
        // Drop this connection (discarding that error) and resend the
        // request over a fresh line-mode connection.
        let (stream, reader) = Client::open(&self.addr, &self.config)?;
        self.stream = stream;
        self.reader = reader;
        self.mode = Proto::Line;
        self.request_over_line(line)
    }

    /// Sends an *idempotent* request, retrying with a fresh connection
    /// after each failure: up to [`ClientConfig::retries`] extra
    /// attempts, jittered exponential backoff between them, the whole
    /// call bounded by [`ClientConfig::total_deadline`].
    ///
    /// Only use this for requests that are safe to re-execute (the
    /// protocol's queries and `stats` are; re-sending `shutdown` is
    /// harmless but pointless).
    ///
    /// # Errors
    /// The last attempt's error, or [`ClientError::TimedOut`] once the
    /// total deadline expires.
    pub fn request_idempotent(&mut self, line: &str) -> Result<String, ClientError> {
        let deadline = self.config.total_deadline.map(|d| Instant::now() + d);
        let mut attempt = 0u32;
        loop {
            let err = match self.request(line) {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            attempt += 1;
            if attempt > self.config.retries {
                return Err(err);
            }
            let mut pause = self
                .config
                .backoff
                .saturating_mul(1u32 << (attempt - 1).min(16));
            let half = (pause / 2).as_nanos() as u64;
            if half > 0 {
                pause += Duration::from_nanos(self.next_rand() % half);
            }
            if let Some(d) = deadline {
                let now = Instant::now();
                if now >= d {
                    return Err(ClientError::TimedOut("total request deadline".to_string()));
                }
                pause = pause.min(d - now);
            }
            std::thread::sleep(pause);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(ClientError::TimedOut("total request deadline".to_string()));
            }
            // The failed connection may be wedged; replace it. A failed
            // reconnect leaves the dead socket in place, so the next
            // attempt fails fast and consumes the next retry. The fresh
            // connection renegotiates from the configured protocol.
            if let Ok((stream, reader)) = Client::open(&self.addr, &self.config) {
                self.stream = stream;
                self.reader = reader;
                self.mode = self.config.proto;
            }
        }
    }

    /// Sends a read-only request with a hedged second attempt: if
    /// [`ClientConfig::hedge`] is set and the first connection has not
    /// answered within the hedge delay, a second connection races it and
    /// the first response wins. Without a hedge delay this is
    /// [`Client::request_idempotent`].
    ///
    /// Both attempts run on *fresh* connections (this client's pipelined
    /// connection state is left untouched), so hedging is safe to mix
    /// with pipelined `request` calls.
    ///
    /// # Errors
    /// The last attempt's error once every racer has failed.
    pub fn request_hedged(&mut self, line: &str) -> Result<String, ClientError> {
        let Some(hedge_delay) = self.config.hedge else {
            return self.request_idempotent(line);
        };
        let (tx, rx) = mpsc::channel::<Result<String, ClientError>>();
        let racers = 2usize;
        for i in 0..racers {
            let tx = tx.clone();
            let addr = self.addr.clone();
            let config = self.config.clone();
            let line = line.to_string();
            let delay = if i == 0 { Duration::ZERO } else { hedge_delay };
            std::thread::spawn(move || {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let result = Client::with_config(&addr, config).and_then(|mut c| c.request(&line));
                tx.send(result).ok();
            });
        }
        drop(tx);
        let mut last = ClientError::Disconnected;
        for _ in 0..racers {
            match rx.recv() {
                Ok(Ok(response)) => return Ok(response),
                Ok(Err(e)) => last = e,
                Err(_) => break,
            }
        }
        Err(last)
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn read_request_line(stream: &TcpStream) -> String {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).ok();
        line
    }

    #[test]
    fn binary_proto_round_trips_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut header = [0u8; 5];
            s.read_exact(&mut header).unwrap();
            assert_eq!(header[0], FRAME_MAGIC);
            let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
            let mut payload = vec![0u8; len];
            s.read_exact(&mut payload).unwrap();
            assert_eq!(payload, b"{\"op\":\"stats\"}");
            let mut out = Vec::new();
            encode_frame(b"{\"ok\":true}", &mut out);
            s.write_all(&out).unwrap();
        });
        let config = ClientConfig::default().with_proto(Proto::Binary);
        let mut client = Client::with_config(&addr, config).unwrap();
        let response = client.request("{\"op\":\"stats\"}").unwrap();
        assert_eq!(response, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn auto_settles_on_binary_when_the_server_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Two framed requests on one connection: the newline-tailed
            // probe, then a plain frame once binary is settled.
            for tail in [1usize, 0] {
                let mut header = [0u8; 5];
                s.read_exact(&mut header).unwrap();
                assert_eq!(header[0], FRAME_MAGIC);
                let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
                let mut payload = vec![0u8; len + tail];
                s.read_exact(&mut payload).unwrap();
                let mut out = Vec::new();
                encode_frame(b"{\"ok\":true}", &mut out);
                s.write_all(&out).unwrap();
            }
        });
        let config = ClientConfig::default().with_proto(Proto::Auto);
        let mut client = Client::with_config(&addr, config).unwrap();
        assert_eq!(
            client.request("{\"op\":\"stats\"}").unwrap(),
            "{\"ok\":true}"
        );
        assert_eq!(client.mode, Proto::Binary);
        assert_eq!(
            client.request("{\"op\":\"stats\"}").unwrap(),
            "{\"ok\":true}"
        );
        server.join().unwrap();
    }

    #[test]
    fn auto_falls_back_to_line_json() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: a line-pinned server reads the garbled
            // probe as one line and answers a line-JSON error.
            let (mut s, _) = listener.accept().unwrap();
            read_request_line(&s);
            s.write_all(b"{\"ok\":false,\"error\":\"bad_request\"}\n")
                .unwrap();
            // Second connection: the client resends over line JSON.
            let (mut s, _) = listener.accept().unwrap();
            let line = read_request_line(&s);
            assert_eq!(line.trim_end(), "{\"op\":\"stats\"}");
            s.write_all(b"{\"ok\":true}\n").unwrap();
        });
        let config = ClientConfig::default().with_proto(Proto::Auto);
        let mut client = Client::with_config(&addr, config).unwrap();
        assert_eq!(
            client.request("{\"op\":\"stats\"}").unwrap(),
            "{\"ok\":true}"
        );
        assert_eq!(client.mode, Proto::Line);
        server.join().unwrap();
    }

    #[test]
    fn torn_line_response_is_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request_line(&s);
            // A torn write: half a response, no newline, then the door.
            s.write_all(b"{\"ok\":true,\"tuple_co").unwrap();
        });
        let mut client = Client::connect(&addr).unwrap();
        let err = client.request("{\"op\":\"stats\"}").unwrap_err();
        assert!(matches!(err, ClientError::Disconnected), "got {err:?}");
        server.join().unwrap();
    }

    #[test]
    fn io_errors_classify_to_typed_variants() {
        let timed = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert!(matches!(
            ClientError::from_io("read", timed),
            ClientError::TimedOut(_)
        ));
        let blocked = std::io::Error::new(std::io::ErrorKind::WouldBlock, "b");
        assert!(matches!(
            ClientError::from_io("read", blocked),
            ClientError::TimedOut(_)
        ));
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "e");
        assert!(matches!(
            ClientError::from_io("read", eof),
            ClientError::Disconnected
        ));
        let reset = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "r");
        assert!(matches!(
            ClientError::from_io("read", reset),
            ClientError::Io(_)
        ));
    }

    #[test]
    fn read_timeout_is_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept but never respond.
        let silent = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            read_request_line(&s);
            std::thread::sleep(Duration::from_millis(400));
        });
        let config = ClientConfig::default().with_read_timeout(Duration::from_millis(50));
        let mut client = Client::with_config(&addr, config).unwrap();
        let err = client.request("{\"op\":\"stats\"}").unwrap_err();
        assert!(matches!(err, ClientError::TimedOut(_)), "got {err:?}");
        silent.join().unwrap();
    }

    #[test]
    fn idempotent_retry_reconnects_after_disconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: slam the door. Second: answer.
            let (s, _) = listener.accept().unwrap();
            drop(s);
            let (mut s, _) = listener.accept().unwrap();
            read_request_line(&s);
            s.write_all(b"{\"ok\":true}\n").unwrap();
        });
        let config = ClientConfig::default()
            .with_retries(2, Duration::from_millis(5))
            .with_seed(7);
        let mut client = Client::with_config(&addr, config).unwrap();
        let response = client.request_idempotent("{\"op\":\"stats\"}").unwrap();
        assert_eq!(response, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn total_deadline_bounds_retries() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept-and-drop forever, in the background.
        std::thread::spawn(move || {
            while let Ok((s, _)) = listener.accept() {
                drop(s);
            }
        });
        let config = ClientConfig::default()
            .with_retries(u32::MAX, Duration::from_millis(20))
            .with_total_deadline(Duration::from_millis(150))
            .with_seed(3);
        let started = Instant::now();
        let mut client = Client::with_config(&addr, config).unwrap();
        let err = client.request_idempotent("{\"op\":\"stats\"}").unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline ignored"
        );
        match err {
            ClientError::TimedOut(_) | ClientError::Disconnected | ClientError::Io(_) => {}
        }
    }

    #[test]
    fn hedged_read_prefers_the_fast_lane() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut first = true;
            while let Ok((mut s, _)) = listener.accept() {
                let slow = first;
                first = false;
                std::thread::spawn(move || {
                    read_request_line(&s);
                    if slow {
                        std::thread::sleep(Duration::from_millis(300));
                        s.write_all(b"{\"ok\":true,\"lane\":\"slow\"}\n").ok();
                    } else {
                        s.write_all(b"{\"ok\":true,\"lane\":\"fast\"}\n").ok();
                    }
                });
            }
        });
        let config = ClientConfig::default().with_hedge(Duration::from_millis(30));
        let mut client = Client::with_config(&addr, config).unwrap();
        let response = client.request_hedged("{\"op\":\"stats\"}").unwrap();
        assert_eq!(response, "{\"ok\":true,\"lane\":\"fast\"}");
    }
}
