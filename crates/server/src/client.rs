//! A minimal blocking client for the line-JSON protocol.
//!
//! One TCP connection, one request line out, one response line back.
//! The CLI's `mwsj query` command and the service tests and bench drive
//! the server through this.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    /// I/O failures, or an unexpected EOF before a response arrived.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            self.stream.write_all(b"\n")?;
        }
        self.stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}
