//! A minimal recursive-descent JSON reader for the wire protocol.
//!
//! The workspace's offline `serde` is a no-op shim and the trace layer's
//! `validate_json` only validates, so the protocol parses its requests
//! with this small value-tree reader. Writing stays hand-rolled (see
//! [`mwsj_core::mapreduce::json_escape`]).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included; the protocol range fits in `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key-value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Deeper documents get a
/// typed error instead of exhausting the thread's stack — a network peer
/// must not choose our recursion depth.
pub const MAX_DEPTH: usize = 64;

/// Parses one complete JSON document.
///
/// # Errors
/// A message naming the byte offset of the first syntax error, or a
/// depth error for documents nested beyond [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(open @ (b'{' | b'[')) => {
                if self.depth >= MAX_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_DEPTH} at byte {}",
                        self.pos
                    ));
                }
                self.depth += 1;
                let out = if open == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                out
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char.
                            let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    out.push(self.bytes[self.pos]);
                    self.pos += 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(
            r#"{"op":"query","query":"R1 ov R2","data":{"R1":"a.csv","R2":"b.csv"},"count_only":true,"deadline_ms":1500,"priority":-2}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("query"));
        assert_eq!(
            v.get("data").unwrap().get("R2").unwrap().as_str(),
            Some("b.csv")
        );
        assert_eq!(v.get("count_only").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("deadline_ms").unwrap().as_f64(), Some(1500.0));
        assert_eq!(v.get("priority").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"tuples":[[1,2],[3,4]],"s":"a\"b\\c\ndA"}"#).unwrap();
        let rows = v.get("tuples").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_arr().unwrap()[0].as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,", "tru", "\"open", "{}x", "nan"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn roundtrips_escaped_output() {
        let nasty = "quote\" slash\\ nl\n tab\t";
        let doc = format!("{{\"k\":\"{}\"}}", mwsj_core::mapreduce::json_escape(nasty));
        assert_eq!(parse(&doc).unwrap().get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn nesting_is_bounded_not_stack_bounded() {
        // Exactly at the limit: fine.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One past the limit: a typed error, not a deeper recursion.
        let deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&deep).unwrap_err().contains("nesting deeper"));
        // Pathologically deep input from the network must not overflow
        // the stack (this is ~100k frames without the depth guard).
        let hostile = "[".repeat(100_000);
        assert!(parse(&hostile).is_err());
        let hostile_obj = "{\"a\":".repeat(100_000);
        assert!(parse(&hostile_obj).is_err());
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        /// A structurally valid single-line document built from parts the
        /// strategy controls, always spelled as an object (so every
        /// strict prefix is invalid — handy for the truncation property).
        fn doc(nums: &[i32], flag: bool, bytes: &[u8]) -> String {
            let arr = nums
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let s = String::from_utf8_lossy(bytes);
            format!(
                "{{\"a\":[{arr}],\"b\":{flag},\"s\":\"{}\",\"n\":null}}",
                mwsj_core::mapreduce::json_escape(&s)
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..64)) {
                // Any outcome is fine; reaching here at all is the property.
                let _ = parse(&String::from_utf8_lossy(&bytes));
            }

            #[test]
            fn valid_documents_roundtrip(
                nums in proptest::collection::vec(-1_000_000i32..1_000_000, 0..8),
                flag in proptest::bool::ANY,
                bytes in proptest::collection::vec(0u8..255, 0..24),
            ) {
                let text = doc(&nums, flag, &bytes);
                let v = parse(&text).expect("generated document must parse");
                let arr = v.get("a").unwrap().as_arr().unwrap();
                prop_assert_eq!(arr.len(), nums.len());
                for (got, want) in arr.iter().zip(&nums) {
                    prop_assert_eq!(got.as_f64(), Some(f64::from(*want)));
                }
                prop_assert_eq!(v.get("b").unwrap().as_bool(), Some(flag));
                let s = String::from_utf8_lossy(&bytes).to_string();
                prop_assert_eq!(v.get("s").unwrap().as_str(), Some(s.as_str()));
                prop_assert_eq!(v.get("n"), Some(&Json::Null));
            }

            #[test]
            fn truncation_gives_typed_errors_not_panics(
                nums in proptest::collection::vec(-1_000i32..1_000, 0..6),
                cut in 0usize..256,
            ) {
                let text = doc(&nums, true, b"tail");
                let cut = cut % text.len(); // strict prefix
                let prefix: String = text.chars().take(cut).collect();
                prop_assert!(parse(&prefix).is_err());
            }
        }
    }
}
