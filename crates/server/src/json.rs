//! A minimal recursive-descent JSON reader for the wire protocol.
//!
//! The workspace's offline `serde` is a no-op shim and the trace layer's
//! `validate_json` only validates, so the protocol parses its requests
//! with this small value-tree reader. Writing stays hand-rolled (see
//! [`mwsj_core::mapreduce::json_escape`]).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included; the protocol range fits in `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key-value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
///
/// # Errors
/// A message naming the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char.
                            let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    out.push(self.bytes[self.pos]);
                    self.pos += 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(
            r#"{"op":"query","query":"R1 ov R2","data":{"R1":"a.csv","R2":"b.csv"},"count_only":true,"deadline_ms":1500,"priority":-2}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("query"));
        assert_eq!(
            v.get("data").unwrap().get("R2").unwrap().as_str(),
            Some("b.csv")
        );
        assert_eq!(v.get("count_only").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("deadline_ms").unwrap().as_f64(), Some(1500.0));
        assert_eq!(v.get("priority").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"tuples":[[1,2],[3,4]],"s":"a\"b\\c\ndA"}"#).unwrap();
        let rows = v.get("tuples").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].as_arr().unwrap()[0].as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,", "tru", "\"open", "{}x", "nan"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn roundtrips_escaped_output() {
        let nasty = "quote\" slash\\ nl\n tab\t";
        let doc = format!("{{\"k\":\"{}\"}}", mwsj_core::mapreduce::json_escape(nasty));
        assert_eq!(parse(&doc).unwrap().get("k").unwrap().as_str(), Some(nasty));
    }
}
