//! A byte-budgeted LRU cache for join results.
//!
//! The key is the *canonical* query text plus the fingerprints of the
//! datasets bound to its canonical positions — so two clients spelling
//! the same join differently (`"B ov A"` vs `"A overlaps B"`, reordered
//! conjuncts, duplicated predicates) share one entry, while any change to
//! the underlying data (a different seed, one perturbed rectangle)
//! changes a [`DatasetFingerprint`](mwsj_core::mapreduce::DatasetFingerprint)
//! and misses cleanly.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Cache key: canonicalized query + per-position dataset fingerprints +
/// execution knobs that change the observable result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical query text ([`mwsj_query::Query::canonical`] rendering).
    pub query: String,
    /// Dataset fingerprints in canonical position order.
    pub fingerprints: Vec<u64>,
    /// Wire name of the algorithm (counters differ per algorithm).
    pub algorithm: String,
    /// Whether tuples were materialized.
    pub count_only: bool,
}

/// A cached join result, in canonical position order.
#[derive(Debug)]
pub struct CachedResult {
    /// Sorted result tuples, ids per *canonical* position.
    pub tuples: Vec<Vec<u32>>,
    /// Total tuples (meaningful in count-only mode too).
    pub tuple_count: u64,
    /// Pre-rendered per-job logical counters (JSON array text).
    pub counters: String,
    /// Wire name of the concrete algorithm that produced the result
    /// (never `"auto"`; reported in responses so cache hits state what
    /// originally ran).
    pub algorithm: String,
}

struct Entry {
    value: Arc<CachedResult>,
    bytes: usize,
    last_used: u64,
}

struct CacheState {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups that returned an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Bytes currently charged.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// The byte-budgeted LRU result cache.
pub struct ResultCache {
    budget: usize,
    state: Mutex<CacheState>,
}

impl ResultCache {
    /// Creates a cache with the given byte budget. A zero budget disables
    /// caching (every lookup misses, every insert is dropped).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn cost(key: &CacheKey, value: &CachedResult) -> usize {
        let key_bytes = key.query.len() + key.fingerprints.len() * 8 + key.algorithm.len();
        let tuple_bytes: usize = value.tuples.iter().map(|t| t.len() * 4 + 24).sum();
        key_bytes + tuple_bytes + value.counters.len() + value.algorithm.len() + 64
    }

    /// Looks up a result, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        let mut s = self.state.lock();
        s.tick += 1;
        let tick = s.tick;
        match s.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let v = Arc::clone(&e.value);
                s.hits += 1;
                Some(v)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting least-recently-used entries until the
    /// budget holds. Results larger than the whole budget are not cached.
    pub fn insert(&self, key: CacheKey, value: CachedResult) -> Arc<CachedResult> {
        let bytes = Self::cost(&key, &value);
        let value = Arc::new(value);
        if bytes > self.budget {
            return value;
        }
        let mut s = self.state.lock();
        s.tick += 1;
        let tick = s.tick;
        if let Some(old) = s.map.remove(&key) {
            s.bytes -= old.bytes;
        }
        while s.bytes + bytes > self.budget {
            let Some(lru) = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = s.map.remove(&lru).expect("lru key just found");
            s.bytes -= evicted.bytes;
            s.evictions += 1;
        }
        s.map.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        );
        s.bytes += bytes;
        value
    }

    /// Recomputes resident bytes from first principles (test oracle for
    /// the incremental accounting in `bytes`).
    #[cfg(test)]
    fn recomputed_bytes(&self) -> usize {
        let s = self.state.lock();
        s.map.iter().map(|(k, e)| Self::cost(k, &e.value)).sum()
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock();
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            bytes: s.bytes,
            entries: s.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str, fp: u64) -> CacheKey {
        CacheKey {
            query: q.to_string(),
            fingerprints: vec![fp, fp ^ 1],
            algorithm: "crep".to_string(),
            count_only: false,
        }
    }

    fn result(n: usize) -> CachedResult {
        CachedResult {
            tuples: (0..n).map(|i| vec![i as u32, i as u32]).collect(),
            tuple_count: n as u64,
            counters: "[]".to_string(),
            algorithm: "crep".to_string(),
        }
    }

    #[test]
    fn hit_after_insert_and_fingerprint_miss() {
        let c = ResultCache::new(1 << 20);
        c.insert(key("q", 7), result(3));
        assert!(c.get(&key("q", 7)).is_some());
        assert!(c.get(&key("q", 8)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        let one = ResultCache::cost(&key("a", 1), &result(10));
        let c = ResultCache::new(one * 2 + 1);
        c.insert(key("a", 1), result(10));
        c.insert(key("b", 2), result(10));
        assert!(c.get(&key("a", 1)).is_some()); // refresh `a`; `b` is now LRU
        c.insert(key("c", 3), result(10));
        assert!(c.get(&key("a", 1)).is_some());
        assert!(c.get(&key("b", 2)).is_none());
        assert!(c.get(&key("c", 3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().bytes <= one * 2 + 1);
    }

    #[test]
    fn oversized_and_zero_budget_results_bypass() {
        let zero = ResultCache::new(0);
        zero.insert(key("q", 1), result(1));
        assert!(zero.get(&key("q", 1)).is_none());
        let tiny = ResultCache::new(8);
        tiny.insert(key("q", 1), result(1000));
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let c = ResultCache::new(1 << 20);
        c.insert(key("q", 1), result(5));
        let before = c.stats().bytes;
        c.insert(key("q", 1), result(5));
        assert_eq!(c.stats().bytes, before);
        assert_eq!(c.stats().entries, 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// After every operation in an arbitrary get/insert sequence,
            /// the incrementally maintained byte counter equals the sum
            /// of the resident entries' costs and never exceeds the
            /// budget — no leaks on eviction, no double charges on
            /// re-insert, no phantom bytes from bypassed inserts.
            #[test]
            fn bytes_always_equal_resident_entry_costs(
                budget in 0usize..4096,
                ops in proptest::collection::vec(
                    (proptest::bool::ANY, 0u8..6, 0u64..4, 0usize..24),
                    0..64,
                ),
            ) {
                let c = ResultCache::new(budget);
                for (is_insert, q, fp, n) in ops {
                    let k = key(&format!("q{q}"), fp);
                    if is_insert {
                        c.insert(k, result(n));
                    } else {
                        c.get(&k);
                    }
                    let s = c.stats();
                    prop_assert_eq!(s.bytes, c.recomputed_bytes());
                    prop_assert!(s.bytes <= budget);
                }
            }
        }
    }
}
