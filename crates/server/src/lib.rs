//! A concurrent query service for multi-way spatial joins.
//!
//! `mwsj-server` turns the library's [`Cluster`] into a long-running
//! network service: a thread-per-connection TCP server speaking a
//! line-delimited JSON protocol (see [`protocol`]), executing join
//! queries concurrently on one shared engine whose fair-share slot
//! scheduler arbitrates between them.
//!
//! The service adds three layers the paper's batch experiments do not
//! need but any deployment does:
//!
//! * **Admission control** — at most `max_inflight` joins execute at
//!   once with a bounded wait queue behind them; beyond that, requests
//!   are shed with a typed `overloaded` error instead of collapsing the
//!   engine under unbounded concurrency.
//! * **A result cache** — keyed by the *canonical* query form
//!   ([`mwsj_query::Query::canonical`]) and the
//!   [`DatasetFingerprint`](mwsj_core::mapreduce::DatasetFingerprint)s
//!   of the bound datasets, so differently-spelled equivalent queries
//!   share entries and any data change misses cleanly (see [`cache`]).
//! * **Cancellation** — a client that disconnects mid-query has its run
//!   cancelled at the next task boundary, releasing its slots to the
//!   other tenants; deadlines propagate into the engine the same way.
//!
//! ```text
//! $ mwsj serve --addr 127.0.0.1:7878 --slots 8 --cache-bytes 16777216
//! $ mwsj query --connect 127.0.0.1:7878 --query "R1 ov R2" \
//!       --data R1=synthetic:n=1000,seed=1 --data R2=synthetic:n=1000,seed=2
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod netfault;
pub mod protocol;
pub mod signal;
pub mod source;

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

use mwsj_core::mapreduce::{
    json_escape, CancelToken, EngineConfig, FaultPlan, JobErrorKind, JobMetrics, NetFaultPlan,
};
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinError, JoinOutput, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;

use cache::{CacheKey, CachedResult, ResultCache};
use netfault::FaultyStream;
use protocol::{ErrorCode, ExplainRequest, QueryRequest, Request};

pub use client::{Client, ClientConfig, ClientError};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Engine worker slots shared by all concurrent queries (0 = auto).
    pub slots: usize,
    /// Result-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Joins executing concurrently before requests queue.
    pub max_inflight: usize,
    /// Requests waiting behind the in-flight limit before shedding.
    pub max_queue: usize,
    /// Reducer grid side (the paper's 8×8 default).
    pub grid: u32,
    /// The service space is `[0, extent]²`; every dataset must fit.
    pub extent: f64,
    /// Deterministic network faults injected into every connection
    /// (`None` = a clean network).
    pub net_fault: Option<NetFaultPlan>,
    /// Engine-level fault plan (task failures, stragglers, spill
    /// corruption) shared by every query's jobs.
    pub engine_faults: Option<FaultPlan>,
    /// Connections idle (or stuck mid-request-line) longer than this are
    /// evicted — the slow-loris defence.
    pub idle_timeout: Duration,
    /// Request lines longer than this are rejected and the connection
    /// closed — bounds per-connection memory.
    pub max_request_line: usize,
    /// On shutdown, in-flight queries get this long to finish before
    /// their runs are cancelled.
    pub drain_deadline: Duration,
    /// After admission sheds a request, the service stays in *brownout*
    /// for this long: cache hits are still served, cache misses are shed
    /// immediately instead of queueing — bounding tail latency while
    /// overloaded.
    pub brownout_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            slots: 0,
            cache_bytes: 16 << 20,
            max_inflight: 4,
            max_queue: 16,
            grid: 8,
            extent: 100_000.0,
            net_fault: None,
            engine_faults: None,
            idle_timeout: Duration::from_secs(30),
            max_request_line: 1 << 20,
            drain_deadline: Duration::from_secs(5),
            brownout_window: Duration::from_secs(2),
        }
    }
}

impl ServerConfig {
    /// Sets the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the shared engine slot count.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the result-cache byte budget.
    #[must_use]
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the admission limits.
    #[must_use]
    pub fn with_admission(mut self, max_inflight: usize, max_queue: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self.max_queue = max_queue;
        self
    }

    /// Injects deterministic network faults into every connection.
    #[must_use]
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        plan.validate();
        self.net_fault = Some(plan);
        self
    }

    /// Injects engine-level faults (task failures, stragglers, spill
    /// corruption) into every query's jobs.
    #[must_use]
    pub fn with_engine_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate();
        self.engine_faults = Some(plan);
        self
    }

    /// Sets the idle-connection eviction timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the shutdown drain deadline.
    #[must_use]
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }

    /// Sets the brownout window entered after a shed.
    #[must_use]
    pub fn with_brownout_window(mut self, window: Duration) -> Self {
        self.brownout_window = window;
        self
    }

    /// Bounds the accepted request-line length.
    #[must_use]
    pub fn with_max_request_line(mut self, bytes: usize) -> Self {
        self.max_request_line = bytes.max(64);
        self
    }
}

/// Monotonic service counters (all successful/failed request outcomes).
#[derive(Default)]
struct ServiceStats {
    /// Query requests answered with a result.
    queries: AtomicU64,
    /// Of those, answered from the result cache.
    served_from_cache: AtomicU64,
    /// Runs cancelled (client disconnect, explicit cancel or deadline).
    cancelled: AtomicU64,
    /// Requests shed by admission control.
    shed: AtomicU64,
    /// Of those, shed fast because the service was in brownout.
    brownout_sheds: AtomicU64,
    /// Connections evicted by the idle timeout (slow-loris defence) or
    /// the request-line length bound.
    evicted: AtomicU64,
    /// Other failed requests (bad requests, failed joins).
    errors: AtomicU64,
}

/// Counting semaphore bounding concurrent joins, with a bounded queue.
struct Admission {
    max_inflight: usize,
    max_queue: usize,
    /// `(active, waiting)`.
    state: StdMutex<(usize, usize)>,
    cv: Condvar,
}

impl Admission {
    fn new(max_inflight: usize, max_queue: usize) -> Self {
        Self {
            max_inflight: max_inflight.max(1),
            max_queue,
            state: StdMutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a join slot is free, or sheds when the queue is full.
    fn admit(&self) -> Result<AdmitGuard<'_>, String> {
        let mut s = self.state.lock().expect("admission lock");
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(AdmitGuard(self));
        }
        if s.1 >= self.max_queue {
            return Err(format!(
                "service at capacity: {} joins running, {} queued",
                s.0, s.1
            ));
        }
        s.1 += 1;
        while s.0 >= self.max_inflight {
            s = self.cv.wait(s).expect("admission lock");
        }
        s.1 -= 1;
        s.0 += 1;
        Ok(AdmitGuard(self))
    }
}

struct AdmitGuard<'a>(&'a Admission);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.0.state.lock().expect("admission lock");
        s.0 -= 1;
        self.0.cv.notify_one();
    }
}

/// A loaded dataset paired with its DFS fingerprint.
type LoadedDataset = (Arc<Vec<Rect>>, u64);

/// A mounted stored dataset paired with how long its open took — charged
/// to the first query that mounts it (see [`mwsj_core::StoredRun`]).
type MountedStore = (Arc<mwsj_core::store::StoredDataset>, Duration);

struct Inner {
    config: ServerConfig,
    cluster: Cluster,
    cache: ResultCache,
    /// Loaded datasets by source spec, with their DFS fingerprints.
    datasets: parking_lot::Mutex<HashMap<String, LoadedDataset>>,
    /// Mounted `store:` datasets by path. Mounting holds the cell index
    /// and record sections, not a materialized `Vec<Rect>` — stored
    /// queries join straight off these.
    stores: parking_lot::Mutex<HashMap<String, MountedStore>>,
    admission: Admission,
    stats: ServiceStats,
    stop: AtomicBool,
    /// Set once the drain deadline has passed: in-flight runs are
    /// cancelled instead of being waited for.
    cancel_inflight: AtomicBool,
    /// Brownout lease: while `Instant::now()` is before this, cache
    /// misses are shed without queueing.
    brownout_until: parking_lot::Mutex<Option<Instant>>,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn brownout_active(&self) -> bool {
        self.brownout_until
            .lock()
            .is_some_and(|until| Instant::now() < until)
    }

    /// Extends the brownout lease after an overload event.
    fn note_overload(&self) {
        *self.brownout_until.lock() = Some(Instant::now() + self.config.brownout_window);
    }

    /// Loads (or reuses) a dataset, fingerprinting it through the DFS.
    fn dataset(&self, spec: &str) -> Result<LoadedDataset, String> {
        let mut map = self.datasets.lock();
        if let Some(entry) = map.get(spec) {
            return Ok(entry.clone());
        }
        let rects = source::load_source(spec)?;
        let extent = self.config.extent;
        if let Some(bad) = rects.iter().find(|r| {
            !(r.min_x() >= 0.0 && r.max_x() <= extent && r.min_y() >= 0.0 && r.max_y() <= extent)
        }) {
            return Err(format!(
                "dataset `{spec}` does not fit the service space [0, {extent}]^2 \
                 (rectangle spans x [{}, {}], y [{}, {}])",
                bad.min_x(),
                bad.max_x(),
                bad.min_y(),
                bad.max_y()
            ));
        }
        let records: Vec<(f64, f64, f64, f64)> =
            rects.iter().map(|r| (r.x(), r.y(), r.l(), r.b())).collect();
        let dfs_name = format!("ds/{spec}");
        let dfs = &self.cluster.engine().dfs;
        dfs.write(&dfs_name, records);
        let fp = dfs.fingerprint(&dfs_name).map_err(|e| e.to_string())?.0;
        let entry = (Arc::new(rects), fp);
        map.insert(spec.to_string(), entry.clone());
        Ok(entry)
    }

    /// Mounts (or reuses) a stored dataset for a `store:PATH` spec. The
    /// store's ingest fingerprint follows the same recipe as the DFS
    /// fingerprint in [`Inner::dataset`], so a stored binding and its
    /// materialized twin share cache entries.
    fn mounted_store(&self, path: &str) -> Result<MountedStore, String> {
        let mut map = self.stores.lock();
        if let Some(entry) = map.get(path) {
            return Ok(entry.clone());
        }
        let t0 = Instant::now();
        let stored = mwsj_core::store::StoredDataset::open(std::path::Path::new(path))
            .map_err(|e| format!("opening store `{path}`: {e}"))?;
        let entry = (Arc::new(stored), t0.elapsed());
        map.insert(path.to_string(), entry.clone());
        Ok(entry)
    }
}

/// The TCP service. [`Server::bind`] it, then [`Server::run`] the accept
/// loop (typically on a dedicated thread); `run` returns after a
/// `shutdown` op or a termination signal, once in-flight requests have
/// drained.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listen socket and builds the shared cluster.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let space = (0.0, config.extent);
        let mut engine = EngineConfig::default().with_slots(config.slots);
        engine.fault_plan = config.engine_faults.clone();
        let cluster =
            Cluster::new(ClusterConfig::for_space(space, space, config.grid).with_engine(engine));
        let inner = Arc::new(Inner {
            cache: ResultCache::new(config.cache_bytes),
            datasets: parking_lot::Mutex::new(HashMap::new()),
            stores: parking_lot::Mutex::new(HashMap::new()),
            admission: Admission::new(config.max_inflight, config.max_queue),
            stats: ServiceStats::default(),
            stop: AtomicBool::new(false),
            cancel_inflight: AtomicBool::new(false),
            brownout_until: parking_lot::Mutex::new(None),
            cluster,
            config,
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (useful with a `:0` config).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until shutdown is requested (a `shutdown`
    /// protocol op, or `SIGTERM`/`SIGINT` once
    /// [`signal::install_handlers`] is in place), then *drains*: no new
    /// connections are accepted, in-flight requests get up to
    /// [`ServerConfig::drain_deadline`] to finish, and whatever is still
    /// running afterwards is cancelled through the engine's cancellation
    /// tokens before the connection threads are joined.
    ///
    /// # Errors
    /// Propagates accept-loop I/O failures (not per-connection ones).
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut conn_seq = 0u64;
        while !self.inner.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = Arc::clone(&self.inner);
                    let conn = conn_seq;
                    conn_seq += 1;
                    connections.push(thread::spawn(move || {
                        handle_connection(&inner, &stream, conn)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|h| !h.is_finished());
        }
        // Ordered drain: accepting has stopped; give in-flight requests
        // until the drain deadline to answer...
        let deadline = Instant::now() + self.inner.config.drain_deadline;
        while connections.iter().any(|h| !h.is_finished()) && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        // ...then cancel the stragglers (their clients get a typed
        // `cancelled` response) and join every connection thread.
        self.inner.cancel_inflight.store(true, Ordering::SeqCst);
        for h in connections {
            h.join().ok();
        }
        Ok(())
    }
}

/// One connection: read request lines, answer each on its own line.
///
/// The socket is wrapped in a [`FaultyStream`] pair (transparent without
/// a [`NetFaultPlan`]); two defences guard the read side: lines longer
/// than [`ServerConfig::max_request_line`] are rejected and the
/// connection closed, and a connection that makes no progress for
/// [`ServerConfig::idle_timeout`] — idle, or trickling a request byte by
/// byte — is evicted.
fn handle_connection(inner: &Arc<Inner>, stream: &TcpStream, conn: u64) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let Ok((read_half, mut write_half)) =
        FaultyStream::pair(stream, inner.config.net_fault.clone(), conn)
    else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut line = String::new();
    let mut last_progress = Instant::now();
    let evict_oversized = |inner: &Arc<Inner>, write_half: &mut FaultyStream| {
        inner.stats.evicted.fetch_add(1, Ordering::Relaxed);
        let resp = protocol::error_response(
            ErrorCode::BadRequest,
            "request line exceeds the configured maximum length",
        );
        write_half.write_all(resp.as_bytes()).ok();
        write_half.write_all(b"\n").ok();
        write_half.flush().ok();
    };
    loop {
        if inner.stopping() {
            return;
        }
        use std::io::BufRead as _;
        let before = line.len();
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF; a final unterminated line still gets an answer.
                if !line.trim().is_empty() {
                    serve_line(inner, stream, &mut write_half, &line);
                }
                return;
            }
            Ok(_) => {
                if line.len() > inner.config.max_request_line {
                    evict_oversized(inner, &mut write_half);
                    return;
                }
                if !serve_line(inner, stream, &mut write_half, &line) {
                    return;
                }
                line.clear();
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                // A partial line may have been buffered before the timeout.
                if line.len() > inner.config.max_request_line {
                    evict_oversized(inner, &mut write_half);
                    return;
                }
                if line.len() > before {
                    last_progress = Instant::now();
                } else if last_progress.elapsed() > inner.config.idle_timeout {
                    inner.stats.evicted.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one request line; `false` ends the connection. Responses go
/// through the fault-wrapped write half.
fn serve_line(inner: &Arc<Inner>, stream: &TcpStream, w: &mut FaultyStream, line: &str) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    let response = match protocol::parse_request(line) {
        Err(msg) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            Some(protocol::error_response(ErrorCode::BadRequest, &msg))
        }
        Ok(Request::Stats) => Some(stats_response(inner)),
        Ok(Request::Shutdown) => {
            inner.stop.store(true, Ordering::SeqCst);
            Some("{\"ok\":true,\"stopping\":true}".to_string())
        }
        Ok(Request::Query(q)) => handle_query(inner, stream, q),
        Ok(Request::Explain(e)) => Some(handle_explain(inner, &e)),
    };
    match response {
        // No response means the client is gone.
        None => false,
        Some(r) => {
            w.write_all(r.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok()
        }
    }
}

/// Whether the peer has closed the connection (poll, non-destructive).
fn peer_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,                                                 // orderly EOF
        Ok(_) => false,                                                // pipelined data
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false, // idle but open
        Err(_) => true,                                                // reset
    };
    stream.set_nonblocking(false).ok();
    gone
}

/// A parsed and bound query: the canonical form, the datasets bound to
/// its canonical relation positions, their fingerprints, and the
/// requester-order permutation.
struct BoundQuery {
    canonical: Query,
    /// In-memory relations; empty (never read) when `stores` is bound.
    datasets: Vec<Arc<Vec<Rect>>>,
    /// Mounted stores in canonical relation order, plus the total open
    /// wall charged to this query — bound when *every* spec is a
    /// `store:PATH` whose grid matches the service grid. Such queries
    /// run shuffle-free off the stores without materializing anything.
    stores: Option<(Vec<Arc<mwsj_core::store::StoredDataset>>, Duration)>,
    fingerprints: Vec<u64>,
    combined_fingerprint: u64,
    /// Requester position i reads canonical position perm[i].
    perm: Vec<usize>,
}

/// Parses a query and binds a dataset to every canonical relation
/// position — shared by the `query` and `explain` operations.
fn bind_query(
    inner: &Arc<Inner>,
    query_text: &str,
    data: &[(String, String)],
) -> Result<BoundQuery, String> {
    let query = Query::parse(query_text).map_err(|e| format!("bad query: {e}"))?;
    let canonical = query.canonical();
    let requested_names: Vec<&str> = query.relations().map(|r| query.name(r)).collect();
    let canonical_names: Vec<String> = canonical
        .relations()
        .map(|r| canonical.name(r).to_string())
        .collect();
    for (name, _) in data {
        if !canonical_names.contains(name) {
            return Err(format!(
                "data binding `{name}` does not appear in the query"
            ));
        }
    }
    let mut specs: Vec<&str> = Vec::with_capacity(canonical_names.len());
    for name in &canonical_names {
        let (_, spec) = data
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("no data binding for relation `{name}`"))?;
        specs.push(spec);
    }

    // The shuffle-free path: every binding is a stored dataset that is
    // co-partitioned with the service grid. Mount them all; fall back to
    // materializing if any store was ingested on a different grid.
    let mut datasets: Vec<Arc<Vec<Rect>>> = Vec::new();
    let mut fingerprints: Vec<u64> = Vec::with_capacity(canonical_names.len());
    let mut stores = None;
    if specs.iter().all(|s| s.starts_with("store:")) {
        let mut mounted = Vec::with_capacity(specs.len());
        let mut open_wall = Duration::ZERO;
        for spec in &specs {
            let path = spec.strip_prefix("store:").expect("checked above");
            let (store, opened_in) = inner.mounted_store(path)?;
            open_wall += opened_in;
            mounted.push(store);
        }
        if mounted.iter().all(|s| s.grid() == inner.cluster.grid()) {
            fingerprints.extend(mounted.iter().map(|s| s.fingerprint()));
            stores = Some((mounted, open_wall));
        }
    }
    if stores.is_none() {
        for spec in &specs {
            let (rects, fp) = inner.dataset(spec)?;
            datasets.push(rects);
            fingerprints.push(fp);
        }
    }
    let combined_fingerprint = {
        let mut h = mwsj_core::mapreduce::Fnv64::new();
        h.write_u64(fingerprints.len() as u64);
        for fp in &fingerprints {
            h.write_u64(*fp);
        }
        h.finish()
    };
    let perm: Vec<usize> = requested_names
        .iter()
        .map(|n| {
            canonical_names
                .iter()
                .position(|c| c == n)
                .expect("canonicalization preserves relation names")
        })
        .collect();
    Ok(BoundQuery {
        canonical,
        datasets,
        stores,
        fingerprints,
        combined_fingerprint,
        perm,
    })
}

/// Answers an `explain` request: binds the datasets and returns the
/// costed plan without executing anything.
fn handle_explain(inner: &Arc<Inner>, e: &ExplainRequest) -> String {
    match bind_query(inner, &e.query, &e.data) {
        Ok(bound) => {
            let plan = if let Some((stores, _)) = &bound.stores {
                let refs: Vec<&mwsj_core::store::StoredDataset> =
                    stores.iter().map(Arc::as_ref).collect();
                inner.cluster.plan_stored(&bound.canonical, &refs)
            } else {
                let refs: Vec<&[Rect]> = bound.datasets.iter().map(|d| d.as_slice()).collect();
                inner.cluster.plan(&bound.canonical, &refs)
            };
            format!(
                "{{\"ok\":true,\"plan\":{},\"fingerprint\":\"{:016x}\"}}",
                plan.to_json(),
                bound.combined_fingerprint
            )
        }
        Err(msg) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            protocol::error_response(ErrorCode::BadRequest, &msg)
        }
    }
}

/// Executes a query request end to end. `None` means the client
/// disconnected and no response should be written.
fn handle_query(inner: &Arc<Inner>, stream: &TcpStream, q: QueryRequest) -> Option<String> {
    let started = Instant::now();
    let fail = |code: ErrorCode, msg: &str| {
        inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        Some(protocol::error_response(code, msg))
    };

    let BoundQuery {
        canonical,
        datasets,
        stores,
        fingerprints,
        combined_fingerprint,
        perm,
    } = match bind_query(inner, &q.query, &q.data) {
        Ok(bound) => bound,
        Err(msg) => return fail(ErrorCode::BadRequest, &msg),
    };

    // Resolve `auto` to the optimizer's concrete choice *before* forming
    // the cache key: the key must never contain `"auto"`, so an auto
    // query and its manually-pinned twin share one cache entry. The plan
    // is deterministic, so resolving here and pinning the worker's run
    // keeps the key and the execution consistent.
    let algorithm = if q.algorithm == Algorithm::Auto {
        if let Some((stores, _)) = &stores {
            let refs: Vec<&mwsj_core::store::StoredDataset> =
                stores.iter().map(Arc::as_ref).collect();
            inner.cluster.plan_stored(&canonical, &refs).algorithm
        } else {
            let refs: Vec<&[Rect]> = datasets.iter().map(|d| d.as_slice()).collect();
            inner.cluster.plan(&canonical, &refs).algorithm
        }
    } else {
        q.algorithm
    };
    if algorithm == Algorithm::MapSide && stores.is_none() {
        return fail(
            ErrorCode::BadRequest,
            "the map-side join needs every binding to be a `store:PATH` dataset \
             co-partitioned with the service grid",
        );
    }

    let key = CacheKey {
        query: canonical.to_string(),
        fingerprints,
        algorithm: algorithm.to_string(),
        count_only: q.count_only,
    };
    if let Some(hit) = inner.cache.get(&key) {
        inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .served_from_cache
            .fetch_add(1, Ordering::Relaxed);
        return Some(render_query_response(
            true,
            &hit,
            &perm,
            combined_fingerprint,
            started.elapsed(),
        ));
    }

    // Brownout: while the overload lease is live, misses are shed
    // immediately rather than queueing behind a saturated engine (the
    // cache-hit path above still serves).
    if inner.brownout_active() {
        inner.stats.shed.fetch_add(1, Ordering::Relaxed);
        inner.stats.brownout_sheds.fetch_add(1, Ordering::Relaxed);
        inner.note_overload();
        return Some(protocol::error_response(
            ErrorCode::Overloaded,
            "service in brownout: cache misses are shed while overloaded",
        ));
    }

    let _slot = match inner.admission.admit() {
        Ok(guard) => guard,
        Err(msg) => {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            inner.note_overload();
            return Some(protocol::error_response(ErrorCode::Overloaded, &msg));
        }
    };

    let token = CancelToken::new();
    let worker = {
        let inner = Arc::clone(inner);
        let token = token.clone();
        let canonical = canonical.clone();
        let datasets = datasets.clone();
        let q = q.clone();
        thread::spawn(move || -> Result<JoinOutput, JoinError> {
            if let Some((stores, open_wall)) = &stores {
                let refs: Vec<&mwsj_core::store::StoredDataset> =
                    stores.iter().map(Arc::as_ref).collect();
                let mut run = mwsj_core::StoredRun::new(&canonical, &refs)
                    .algorithm(algorithm)
                    .count_only(q.count_only)
                    .cancel(token)
                    .priority(q.priority)
                    .share(q.share)
                    .open_wall(*open_wall);
                if let Some(ms) = q.deadline_ms {
                    run = run.deadline(Duration::from_millis(ms));
                }
                return inner.cluster.submit_stored(&run);
            }
            let refs: Vec<&[Rect]> = datasets.iter().map(|d| d.as_slice()).collect();
            let mut run = JoinRun::new(&canonical, &refs)
                .algorithm(algorithm)
                .count_only(q.count_only)
                .cancel(token)
                .priority(q.priority)
                .share(q.share)
                .input_fingerprint(combined_fingerprint);
            if let Some(ms) = q.deadline_ms {
                run = run.deadline(Duration::from_millis(ms));
            }
            inner.cluster.submit(&run)
        })
    };

    // Babysit the run: a disconnected client's query is cancelled so its
    // slots go back to the other tenants, and a drain deadline that
    // expires mid-run cancels it so the client gets a typed `cancelled`
    // response instead of a hung connection.
    while !worker.is_finished() {
        if inner.cancel_inflight.load(Ordering::SeqCst) {
            token.cancel();
        }
        if peer_disconnected(stream) {
            token.cancel();
            worker.join().ok();
            inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        thread::sleep(Duration::from_millis(2));
    }

    match worker.join() {
        Ok(Ok(output)) => {
            let value = CachedResult {
                tuples: output.tuples,
                tuple_count: output.tuple_count,
                counters: counters_json(&output.report.jobs),
                algorithm: output.algorithm.to_string(),
            };
            let cached = inner.cache.insert(key, value);
            inner.stats.queries.fetch_add(1, Ordering::Relaxed);
            Some(render_query_response(
                false,
                &cached,
                &perm,
                combined_fingerprint,
                started.elapsed(),
            ))
        }
        Ok(Err(JoinError::Job(e))) => {
            if let JobErrorKind::Cancelled { deadline_exceeded } = e.kind {
                inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                let code = if deadline_exceeded {
                    ErrorCode::DeadlineExceeded
                } else {
                    ErrorCode::Cancelled
                };
                Some(protocol::error_response(code, &e.to_string()))
            } else {
                fail(ErrorCode::JoinFailed, &e.to_string())
            }
        }
        Ok(Err(e)) => fail(ErrorCode::JoinFailed, &e.to_string()),
        Err(_) => fail(
            ErrorCode::JoinFailed,
            "internal error: join worker panicked",
        ),
    }
}

/// Renders an `ok` query response, permuting the canonical-order tuples
/// back to the requester's relation order.
fn render_query_response(
    cached: bool,
    result: &CachedResult,
    perm: &[usize],
    fingerprint: u64,
    wall: Duration,
) -> String {
    let mut tuples: Vec<Vec<u32>> = result
        .tuples
        .iter()
        .map(|t| perm.iter().map(|&j| t[j]).collect())
        .collect();
    tuples.sort_unstable();
    format!(
        "{{\"ok\":true,\"cached\":{cached},\"algorithm\":\"{}\",\"tuple_count\":{},\"tuples\":{},\"counters\":{},\"wall_ms\":{:.3},\"fingerprint\":\"{fingerprint:016x}\"}}",
        result.algorithm,
        result.tuple_count,
        protocol::tuples_json(&tuples),
        result.counters,
        wall.as_secs_f64() * 1e3,
    )
}

/// The logical (concurrency-invariant) per-job counters of a run.
fn counters_json(jobs: &[JobMetrics]) -> String {
    let mut out = String::from("[");
    for (i, j) in jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"job\":\"{}\",\"map_input_records\":{},\"map_output_records\":{},\"shuffle_bytes\":{},\"reduce_input_groups\":{},\"reduce_input_records\":{},\"reduce_output_records\":{},\"spill_runs\":{},\"retries\":{},\"corrupt_runs\":{},\"input_fingerprint\":\"{:016x}\"}}",
            json_escape(&j.job_name),
            j.map_input_records,
            j.map_output_records,
            j.shuffle_bytes,
            j.reduce_input_groups,
            j.reduce_input_records,
            j.reduce_output_records,
            j.spill_runs,
            j.retries,
            j.corrupt_runs,
            j.input_fingerprint,
        ));
    }
    out.push(']');
    out
}

/// Renders the `stats` response.
fn stats_response(inner: &Inner) -> String {
    let c = inner.cache.stats();
    let sched = inner.cluster.engine().scheduler();
    format!(
        "{{\"ok\":true,\"queries\":{},\"served_from_cache\":{},\"cancelled\":{},\"shed\":{},\"brownout_sheds\":{},\"evicted\":{},\"errors\":{},\"brownout\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bytes\":{},\"entries\":{}}},\"slots\":{},\"slots_available\":{}}}",
        inner.stats.queries.load(Ordering::Relaxed),
        inner.stats.served_from_cache.load(Ordering::Relaxed),
        inner.stats.cancelled.load(Ordering::Relaxed),
        inner.stats.shed.load(Ordering::Relaxed),
        inner.stats.brownout_sheds.load(Ordering::Relaxed),
        inner.stats.evicted.load(Ordering::Relaxed),
        inner.stats.errors.load(Ordering::Relaxed),
        inner.brownout_active(),
        c.hits,
        c.misses,
        c.evictions,
        c.bytes,
        c.entries,
        sched.slots(),
        sched.available(),
    )
}
