//! A concurrent query service for multi-way spatial joins.
//!
//! `mwsj-server` turns the library's [`Cluster`] into a long-running
//! network service: a single-threaded readiness event loop (the
//! `event` module, built on [`mwsj_net`]'s epoll-backed poller) holds every
//! connection, speaking either the line-delimited JSON protocol (see
//! [`protocol`]) or a length-prefixed binary framing negotiated by the
//! first byte of each connection — with full request pipelining in both.
//! Queries execute on worker threads against one shared engine whose
//! fair-share slot scheduler arbitrates between them.
//!
//! The service adds layers the paper's batch experiments do not need
//! but any deployment does:
//!
//! * **Admission control** — at most `max_inflight` joins execute at
//!   once with a bounded wait queue behind them; beyond that, requests
//!   are shed with a typed `overloaded` error instead of collapsing the
//!   engine under unbounded concurrency.
//! * **A result cache** — keyed by the *canonical* query form
//!   ([`mwsj_query::Query::canonical`]) and the
//!   [`DatasetFingerprint`](mwsj_core::mapreduce::DatasetFingerprint)s
//!   of the bound datasets, so differently-spelled equivalent queries
//!   share entries and any data change misses cleanly (see [`cache`]).
//! * **Cancellation** — a client that disconnects mid-query has its run
//!   cancelled at the next task boundary, releasing its slots to the
//!   other tenants; deadlines propagate into the engine the same way.
//! * **Sharded serving** — with [`ServerConfig::shards`] > 1, stored
//!   map-side queries scatter across N engine shards, each owning a
//!   disjoint seed-cell range of the dataset, and the gathered result
//!   is byte-identical to a single-node run (see
//!   [`mwsj_core::shards`]).
//!
//! ```text
//! $ mwsj serve --addr 127.0.0.1:7878 --slots 8 --cache-bytes 16777216
//! $ mwsj query --connect 127.0.0.1:7878 --query "R1 ov R2" \
//!       --data R1=synthetic:n=1000,seed=1 --data R2=synthetic:n=1000,seed=2
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
mod event;
pub mod json;
pub mod protocol;
pub mod signal;
pub mod source;

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use mwsj_core::mapreduce::{
    json_escape, CancelToken, EngineConfig, FaultPlan, JobErrorKind, JobMetrics, NetFaultPlan,
};
use mwsj_core::{Algorithm, Cluster, ClusterConfig, JoinError, JoinOutput, JoinRun};
use mwsj_geom::Rect;
use mwsj_query::Query;

use cache::{CacheKey, CachedResult, ResultCache};
use protocol::{ErrorCode, ExplainRequest, QueryRequest, Request};

pub use client::{Client, ClientConfig, ClientError, Proto};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Engine worker slots shared by all concurrent queries (0 = auto).
    pub slots: usize,
    /// Result-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Joins executing concurrently before requests queue.
    pub max_inflight: usize,
    /// Requests waiting behind the in-flight limit before shedding.
    pub max_queue: usize,
    /// Reducer grid side (the paper's 8×8 default).
    pub grid: u32,
    /// The service space is `[0, extent]²`; every dataset must fit.
    pub extent: f64,
    /// Deterministic network faults injected into every connection
    /// (`None` = a clean network).
    pub net_fault: Option<NetFaultPlan>,
    /// Engine-level fault plan (task failures, stragglers, spill
    /// corruption) shared by every query's jobs.
    pub engine_faults: Option<FaultPlan>,
    /// Connections idle (or stuck mid-request-line) longer than this are
    /// evicted — the slow-loris defence.
    pub idle_timeout: Duration,
    /// Request lines longer than this are rejected and the connection
    /// closed — bounds per-connection memory.
    pub max_request_line: usize,
    /// On shutdown, in-flight queries get this long to finish before
    /// their runs are cancelled.
    pub drain_deadline: Duration,
    /// After admission sheds a request, the service stays in *brownout*
    /// for this long: cache hits are still served, cache misses are shed
    /// immediately instead of queueing — bounding tail latency while
    /// overloaded.
    pub brownout_window: Duration,
    /// Engine shards for stored map-side queries: each shard owns a
    /// disjoint seed-cell range and the front-end scatters/gathers.
    /// 1 (the default) serves single-node.
    pub shards: u32,
    /// Per-connection wire-protocol negotiation policy.
    pub proto: ProtoPolicy,
}

/// How the serving tier picks a wire protocol per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoPolicy {
    /// Sniff the first byte: [`mwsj_net::FRAME_MAGIC`] selects the
    /// length-prefixed binary framing, anything else line JSON.
    #[default]
    Auto,
    /// Always line JSON, regardless of the first byte — for fleets that
    /// must pin the wire format.
    LineOnly,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            slots: 0,
            cache_bytes: 16 << 20,
            max_inflight: 4,
            max_queue: 16,
            grid: 8,
            extent: 100_000.0,
            net_fault: None,
            engine_faults: None,
            idle_timeout: Duration::from_secs(30),
            max_request_line: 1 << 20,
            drain_deadline: Duration::from_secs(5),
            brownout_window: Duration::from_secs(2),
            shards: 1,
            proto: ProtoPolicy::Auto,
        }
    }
}

impl ServerConfig {
    /// Sets the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the shared engine slot count.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the result-cache byte budget.
    #[must_use]
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the admission limits.
    #[must_use]
    pub fn with_admission(mut self, max_inflight: usize, max_queue: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self.max_queue = max_queue;
        self
    }

    /// Injects deterministic network faults into every connection.
    #[must_use]
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        plan.validate();
        self.net_fault = Some(plan);
        self
    }

    /// Injects engine-level faults (task failures, stragglers, spill
    /// corruption) into every query's jobs.
    #[must_use]
    pub fn with_engine_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate();
        self.engine_faults = Some(plan);
        self
    }

    /// Sets the idle-connection eviction timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the shutdown drain deadline.
    #[must_use]
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }

    /// Sets the brownout window entered after a shed.
    #[must_use]
    pub fn with_brownout_window(mut self, window: Duration) -> Self {
        self.brownout_window = window;
        self
    }

    /// Bounds the accepted request-line length.
    #[must_use]
    pub fn with_max_request_line(mut self, bytes: usize) -> Self {
        self.max_request_line = bytes.max(64);
        self
    }

    /// Shards stored map-side queries across `shards` engine instances.
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the wire-protocol negotiation policy.
    #[must_use]
    pub fn with_proto(mut self, proto: ProtoPolicy) -> Self {
        self.proto = proto;
        self
    }
}

/// Monotonic service counters (all successful/failed request outcomes).
#[derive(Default)]
struct ServiceStats {
    /// Query requests answered with a result.
    queries: AtomicU64,
    /// Of those, answered from the result cache.
    served_from_cache: AtomicU64,
    /// Runs cancelled (client disconnect, explicit cancel or deadline).
    cancelled: AtomicU64,
    /// Requests shed by admission control.
    shed: AtomicU64,
    /// Of those, shed fast because the service was in brownout.
    brownout_sheds: AtomicU64,
    /// Connections evicted by the idle timeout (slow-loris defence) or
    /// the request-line length bound.
    evicted: AtomicU64,
    /// Other failed requests (bad requests, failed joins).
    errors: AtomicU64,
}

/// Counting semaphore bounding concurrent joins, with a bounded queue.
struct Admission {
    max_inflight: usize,
    max_queue: usize,
    /// `(active, waiting)`.
    state: StdMutex<(usize, usize)>,
    cv: Condvar,
}

impl Admission {
    fn new(max_inflight: usize, max_queue: usize) -> Self {
        Self {
            max_inflight: max_inflight.max(1),
            max_queue,
            state: StdMutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a join slot is free, or sheds when the queue is full.
    fn admit(&self) -> Result<AdmitGuard<'_>, String> {
        let mut s = self.state.lock().expect("admission lock");
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(AdmitGuard(self));
        }
        if s.1 >= self.max_queue {
            return Err(format!(
                "service at capacity: {} joins running, {} queued",
                s.0, s.1
            ));
        }
        s.1 += 1;
        while s.0 >= self.max_inflight {
            s = self.cv.wait(s).expect("admission lock");
        }
        s.1 -= 1;
        s.0 += 1;
        Ok(AdmitGuard(self))
    }
}

struct AdmitGuard<'a>(&'a Admission);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.0.state.lock().expect("admission lock");
        s.0 -= 1;
        self.0.cv.notify_one();
    }
}

/// A loaded dataset paired with its DFS fingerprint.
type LoadedDataset = (Arc<Vec<Rect>>, u64);

/// A mounted stored dataset paired with how long its open took — charged
/// to the first query that mounts it (see [`mwsj_core::StoredRun`]).
type MountedStore = (Arc<mwsj_core::store::StoredDataset>, Duration);

struct Inner {
    config: ServerConfig,
    cluster: Cluster,
    cache: ResultCache,
    /// Loaded datasets by source spec, with their DFS fingerprints.
    datasets: parking_lot::Mutex<HashMap<String, LoadedDataset>>,
    /// Mounted `store:` datasets by path. Mounting holds the cell index
    /// and record sections, not a materialized `Vec<Rect>` — stored
    /// queries join straight off these.
    stores: parking_lot::Mutex<HashMap<String, MountedStore>>,
    admission: Admission,
    stats: ServiceStats,
    stop: AtomicBool,
    /// Brownout lease: while `Instant::now()` is before this, cache
    /// misses are shed without queueing.
    brownout_until: parking_lot::Mutex<Option<Instant>>,
    /// One engine instance per shard (empty when `shards` == 1). Each
    /// shard runs its seed-cell slice of stored map-side queries.
    shard_clusters: Vec<Cluster>,
    /// Range-scoped shard mounts of `store:` datasets, by path: element
    /// `i` is the store opened with shard `i`'s seed-cell scope.
    shard_mounts:
        parking_lot::Mutex<HashMap<String, Arc<Vec<Arc<mwsj_core::store::StoredDataset>>>>>,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn brownout_active(&self) -> bool {
        self.brownout_until
            .lock()
            .is_some_and(|until| Instant::now() < until)
    }

    /// Extends the brownout lease after an overload event.
    fn note_overload(&self) {
        *self.brownout_until.lock() = Some(Instant::now() + self.config.brownout_window);
    }

    /// Loads (or reuses) a dataset, fingerprinting it through the DFS.
    fn dataset(&self, spec: &str) -> Result<LoadedDataset, String> {
        let mut map = self.datasets.lock();
        if let Some(entry) = map.get(spec) {
            return Ok(entry.clone());
        }
        let rects = source::load_source(spec)?;
        let extent = self.config.extent;
        if let Some(bad) = rects.iter().find(|r| {
            !(r.min_x() >= 0.0 && r.max_x() <= extent && r.min_y() >= 0.0 && r.max_y() <= extent)
        }) {
            return Err(format!(
                "dataset `{spec}` does not fit the service space [0, {extent}]^2 \
                 (rectangle spans x [{}, {}], y [{}, {}])",
                bad.min_x(),
                bad.max_x(),
                bad.min_y(),
                bad.max_y()
            ));
        }
        let records: Vec<(f64, f64, f64, f64)> =
            rects.iter().map(|r| (r.x(), r.y(), r.l(), r.b())).collect();
        let dfs_name = format!("ds/{spec}");
        let dfs = &self.cluster.engine().dfs;
        dfs.write(&dfs_name, records);
        let fp = dfs.fingerprint(&dfs_name).map_err(|e| e.to_string())?.0;
        let entry = (Arc::new(rects), fp);
        map.insert(spec.to_string(), entry.clone());
        Ok(entry)
    }

    /// Mounts (or reuses) a stored dataset for a `store:PATH` spec. The
    /// store's ingest fingerprint follows the same recipe as the DFS
    /// fingerprint in [`Inner::dataset`], so a stored binding and its
    /// materialized twin share cache entries.
    fn mounted_store(&self, path: &str) -> Result<MountedStore, String> {
        let mut map = self.stores.lock();
        if let Some(entry) = map.get(path) {
            return Ok(entry.clone());
        }
        let t0 = Instant::now();
        let stored = mwsj_core::store::StoredDataset::open(std::path::Path::new(path))
            .map_err(|e| format!("opening store `{path}`: {e}"))?;
        let entry = (Arc::new(stored), t0.elapsed());
        map.insert(path.to_string(), entry.clone());
        Ok(entry)
    }

    /// Mounts (or reuses) the per-shard range-scoped instances of a
    /// stored dataset: the file is read once and opened `shards` times,
    /// each open validating its own seed-cell scope (checksums still
    /// cover every byte in every instance).
    fn shard_stores(
        &self,
        path: &str,
    ) -> Result<Arc<Vec<Arc<mwsj_core::store::StoredDataset>>>, String> {
        let mut map = self.shard_mounts.lock();
        if let Some(entry) = map.get(path) {
            return Ok(Arc::clone(entry));
        }
        let bytes =
            std::fs::read(path).map_err(|e| format!("reading store `{path}` for shards: {e}"))?;
        let ranges = mwsj_core::shards::seed_cell_ranges(
            self.cluster.grid().num_cells(),
            self.config.shards,
        );
        let mut scoped = Vec::with_capacity(ranges.len());
        for range in ranges {
            let store = mwsj_core::store::StoredDataset::from_bytes_scoped(&bytes, range.clone())
                .map_err(|e| {
                format!("opening store `{path}` scoped to cells {range:?}: {e}")
            })?;
            scoped.push(Arc::new(store));
        }
        let entry = Arc::new(scoped);
        map.insert(path.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

/// The TCP service. [`Server::bind`] it, then [`Server::run`] the accept
/// loop (typically on a dedicated thread); `run` returns after a
/// `shutdown` op or a termination signal, once in-flight requests have
/// drained.
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the listen socket and builds the shared cluster.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let space = (0.0, config.extent);
        let mut engine = EngineConfig::default().with_slots(config.slots);
        engine.fault_plan = config.engine_faults.clone();
        let cluster =
            Cluster::new(ClusterConfig::for_space(space, space, config.grid).with_engine(engine));
        // One engine instance per shard: the front-end scatters stored
        // map-side queries across these and gathers the partials.
        let shard_clusters: Vec<Cluster> = if config.shards > 1 {
            let count =
                mwsj_core::shards::seed_cell_ranges(cluster.grid().num_cells(), config.shards)
                    .len();
            (0..count)
                .map(|_| {
                    Cluster::new(
                        ClusterConfig::for_space(space, space, config.grid)
                            .with_engine(EngineConfig::default().with_slots(config.slots)),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let inner = Arc::new(Inner {
            cache: ResultCache::new(config.cache_bytes),
            datasets: parking_lot::Mutex::new(HashMap::new()),
            stores: parking_lot::Mutex::new(HashMap::new()),
            admission: Admission::new(config.max_inflight, config.max_queue),
            stats: ServiceStats::default(),
            stop: AtomicBool::new(false),
            brownout_until: parking_lot::Mutex::new(None),
            shard_clusters,
            shard_mounts: parking_lot::Mutex::new(HashMap::new()),
            cluster,
            config,
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (useful with a `:0` config).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the event loop until shutdown is requested (a `shutdown`
    /// protocol op, or `SIGTERM`/`SIGINT` once
    /// [`signal::install_handlers`] is in place), then *drains*: no new
    /// connections are accepted, in-flight requests get up to
    /// [`ServerConfig::drain_deadline`] to finish and flush, and
    /// whatever is still running afterwards is cancelled through the
    /// engine's cancellation tokens before the loop exits.
    ///
    /// # Errors
    /// Propagates event-loop I/O failures (not per-connection ones).
    pub fn run(self) -> std::io::Result<()> {
        event::run(&self.listener, &self.inner)
    }
}

/// Handles one request payload, returning the one-line JSON response.
/// The event loop dispatches this on a worker thread with a cancel
/// token it can fire if the client disconnects or the drain deadline
/// passes mid-run.
fn answer(inner: &Arc<Inner>, line: &str, cancel: &CancelToken) -> String {
    match protocol::parse_request(line) {
        Err(msg) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            protocol::error_response(ErrorCode::BadRequest, &msg)
        }
        Ok(Request::Stats) => stats_response(inner),
        Ok(Request::Shutdown) => {
            inner.stop.store(true, Ordering::SeqCst);
            "{\"ok\":true,\"stopping\":true}".to_string()
        }
        Ok(Request::Query(q)) => handle_query(inner, q, cancel),
        Ok(Request::Explain(e)) => handle_explain(inner, &e),
    }
}

/// A parsed and bound query: the canonical form, the datasets bound to
/// its canonical relation positions, their fingerprints, and the
/// requester-order permutation.
struct BoundQuery {
    canonical: Query,
    /// In-memory relations; empty (never read) when `stores` is bound.
    datasets: Vec<Arc<Vec<Rect>>>,
    /// Mounted stores in canonical relation order, plus the total open
    /// wall charged to this query — bound when *every* spec is a
    /// `store:PATH` whose grid matches the service grid. Such queries
    /// run shuffle-free off the stores without materializing anything.
    stores: Option<(Vec<Arc<mwsj_core::store::StoredDataset>>, Duration)>,
    /// The `store:` paths behind `stores` (canonical order; empty when
    /// `stores` is unbound) — the scatter path re-mounts these with
    /// per-shard seed-cell scopes.
    store_paths: Vec<String>,
    fingerprints: Vec<u64>,
    combined_fingerprint: u64,
    /// Requester position i reads canonical position perm[i].
    perm: Vec<usize>,
}

/// Parses a query and binds a dataset to every canonical relation
/// position — shared by the `query` and `explain` operations.
fn bind_query(
    inner: &Arc<Inner>,
    query_text: &str,
    data: &[(String, String)],
) -> Result<BoundQuery, String> {
    let query = Query::parse(query_text).map_err(|e| format!("bad query: {e}"))?;
    let canonical = query.canonical();
    let requested_names: Vec<&str> = query.relations().map(|r| query.name(r)).collect();
    let canonical_names: Vec<String> = canonical
        .relations()
        .map(|r| canonical.name(r).to_string())
        .collect();
    for (name, _) in data {
        if !canonical_names.contains(name) {
            return Err(format!(
                "data binding `{name}` does not appear in the query"
            ));
        }
    }
    let mut specs: Vec<&str> = Vec::with_capacity(canonical_names.len());
    for name in &canonical_names {
        let (_, spec) = data
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("no data binding for relation `{name}`"))?;
        specs.push(spec);
    }

    // The shuffle-free path: every binding is a stored dataset that is
    // co-partitioned with the service grid. Mount them all; fall back to
    // materializing if any store was ingested on a different grid.
    let mut datasets: Vec<Arc<Vec<Rect>>> = Vec::new();
    let mut fingerprints: Vec<u64> = Vec::with_capacity(canonical_names.len());
    let mut stores = None;
    let mut store_paths: Vec<String> = Vec::new();
    if specs.iter().all(|s| s.starts_with("store:")) {
        let mut mounted = Vec::with_capacity(specs.len());
        let mut paths = Vec::with_capacity(specs.len());
        let mut open_wall = Duration::ZERO;
        for spec in &specs {
            let path = spec.strip_prefix("store:").expect("checked above");
            let (store, opened_in) = inner.mounted_store(path)?;
            open_wall += opened_in;
            mounted.push(store);
            paths.push(path.to_string());
        }
        if mounted.iter().all(|s| s.grid() == inner.cluster.grid()) {
            fingerprints.extend(mounted.iter().map(|s| s.fingerprint()));
            stores = Some((mounted, open_wall));
            store_paths = paths;
        }
    }
    if stores.is_none() {
        for spec in &specs {
            let (rects, fp) = inner.dataset(spec)?;
            datasets.push(rects);
            fingerprints.push(fp);
        }
    }
    let combined_fingerprint = {
        let mut h = mwsj_core::mapreduce::Fnv64::new();
        h.write_u64(fingerprints.len() as u64);
        for fp in &fingerprints {
            h.write_u64(*fp);
        }
        h.finish()
    };
    let perm: Vec<usize> = requested_names
        .iter()
        .map(|n| {
            canonical_names
                .iter()
                .position(|c| c == n)
                .expect("canonicalization preserves relation names")
        })
        .collect();
    Ok(BoundQuery {
        canonical,
        datasets,
        stores,
        store_paths,
        fingerprints,
        combined_fingerprint,
        perm,
    })
}

/// Answers an `explain` request: binds the datasets and returns the
/// costed plan without executing anything.
fn handle_explain(inner: &Arc<Inner>, e: &ExplainRequest) -> String {
    match bind_query(inner, &e.query, &e.data) {
        Ok(bound) => {
            let plan = if let Some((stores, _)) = &bound.stores {
                let refs: Vec<&mwsj_core::store::StoredDataset> =
                    stores.iter().map(Arc::as_ref).collect();
                inner.cluster.plan_stored(&bound.canonical, &refs)
            } else {
                let refs: Vec<&[Rect]> = bound.datasets.iter().map(|d| d.as_slice()).collect();
                inner.cluster.plan(&bound.canonical, &refs)
            };
            format!(
                "{{\"ok\":true,\"plan\":{},\"fingerprint\":\"{:016x}\"}}",
                plan.to_json(),
                bound.combined_fingerprint
            )
        }
        Err(msg) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            protocol::error_response(ErrorCode::BadRequest, &msg)
        }
    }
}

/// Executes a query request end to end on the calling (worker) thread.
/// The event loop owns `cancel`: it fires on client disconnect and at
/// the drain deadline, and the run reports a typed `cancelled` error.
fn handle_query(inner: &Arc<Inner>, q: QueryRequest, cancel: &CancelToken) -> String {
    let started = Instant::now();
    let fail = |code: ErrorCode, msg: &str| {
        inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        protocol::error_response(code, msg)
    };

    let BoundQuery {
        canonical,
        datasets,
        stores,
        store_paths,
        fingerprints,
        combined_fingerprint,
        perm,
    } = match bind_query(inner, &q.query, &q.data) {
        Ok(bound) => bound,
        Err(msg) => return fail(ErrorCode::BadRequest, &msg),
    };

    // Resolve `auto` to the optimizer's concrete choice *before* forming
    // the cache key: the key must never contain `"auto"`, so an auto
    // query and its manually-pinned twin share one cache entry. The plan
    // is deterministic, so resolving here and pinning the worker's run
    // keeps the key and the execution consistent.
    let algorithm = if q.algorithm == Algorithm::Auto {
        if let Some((stores, _)) = &stores {
            let refs: Vec<&mwsj_core::store::StoredDataset> =
                stores.iter().map(Arc::as_ref).collect();
            inner.cluster.plan_stored(&canonical, &refs).algorithm
        } else {
            let refs: Vec<&[Rect]> = datasets.iter().map(|d| d.as_slice()).collect();
            inner.cluster.plan(&canonical, &refs).algorithm
        }
    } else {
        q.algorithm
    };
    if algorithm == Algorithm::MapSide && stores.is_none() {
        return fail(
            ErrorCode::BadRequest,
            "the map-side join needs every binding to be a `store:PATH` dataset \
             co-partitioned with the service grid",
        );
    }

    let key = CacheKey {
        query: canonical.to_string(),
        fingerprints,
        algorithm: algorithm.to_string(),
        count_only: q.count_only,
    };
    if let Some(hit) = inner.cache.get(&key) {
        inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .served_from_cache
            .fetch_add(1, Ordering::Relaxed);
        return render_query_response(true, &hit, &perm, combined_fingerprint, started.elapsed());
    }

    // Brownout: while the overload lease is live, misses are shed
    // immediately rather than queueing behind a saturated engine (the
    // cache-hit path above still serves).
    if inner.brownout_active() {
        inner.stats.shed.fetch_add(1, Ordering::Relaxed);
        inner.stats.brownout_sheds.fetch_add(1, Ordering::Relaxed);
        inner.note_overload();
        return protocol::error_response(
            ErrorCode::Overloaded,
            "service in brownout: cache misses are shed while overloaded",
        );
    }

    let _slot = match inner.admission.admit() {
        Ok(guard) => guard,
        Err(msg) => {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            inner.note_overload();
            return protocol::error_response(ErrorCode::Overloaded, &msg);
        }
    };

    // The run itself — sharded scatter/gather for stored map-side
    // queries on a sharded service, otherwise the single-node paths.
    // `catch_unwind` preserves the old worker-thread isolation: an
    // engine panic answers `join_failed` instead of killing the service.
    let token = cancel.clone();
    let sharded =
        algorithm == Algorithm::MapSide && stores.is_some() && !inner.shard_clusters.is_empty();
    let result: std::thread::Result<Result<JoinOutput, JoinError>> =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if sharded {
                return run_sharded(inner, &canonical, &q, &store_paths, &token);
            }
            if let Some((stores, open_wall)) = &stores {
                let refs: Vec<&mwsj_core::store::StoredDataset> =
                    stores.iter().map(Arc::as_ref).collect();
                let mut run = mwsj_core::StoredRun::new(&canonical, &refs)
                    .algorithm(algorithm)
                    .count_only(q.count_only)
                    .cancel(token.clone())
                    .priority(q.priority)
                    .share(q.share)
                    .open_wall(*open_wall);
                if let Some(ms) = q.deadline_ms {
                    run = run.deadline(Duration::from_millis(ms));
                }
                return inner.cluster.submit_stored(&run);
            }
            let refs: Vec<&[Rect]> = datasets.iter().map(|d| d.as_slice()).collect();
            let mut run = JoinRun::new(&canonical, &refs)
                .algorithm(algorithm)
                .count_only(q.count_only)
                .cancel(token.clone())
                .priority(q.priority)
                .share(q.share)
                .input_fingerprint(combined_fingerprint);
            if let Some(ms) = q.deadline_ms {
                run = run.deadline(Duration::from_millis(ms));
            }
            inner.cluster.submit(&run)
        }));

    match result {
        Ok(Ok(output)) => {
            let value = CachedResult {
                tuples: output.tuples,
                tuple_count: output.tuple_count,
                counters: counters_json(&output.report.jobs),
                algorithm: output.algorithm.to_string(),
            };
            let cached = inner.cache.insert(key, value);
            inner.stats.queries.fetch_add(1, Ordering::Relaxed);
            render_query_response(
                false,
                &cached,
                &perm,
                combined_fingerprint,
                started.elapsed(),
            )
        }
        Ok(Err(JoinError::Job(e))) => {
            if let JobErrorKind::Cancelled { deadline_exceeded } = e.kind {
                inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                let code = if deadline_exceeded {
                    ErrorCode::DeadlineExceeded
                } else {
                    ErrorCode::Cancelled
                };
                protocol::error_response(code, &e.to_string())
            } else {
                fail(ErrorCode::JoinFailed, &e.to_string())
            }
        }
        Ok(Err(e)) => fail(ErrorCode::JoinFailed, &e.to_string()),
        Err(_) => fail(
            ErrorCode::JoinFailed,
            "internal error: join worker panicked",
        ),
    }
}

/// Scatters a stored map-side query across the engine shards — each
/// seeds only its own cell range off its range-scoped store mounts —
/// and gathers the partials into the exact single-node [`JoinOutput`]
/// (see [`mwsj_core::shards`]). The deadline is armed once here on the
/// shared token; `submit_stored_partial` never arms its own.
fn run_sharded(
    inner: &Arc<Inner>,
    canonical: &Query,
    q: &QueryRequest,
    store_paths: &[String],
    cancel: &CancelToken,
) -> Result<JoinOutput, JoinError> {
    use mwsj_core::shards::{self, GatherSpec, ShardPartial};

    if let Some(ms) = q.deadline_ms {
        cancel.deadline_in(Duration::from_millis(ms));
    }
    // Mount the per-shard scoped instances: `mounts[rel][shard]`.
    let mounts: Vec<Arc<Vec<Arc<mwsj_core::store::StoredDataset>>>> = store_paths
        .iter()
        .map(|path| inner.shard_stores(path))
        .collect::<Result<_, String>>()
        .map_err(|msg| {
            JoinError::Job(mwsj_core::mapreduce::JobError {
                job: "shard-mount".to_string(),
                phase: mwsj_core::mapreduce::Phase::Map,
                task: 0,
                attempts: 1,
                kind: JobErrorKind::AttemptsExhausted { last_error: msg },
            })
        })?;
    let ranges = shards::seed_cell_ranges(inner.cluster.grid().num_cells(), inner.config.shards);
    let open_wall = {
        let map = inner.stores.lock();
        store_paths
            .iter()
            .filter_map(|p| map.get(p).map(|(_, wall)| *wall))
            .sum()
    };

    let t0 = Instant::now();
    let mut partials: Vec<Result<ShardPartial, JoinError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(shard, range)| {
                let mounts = &mounts;
                let cluster = &inner.shard_clusters[shard];
                let cancel = cancel.clone();
                let range = range.clone();
                scope.spawn(move || {
                    let refs: Vec<&mwsj_core::store::StoredDataset> =
                        mounts.iter().map(|m| m[shard].as_ref()).collect();
                    let run = mwsj_core::StoredRun::new(canonical, &refs)
                        .algorithm(Algorithm::MapSide)
                        .count_only(q.count_only)
                        .cancel(cancel)
                        .priority(q.priority)
                        .share(q.share);
                    cluster.submit_stored_partial(&run, range)
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("shard worker panicked"));
        }
    });
    let partials: Vec<ShardPartial> = partials.into_iter().collect::<Result<_, _>>()?;

    let shard0: Vec<&mwsj_core::store::StoredDataset> =
        mounts.iter().map(|m| m[0].as_ref()).collect();
    let spec = GatherSpec {
        record_total: shard0.iter().map(|s| s.record_count()).sum(),
        count_only: q.count_only,
        open_wall,
        join_wall: t0.elapsed(),
        input_fingerprint: shards::combined_fingerprint(&shard0),
    };
    Ok(shards::gather(partials, &spec))
}

/// Renders an `ok` query response, permuting the canonical-order tuples
/// back to the requester's relation order.
fn render_query_response(
    cached: bool,
    result: &CachedResult,
    perm: &[usize],
    fingerprint: u64,
    wall: Duration,
) -> String {
    let mut tuples: Vec<Vec<u32>> = result
        .tuples
        .iter()
        .map(|t| perm.iter().map(|&j| t[j]).collect())
        .collect();
    tuples.sort_unstable();
    format!(
        "{{\"ok\":true,\"cached\":{cached},\"algorithm\":\"{}\",\"tuple_count\":{},\"tuples\":{},\"counters\":{},\"wall_ms\":{:.3},\"fingerprint\":\"{fingerprint:016x}\"}}",
        result.algorithm,
        result.tuple_count,
        protocol::tuples_json(&tuples),
        result.counters,
        wall.as_secs_f64() * 1e3,
    )
}

/// The logical (concurrency-invariant) per-job counters of a run.
fn counters_json(jobs: &[JobMetrics]) -> String {
    let mut out = String::from("[");
    for (i, j) in jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"job\":\"{}\",\"map_input_records\":{},\"map_output_records\":{},\"shuffle_bytes\":{},\"reduce_input_groups\":{},\"reduce_input_records\":{},\"reduce_output_records\":{},\"spill_runs\":{},\"retries\":{},\"corrupt_runs\":{},\"input_fingerprint\":\"{:016x}\"}}",
            json_escape(&j.job_name),
            j.map_input_records,
            j.map_output_records,
            j.shuffle_bytes,
            j.reduce_input_groups,
            j.reduce_input_records,
            j.reduce_output_records,
            j.spill_runs,
            j.retries,
            j.corrupt_runs,
            j.input_fingerprint,
        ));
    }
    out.push(']');
    out
}

/// Renders the `stats` response.
fn stats_response(inner: &Inner) -> String {
    let c = inner.cache.stats();
    let sched = inner.cluster.engine().scheduler();
    format!(
        "{{\"ok\":true,\"queries\":{},\"served_from_cache\":{},\"cancelled\":{},\"shed\":{},\"brownout_sheds\":{},\"evicted\":{},\"errors\":{},\"shards\":{},\"brownout\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bytes\":{},\"entries\":{}}},\"slots\":{},\"slots_available\":{}}}",
        inner.stats.queries.load(Ordering::Relaxed),
        inner.stats.served_from_cache.load(Ordering::Relaxed),
        inner.stats.cancelled.load(Ordering::Relaxed),
        inner.stats.shed.load(Ordering::Relaxed),
        inner.stats.brownout_sheds.load(Ordering::Relaxed),
        inner.stats.evicted.load(Ordering::Relaxed),
        inner.stats.errors.load(Ordering::Relaxed),
        inner.config.shards,
        inner.brownout_active(),
        c.hits,
        c.misses,
        c.evictions,
        c.bytes,
        c.entries,
        sched.slots(),
        sched.available(),
    )
}
