//! Dataset specifications: `NAME=SOURCE` bindings for query relation
//! positions, where a source is a CSV path or an inline generator spec.
//!
//! ```text
//! --data R1=roads.csv
//! --data R2=synthetic:n=10000,seed=7,lmax=250,extent=20000
//! --data R3=california:n=20000,seed=1
//! ```
//!
//! Both the CLI (`mwsj run`, `mwsj query`) and the service's wire
//! protocol use these specs, so a query sent over the network names its
//! datasets exactly as the command line does.

use std::collections::BTreeMap;

use mwsj_datagen::{io, CaliforniaConfig, SyntheticConfig};
use mwsj_geom::Rect;

/// Parses one `NAME=SOURCE` binding.
///
/// # Errors
/// Describes the malformed binding or unreadable source.
pub fn parse_binding(spec: &str) -> Result<(String, Vec<Rect>), String> {
    let (name, source) = spec
        .split_once('=')
        .ok_or_else(|| format!("`{spec}` is not NAME=SOURCE"))?;
    Ok((name.to_string(), load_source(source)?))
}

/// Loads a data source: `synthetic:...`, `california:...`, `store:...`
/// or a CSV path. A `store:` source materializes the stored relation into
/// memory — callers that can join stored datasets in place (the stored
/// query paths in the server and CLI) should open the store directly and
/// only fall back to this loader for mixed bindings.
///
/// # Errors
/// Describes the bad parameter or unreadable file.
pub fn load_source(source: &str) -> Result<Vec<Rect>, String> {
    if let Some(path) = source.strip_prefix("store:") {
        let stored = mwsj_core::store::StoredDataset::open(std::path::Path::new(path))
            .map_err(|e| format!("opening store `{path}`: {e}"))?;
        Ok(stored.materialize())
    } else if let Some(params) = source.strip_prefix("synthetic:") {
        let p = parse_params(params)?;
        let n = param_parsed(&p, "n", 10_000usize)?;
        let seed = param_parsed(&p, "seed", 42u64)?;
        let extent = param_parsed(&p, "extent", 100_000.0f64)?;
        let lmax = param_parsed(&p, "lmax", 100.0f64)?;
        let bmax = param_parsed(&p, "bmax", lmax)?;
        let mut cfg = SyntheticConfig::paper_default(n, seed).with_max_sides(lmax, bmax);
        cfg.x_range = (0.0, extent);
        cfg.y_range = (0.0, extent);
        Ok(cfg.generate())
    } else if let Some(params) = source.strip_prefix("california:") {
        let p = parse_params(params)?;
        let n = param_parsed(&p, "n", 20_000usize)?;
        let seed = param_parsed(&p, "seed", 2013u64)?;
        let scaled = !p.contains_key("full");
        let cfg = if scaled {
            CaliforniaConfig::scaled_to(n, seed)
        } else {
            CaliforniaConfig::new(n, seed)
        };
        Ok(cfg.generate())
    } else {
        io::load_rects(source).map_err(|e| format!("reading `{source}`: {e}"))
    }
}

fn parse_params(s: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    if s.is_empty() {
        return Ok(map);
    }
    for part in s.split(',') {
        match part.split_once('=') {
            Some((k, v)) => {
                map.insert(k.trim().to_string(), v.trim().to_string());
            }
            None => {
                map.insert(part.trim().to_string(), String::new());
            }
        }
    }
    Ok(map)
}

fn param_parsed<T: std::str::FromStr>(
    p: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match p.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("{key}=`{v}` invalid: {e}")),
    }
}

/// The tight bounding extent of a set of datasets, padded for safety, as
/// `(x_range, y_range)` for the cluster space.
#[must_use]
pub fn bounding_space(datasets: &[&[Rect]]) -> ((f64, f64), (f64, f64)) {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for r in datasets.iter().flat_map(|d| d.iter()) {
        min_x = min_x.min(r.min_x());
        max_x = max_x.max(r.max_x());
        min_y = min_y.min(r.min_y());
        max_y = max_y.max(r.max_y());
    }
    if !min_x.is_finite() {
        return ((0.0, 1.0), (0.0, 1.0));
    }
    let pad_x = ((max_x - min_x) * 0.001).max(1e-9);
    let pad_y = ((max_y - min_y) * 0.001).max(1e-9);
    ((min_x, max_x + pad_x), (min_y, max_y + pad_y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_spec() {
        let d = load_source("synthetic:n=100,seed=1,extent=1000,lmax=50").unwrap();
        assert_eq!(d.len(), 100);
        assert!(d.iter().all(|r| r.max_x() <= 1000.0 && r.l() <= 50.0));
    }

    #[test]
    fn california_spec() {
        let d = load_source("california:n=500,seed=3").unwrap();
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn binding_parse() {
        let (name, d) = parse_binding("R1=synthetic:n=10").unwrap();
        assert_eq!(name, "R1");
        assert_eq!(d.len(), 10);
        assert!(parse_binding("no-equals-here").is_err());
    }

    #[test]
    fn bad_param_reports() {
        assert!(load_source("synthetic:n=abc").is_err());
    }

    #[test]
    fn store_spec_materializes() {
        use mwsj_core::partition::Grid;
        use mwsj_core::store::StoreBuilder;

        let rects = load_source("synthetic:n=50,seed=9,extent=1000").unwrap();
        let path = std::env::temp_dir().join("mwsj-source-test.store");
        let grid = Grid::square((0.0, 1000.0), (0.0, 1000.0), 4);
        StoreBuilder::new(&grid).write(&rects, &path).unwrap();
        let spec = format!("store:{}", path.display());
        let loaded = load_source(&spec).unwrap();
        assert_eq!(loaded, rects);
        std::fs::remove_file(&path).ok();
        assert!(load_source("store:/no/such/file.store").is_err());
    }

    #[test]
    fn bounding_space_covers_everything() {
        let a = vec![Rect::new(5.0, 20.0, 3.0, 4.0)];
        let b = vec![Rect::new(100.0, 80.0, 10.0, 10.0)];
        let ((x0, x1), (y0, y1)) = bounding_space(&[&a, &b]);
        assert!(x0 <= 5.0 && x1 >= 110.0);
        assert!(y0 <= 16.0 && y1 >= 80.0);
    }
}
