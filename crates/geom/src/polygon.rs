use serde::{Deserialize, Serialize};

use crate::{Coord, Point, Rect};

/// A simple polygon (non-self-intersecting, at least 3 vertices), used by the
/// *refinement* step (§1.1): the filter step works on MBRs, and candidate
/// tuples that pass the filter are re-checked against the exact geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertices in order (either winding).
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied.
    #[must_use]
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        Self { vertices }
    }

    /// The polygon's vertices.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterates over the polygon's edges as vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Minimum bounding rectangle of the polygon — the object handed to the
    /// filter step (Figure 1 of the paper shows a pentagon and its MBR).
    #[must_use]
    pub fn mbr(&self) -> Rect {
        let mut min_x = Coord::INFINITY;
        let mut max_x = Coord::NEG_INFINITY;
        let mut min_y = Coord::INFINITY;
        let mut max_y = Coord::NEG_INFINITY;
        for v in &self.vertices {
            min_x = min_x.min(v.x);
            max_x = max_x.max(v.x);
            min_y = min_y.min(v.y);
            max_y = max_y.max(v.y);
        }
        Rect::new(min_x, max_y, max_x - min_x, max_y - min_y)
    }

    /// Point-in-polygon test (even-odd rule; boundary points count as
    /// inside).
    #[must_use]
    pub fn contains_point(&self, p: &Point) -> bool {
        // Boundary check first: a point on an edge is inside.
        for (a, b) in self.edges() {
            if point_on_segment(p, &a, &b) {
                return true;
            }
        }
        let mut inside = false;
        for (a, b) in self.edges() {
            if (a.y > p.y) != (b.y > p.y) {
                let t = (p.y - a.y) / (b.y - a.y);
                let x = a.x + t * (b.x - a.x);
                if p.x < x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Exact intersection test between two simple polygons: true when edges
    /// cross or one polygon contains a vertex of the other.
    #[must_use]
    pub fn intersects(&self, other: &Polygon) -> bool {
        for (a1, a2) in self.edges() {
            for (b1, b2) in other.edges() {
                if segments_intersect(&a1, &a2, &b1, &b2) {
                    return true;
                }
            }
        }
        self.contains_point(&other.vertices[0]) || other.contains_point(&self.vertices[0])
    }

    /// Exact minimum distance between two polygons (0 when they intersect).
    #[must_use]
    pub fn distance(&self, other: &Polygon) -> Coord {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = Coord::INFINITY;
        for (a1, a2) in self.edges() {
            for (b1, b2) in other.edges() {
                best = best.min(segment_distance(&a1, &a2, &b1, &b2));
            }
        }
        best
    }

    /// Exact range predicate: polygons within distance `d`.
    #[must_use]
    pub fn within_distance(&self, other: &Polygon, d: Coord) -> bool {
        self.distance(other) <= d
    }
}

fn cross(o: &Point, a: &Point, b: &Point) -> Coord {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

fn point_on_segment(p: &Point, a: &Point, b: &Point) -> bool {
    cross(a, b, p).abs() <= 1e-12
        && p.x >= a.x.min(b.x) - 1e-12
        && p.x <= a.x.max(b.x) + 1e-12
        && p.y >= a.y.min(b.y) - 1e-12
        && p.y <= a.y.max(b.y) + 1e-12
}

fn segments_intersect(a1: &Point, a2: &Point, b1: &Point, b2: &Point) -> bool {
    let d1 = cross(b1, b2, a1);
    let d2 = cross(b1, b2, a2);
    let d3 = cross(a1, a2, b1);
    let d4 = cross(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    point_on_segment(a1, b1, b2)
        || point_on_segment(a2, b1, b2)
        || point_on_segment(b1, a1, a2)
        || point_on_segment(b2, a1, a2)
}

fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> Coord {
    let ab = Point::new(b.x - a.x, b.y - a.y);
    let len_sq = ab.x * ab.x + ab.y * ab.y;
    if len_sq == 0.0 {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len_sq).clamp(0.0, 1.0);
    p.distance(&Point::new(a.x + t * ab.x, a.y + t * ab.y))
}

fn segment_distance(a1: &Point, a2: &Point, b1: &Point, b2: &Point) -> Coord {
    if segments_intersect(a1, a2, b1, b2) {
        return 0.0;
    }
    point_segment_distance(a1, b1, b2)
        .min(point_segment_distance(a2, b1, b2))
        .min(point_segment_distance(b1, a1, a2))
        .min(point_segment_distance(b2, a1, a2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: Coord, y: Coord, s: Coord) -> Polygon {
        // Top-left (x, y), side s, counter-clockwise.
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x, y - s),
            Point::new(x + s, y - s),
            Point::new(x + s, y),
        ])
    }

    #[test]
    fn mbr_of_pentagon() {
        // Figure 1: a pentagon and its MBR.
        let pentagon = Polygon::new(vec![
            Point::new(2.0, 6.0),
            Point::new(0.0, 3.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(4.0, 3.0),
        ]);
        assert_eq!(pentagon.mbr(), Rect::new(0.0, 6.0, 4.0, 6.0));
    }

    #[test]
    fn contains_point_inside_and_outside() {
        let sq = square(0.0, 10.0, 10.0);
        assert!(sq.contains_point(&Point::new(5.0, 5.0)));
        assert!(sq.contains_point(&Point::new(0.0, 10.0))); // vertex
        assert!(sq.contains_point(&Point::new(0.0, 5.0))); // edge
        assert!(!sq.contains_point(&Point::new(-0.1, 5.0)));
        assert!(!sq.contains_point(&Point::new(11.0, 5.0)));
    }

    #[test]
    fn intersects_overlapping_squares() {
        let a = square(0.0, 10.0, 10.0);
        let b = square(5.0, 15.0, 10.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn intersects_containment() {
        let outer = square(0.0, 10.0, 10.0);
        let inner = square(3.0, 7.0, 2.0);
        assert!(outer.intersects(&inner));
        assert!(inner.intersects(&outer));
    }

    #[test]
    fn disjoint_squares_do_not_intersect() {
        let a = square(0.0, 10.0, 2.0);
        let b = square(5.0, 10.0, 2.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn distance_between_squares() {
        let a = square(0.0, 2.0, 2.0); // covers [0,2] x [0,2]
        let b = square(5.0, 2.0, 2.0); // covers [5,7] x [0,2]
        assert!((a.distance(&b) - 3.0).abs() < 1e-9);
        assert!(a.within_distance(&b, 3.0));
        assert!(!a.within_distance(&b, 2.9));
    }

    #[test]
    fn distance_zero_when_touching() {
        let a = square(0.0, 2.0, 2.0);
        let b = square(2.0, 2.0, 2.0);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn mbr_filter_never_misses_refinement_pair() {
        // The filter guarantee: exact intersection implies MBR overlap.
        let a = Polygon::new(vec![
            Point::new(0.0, 5.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 0.0),
        ]);
        let b = Polygon::new(vec![
            Point::new(1.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 1.0),
        ]);
        if a.intersects(&b) {
            assert!(a.mbr().overlaps(&b.mbr()));
        }
        // MBRs may overlap while exact shapes do not (the false positive the
        // refinement step removes).
        let c = Polygon::new(vec![
            Point::new(4.5, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 4.5),
        ]);
        assert!(a.mbr().overlaps(&c.mbr()));
        assert!(!a.intersects(&c));
    }
}
