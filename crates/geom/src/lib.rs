//! Geometry primitives for multi-way spatial join processing.
//!
//! This crate implements the object model of *Processing Multi-Way Spatial
//! Joins on Map-Reduce* (Gupta et al., EDBT 2013, §1.1): spatial objects are
//! approximated by their minimum bounding rectangles (MBRs), and the join
//! *filter* step operates purely on rectangles. A rectangle is represented in
//! the paper's `(x, y, l, b)` form, where `(x, y)` is the **top-left vertex**
//! (the *start point*), `l` the length along x and `b` the breadth along y.
//! The y axis points **up**: a rectangle spans `[x, x + l]` horizontally and
//! `[y - b, y]` vertically.
//!
//! The crate provides:
//!
//! * [`Point`] — a 2D point.
//! * [`Rect`] — an MBR with the paper's predicates: closed [`Rect::overlaps`]
//!   and distance-based range tests ([`Rect::within_distance`]).
//! * [`Rect::enlarge`] / [`Rect::enlarge_factor`] — the two enlargement
//!   operations of §5.3 and §7.8.6.
//! * [`Polygon`] — simple polygons for the *refinement* step, with exact
//!   intersection and distance tests, and [`Polygon::mbr`] extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod point;
mod polygon;
mod rect;

pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;

/// Numeric coordinate type used throughout the workspace.
pub type Coord = f64;

/// Compares two coordinates for approximate equality (used by tests and the
/// refinement step; the filter step never needs tolerances).
#[must_use]
pub fn approx_eq(a: Coord, b: Coord) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}
