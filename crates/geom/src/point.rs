use serde::{Deserialize, Serialize};

use crate::Coord;

/// A point in the 2D plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate (y axis points up).
    pub y: Coord,
}

impl Point {
    /// Creates a new point.
    #[must_use]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(&self, other: &Point) -> Coord {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point (avoids the square root
    /// when only comparisons are needed).
    #[must_use]
    pub fn distance_sq(&self, other: &Point) -> Coord {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.0, -3.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }
}
