use serde::{Deserialize, Serialize};

use crate::{Coord, Point};

/// A rectangle (MBR) in the paper's `(x, y, l, b)` representation.
///
/// `(x, y)` is the **top-left vertex** — the rectangle's *start point* — and
/// the body extends `l` units to the right and `b` units down (the y axis
/// points up, so the vertical extent is `[y - b, y]`).
///
/// Internally the rectangle stores its corner coordinates, so that derived
/// operations (`union`, `intersection`, `enlarge`) are exact per-corner
/// floating-point operations: `a.union(&b).contains_rect(&a)` holds bit-for-
/// bit, which the partitioning and duplicate-avoidance logic rely on.
///
/// All predicates are **closed**: rectangles sharing only a boundary point
/// are considered overlapping, and `within_distance(d)` is satisfied at
/// exactly distance `d`. This matches the filter-step semantics of the paper
/// (a filter may over-approximate but must never drop a candidate pair).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min_x: Coord,
    min_y: Coord,
    max_x: Coord,
    max_y: Coord,
}

impl Rect {
    /// Creates a rectangle from its start point (top-left vertex), length and
    /// breadth — the paper's `(x, y, l, b)` form.
    ///
    /// # Panics
    /// Panics if `l` or `b` is negative or any input is not finite.
    #[must_use]
    pub fn new(x: Coord, y: Coord, l: Coord, b: Coord) -> Self {
        assert!(
            l >= 0.0
                && b >= 0.0
                && l.is_finite()
                && b.is_finite()
                && x.is_finite()
                && y.is_finite(),
            "invalid rectangle ({x}, {y}, {l}, {b})"
        );
        Self {
            min_x: x,
            min_y: y - b,
            max_x: x + l,
            max_y: y,
        }
    }

    /// Creates a rectangle from two opposite corners (in any order).
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min_x: a.x.min(b.x),
            max_x: a.x.max(b.x),
            min_y: a.y.min(b.y),
            max_y: a.y.max(b.y),
        }
    }

    /// Creates a rectangle directly from its corner extents, without any
    /// reordering or arithmetic — the accessors return exactly the values
    /// passed in, bit for bit (unlike [`Rect::from_corners`], whose
    /// `min`/`max` normalization can swap `-0.0`/`0.0`). This is the
    /// round-trip constructor for serialized rectangles.
    ///
    /// Returns `None` when a coordinate is non-finite or an extent is
    /// inverted (`min > max`).
    #[must_use]
    pub fn from_bounds(min_x: Coord, min_y: Coord, max_x: Coord, max_y: Coord) -> Option<Self> {
        let finite =
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite();
        (finite && min_x <= max_x && min_y <= max_y).then_some(Self {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    fn from_extents(min_x: Coord, min_y: Coord, max_x: Coord, max_y: Coord) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y);
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// x coordinate of the start point (top-left vertex).
    #[must_use]
    pub fn x(&self) -> Coord {
        self.min_x
    }

    /// y coordinate of the start point (top-left vertex).
    #[must_use]
    pub fn y(&self) -> Coord {
        self.max_y
    }

    /// Length: extent along the x axis.
    #[must_use]
    pub fn l(&self) -> Coord {
        self.max_x - self.min_x
    }

    /// Breadth: extent along the y axis.
    #[must_use]
    pub fn b(&self) -> Coord {
        self.max_y - self.min_y
    }

    /// The start point (top-left vertex).
    #[must_use]
    pub fn start_point(&self) -> Point {
        Point::new(self.min_x, self.max_y)
    }

    /// Smallest x coordinate covered by the rectangle.
    #[must_use]
    pub fn min_x(&self) -> Coord {
        self.min_x
    }

    /// Largest x coordinate covered by the rectangle.
    #[must_use]
    pub fn max_x(&self) -> Coord {
        self.max_x
    }

    /// Smallest y coordinate covered by the rectangle.
    #[must_use]
    pub fn min_y(&self) -> Coord {
        self.min_y
    }

    /// Largest y coordinate covered by the rectangle.
    #[must_use]
    pub fn max_y(&self) -> Coord {
        self.max_y
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> Coord {
        self.l() * self.b()
    }

    /// Length of the rectangle's diagonal. Used by the *C-Rep-L* bounds
    /// (§7.9): the replication distance is a multiple of the maximum diagonal
    /// over a relation.
    #[must_use]
    pub fn diagonal(&self) -> Coord {
        let l = self.l();
        let b = self.b();
        (l * l + b * b).sqrt()
    }

    /// The center of the rectangle.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Closed containment test for a point.
    #[must_use]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Closed containment test for another rectangle.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// The paper's `Overlap(r1, r2)` predicate (§1.2): true iff the closed
    /// rectangles share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The rectangular intersection of two rectangles, or `None` if they do
    /// not overlap. A shared edge or corner yields a degenerate (zero-area)
    /// rectangle — its start point drives duplicate avoidance (§5.2).
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::from_extents(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        ))
    }

    /// Minimum Euclidean distance between the closed rectangles (0 when they
    /// overlap).
    #[must_use]
    pub fn distance(&self, other: &Rect) -> Coord {
        self.distance_sq(other).sqrt()
    }

    /// Squared minimum distance between the closed rectangles.
    #[must_use]
    pub fn distance_sq(&self, other: &Rect) -> Coord {
        let dx = axis_gap(self.min_x, self.max_x, other.min_x, other.max_x);
        let dy = axis_gap(self.min_y, self.max_y, other.min_y, other.max_y);
        dx * dx + dy * dy
    }

    /// Minimum distance from the closed rectangle to a point.
    #[must_use]
    pub fn distance_to_point(&self, p: &Point) -> Coord {
        let dx = axis_gap(self.min_x, self.max_x, p.x, p.x);
        let dy = axis_gap(self.min_y, self.max_y, p.y, p.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The paper's `Range(r1, r2, d)` predicate (§1.2): true iff some point of
    /// `self` is within distance `d` of some point of `other`.
    #[must_use]
    pub fn within_distance(&self, other: &Rect, d: Coord) -> bool {
        self.distance_sq(other) <= d * d
    }

    /// Enlarges the rectangle by `d` units on every side (§5.3): the top-left
    /// vertex moves to `(x - d, y + d)` and the bottom-right vertex to
    /// `(x2 + d, y2 - d)`.
    ///
    /// `r1.within_distance(r2, d)` implies `r1.enlarge(d).overlaps(r2)` (but
    /// not conversely — the enlarged overlap is the *filter*, the distance
    /// check the *refinement*).
    #[must_use]
    pub fn enlarge(&self, d: Coord) -> Rect {
        assert!(d >= 0.0, "enlargement distance must be non-negative");
        Rect::from_extents(
            self.min_x - d,
            self.min_y - d,
            self.max_x + d,
            self.max_y + d,
        )
    }

    /// Enlarges the rectangle by factor `k` keeping its center fixed
    /// (§7.8.6): each side is scaled by `k`.
    #[must_use]
    pub fn enlarge_factor(&self, k: Coord) -> Rect {
        assert!(k >= 0.0, "enlargement factor must be non-negative");
        let gx = self.l() * (k - 1.0) / 2.0;
        let gy = self.b() * (k - 1.0) / 2.0;
        Rect::from_extents(
            self.min_x - gx,
            self.min_y - gy,
            self.max_x + gx,
            self.max_y + gy,
        )
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::from_extents(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }
}

/// Gap between closed intervals `[a_lo, a_hi]` and `[b_lo, b_hi]` (0 if they
/// intersect).
fn axis_gap(a_lo: Coord, a_hi: Coord, b_lo: Coord, b_hi: Coord) -> Coord {
    (b_lo - a_hi).max(a_lo - b_hi).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x: Coord, y: Coord, l: Coord, b: Coord) -> Rect {
        Rect::new(x, y, l, b)
    }

    #[test]
    fn extents_follow_top_left_convention() {
        let a = r(10.0, 20.0, 4.0, 6.0);
        assert_eq!(a.min_x(), 10.0);
        assert_eq!(a.max_x(), 14.0);
        assert_eq!(a.max_y(), 20.0);
        assert_eq!(a.min_y(), 14.0);
        assert_eq!((a.x(), a.y(), a.l(), a.b()), (10.0, 20.0, 4.0, 6.0));
        assert_eq!(a.start_point(), Point::new(10.0, 20.0));
        assert_eq!(a.area(), 24.0);
    }

    #[test]
    fn from_corners_normalizes_order() {
        let a = Rect::from_corners(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(a, r(1.0, 5.0, 4.0, 4.0));
    }

    #[test]
    fn from_bounds_is_bit_exact_and_validated() {
        let a = Rect::from_bounds(-0.0, 1.0, 0.0, 2.0).unwrap();
        assert_eq!(a.min_x().to_bits(), (-0.0f64).to_bits());
        assert_eq!(a.max_x().to_bits(), 0.0f64.to_bits());
        assert!(Rect::from_bounds(1.0, 0.0, 0.0, 1.0).is_none());
        assert!(Rect::from_bounds(f64::NAN, 0.0, 1.0, 1.0).is_none());
        assert!(Rect::from_bounds(0.0, f64::INFINITY, 1.0, f64::INFINITY).is_none());
    }

    #[test]
    fn overlap_is_closed_at_shared_edge() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        let edge = r(5.0, 10.0, 5.0, 5.0); // shares the x = 5 edge
        let corner = r(5.0, 5.0, 5.0, 5.0); // shares only the (5, 5) corner
        let apart = r(5.1, 10.0, 5.0, 5.0);
        assert!(a.overlaps(&edge));
        assert!(a.overlaps(&corner));
        assert!(!a.overlaps(&apart));
    }

    #[test]
    fn intersection_of_touching_rects_is_degenerate() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        let b = r(5.0, 10.0, 5.0, 5.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.l(), 0.0);
        assert_eq!(i.start_point(), Point::new(5.0, 10.0));
    }

    #[test]
    fn intersection_matches_paper_figure2_example() {
        // Figure 2(a): the overlapping area of r3 and r4 starts in cell 14;
        // here we only check the intersection geometry logic.
        let r3 = r(1.0, 4.0, 4.0, 3.0);
        let r4 = r(3.0, 3.0, 4.0, 2.0);
        let o = r3.intersection(&r4).unwrap();
        assert_eq!(o, r(3.0, 3.0, 2.0, 2.0));
    }

    #[test]
    fn distance_zero_when_overlapping() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        let b = r(3.0, 8.0, 5.0, 5.0);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_axis_aligned_gap() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        let b = r(8.0, 10.0, 5.0, 5.0);
        assert_eq!(a.distance(&b), 3.0);
    }

    #[test]
    fn distance_diagonal_gap() {
        let a = r(0.0, 10.0, 2.0, 2.0); // covers [0,2] x [8,10]
        let b = r(5.0, 4.0, 2.0, 2.0); // covers [5,7] x [2,4]
        assert_eq!(a.distance(&b), 5.0); // gap (3, 4)
    }

    #[test]
    fn within_distance_is_closed() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        let b = r(8.0, 10.0, 5.0, 5.0);
        assert!(a.within_distance(&b, 3.0));
        assert!(!a.within_distance(&b, 2.999));
    }

    #[test]
    fn distance_to_point_inside_and_outside() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        assert_eq!(a.distance_to_point(&Point::new(2.0, 7.0)), 0.0);
        assert_eq!(a.distance_to_point(&Point::new(8.0, 7.0)), 3.0);
    }

    #[test]
    fn enlarge_moves_both_corners() {
        let a = r(10.0, 20.0, 4.0, 6.0);
        let e = a.enlarge(2.0);
        assert_eq!(e, r(8.0, 22.0, 8.0, 10.0));
    }

    #[test]
    fn enlarge_factor_keeps_center() {
        let a = r(10.0, 20.0, 4.0, 6.0);
        let e = a.enlarge_factor(2.0);
        assert_eq!(e.center(), a.center());
        assert_eq!(e.l(), 8.0);
        assert_eq!(e.b(), 12.0);
    }

    #[test]
    fn enlarge_factor_one_is_identity() {
        let a = r(10.0, 20.0, 4.0, 6.0);
        assert_eq!(a.enlarge_factor(1.0), a);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 10.0, 2.0, 2.0);
        let b = r(5.0, 4.0, 2.0, 2.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, 10.0, 7.0, 8.0));
    }

    #[test]
    fn contains_point_closed() {
        let a = r(0.0, 10.0, 5.0, 5.0);
        assert!(a.contains_point(&Point::new(0.0, 5.0)));
        assert!(a.contains_point(&Point::new(5.0, 10.0)));
        assert!(!a.contains_point(&Point::new(5.0001, 10.0)));
    }

    #[test]
    fn diagonal_is_hypotenuse() {
        assert_eq!(r(0.0, 0.0, 3.0, 4.0).diagonal(), 5.0);
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (
            -1000.0..1000.0f64,
            -1000.0..1000.0f64,
            0.0..500.0f64,
            0.0..500.0f64,
        )
            .prop_map(|(x, y, l, b)| Rect::new(x, y, l, b))
    }

    proptest! {
        #[test]
        fn prop_overlap_symmetric(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn prop_distance_symmetric(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.distance_sq(&b), b.distance_sq(&a));
        }

        #[test]
        fn prop_overlap_iff_distance_zero(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.overlaps(&b), a.distance_sq(&b) == 0.0);
        }

        #[test]
        fn prop_range_implies_enlarged_overlap(a in arb_rect(), b in arb_rect(), d in 0.0..200.0f64) {
            // §5.3: if r1 and r2 are within distance d then r2 overlaps
            // r1.enlarge(d). (The converse need not hold.)
            if a.within_distance(&b, d) {
                prop_assert!(a.enlarge(d).overlaps(&b));
            }
        }

        #[test]
        fn prop_enlarged_overlap_bounds_distance(a in arb_rect(), b in arb_rect(), d in 0.0..200.0f64) {
            // The filter over-approximation is bounded: enlarged overlap
            // implies the rectangles are within sqrt(2) * d.
            if a.enlarge(d).overlaps(&b) {
                prop_assert!(a.distance(&b) <= d * 2.0f64.sqrt() + 1e-9);
            }
        }

        #[test]
        fn prop_intersection_commutes(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        }

        #[test]
        fn prop_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
            }
        }

        #[test]
        fn prop_union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn prop_enlarge_monotone(a in arb_rect(), d1 in 0.0..100.0f64, d2 in 0.0..100.0f64) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(a.enlarge(hi).contains_rect(&a.enlarge(lo)));
        }

        #[test]
        fn prop_distance_bounded_by_center_distance(a in arb_rect(), b in arb_rect()) {
            // The rect distance never exceeds the distance between centers.
            prop_assert!(a.distance(&b) <= a.center().distance(&b.center()) + 1e-9);
        }

        #[test]
        fn prop_paper_form_roundtrip(a in arb_rect()) {
            let back = Rect::new(a.x(), a.y(), a.l(), a.b());
            // Corner representation means x/y roundtrip exactly; l/b may
            // differ by float re-association but extents stay within 1 ulp.
            prop_assert_eq!(back.min_x(), a.min_x());
            prop_assert_eq!(back.max_y(), a.max_y());
            prop_assert!((back.max_x() - a.max_x()).abs() <= 1e-9 * (1.0 + a.max_x().abs()));
            prop_assert!((back.min_y() - a.min_y()).abs() <= 1e-9 * (1.0 + a.min_y().abs()));
        }
    }
}
