use mwsj_geom::{Coord, Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of a partition-cell.
///
/// Cells are numbered row-major from the **top-left**, starting at 0 (the
/// paper numbers them from 1; its Figure 2 cell *k* is `CellId(k - 1)`).
/// One reducer handles one cell, so a `CellId` doubles as a reducer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// The paper's 1-based cell number (for cross-checking worked examples).
    #[must_use]
    pub fn paper_number(self) -> u32 {
        self.0 + 1
    }

    /// Builds a `CellId` from the paper's 1-based cell number.
    #[must_use]
    pub fn from_paper_number(n: u32) -> Self {
        assert!(n >= 1, "paper cell numbers start at 1");
        CellId(n - 1)
    }
}

/// A rectilinear partitioning of the space `[x0, xn] × [y0, yn]` into
/// `cols × rows` equal cells (§4; the paper's experiments use an 8×8 grid
/// for 64 reducers).
///
/// Rows are numbered top-down and columns left-right, so the paper's
/// "4th quadrant w.r.t. a rectangle" (cells with `c.x ≥ c_u.x` and
/// `c.y ≤ c_u.y`) is exactly the set of cells with `col ≥ col(c_u)` and
/// `row ≥ row(c_u)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    x0: Coord,
    xn: Coord,
    y0: Coord,
    yn: Coord,
    cols: u32,
    rows: u32,
    cell_w: Coord,
    cell_h: Coord,
}

impl Grid {
    /// Creates a grid over `[x0, xn] × [y0, yn]` with `cols × rows` cells.
    ///
    /// # Panics
    /// Panics if the ranges are empty or the cell counts are zero.
    #[must_use]
    pub fn new(x_range: (Coord, Coord), y_range: (Coord, Coord), cols: u32, rows: u32) -> Self {
        let (x0, xn) = x_range;
        let (y0, yn) = y_range;
        assert!(xn > x0 && yn > y0, "empty space extent");
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        Self {
            x0,
            xn,
            y0,
            yn,
            cols,
            rows,
            cell_w: (xn - x0) / Coord::from(cols),
            cell_h: (yn - y0) / Coord::from(rows),
        }
    }

    /// Square grid with `side × side` cells — the paper divides each axis in
    /// `sqrt(k)` partitions for `k` reducers (§5.1).
    #[must_use]
    pub fn square(x_range: (Coord, Coord), y_range: (Coord, Coord), side: u32) -> Self {
        Self::new(x_range, y_range, side, side)
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of partition-cells (= reducers).
    #[must_use]
    pub fn num_cells(&self) -> u32 {
        self.cols * self.rows
    }

    /// The exact `(x0, xn)` range the grid was constructed with — the
    /// round-trip accessor for serializing grid geometry ([`Grid::extent`]
    /// re-derives corners through rectangle arithmetic, which need not be
    /// bit-exact).
    #[must_use]
    pub fn x_range(&self) -> (Coord, Coord) {
        (self.x0, self.xn)
    }

    /// The exact `(y0, yn)` range the grid was constructed with.
    #[must_use]
    pub fn y_range(&self) -> (Coord, Coord) {
        (self.y0, self.yn)
    }

    /// The full space extent as a rectangle.
    #[must_use]
    pub fn extent(&self) -> Rect {
        Rect::new(self.x0, self.yn, self.xn - self.x0, self.yn - self.y0)
    }

    /// Cell id for `(col, row)` indices.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn cell_at(&self, col: u32, row: u32) -> CellId {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of range"
        );
        CellId(row * self.cols + col)
    }

    /// Column index of a cell.
    #[must_use]
    pub fn col_of(&self, cell: CellId) -> u32 {
        cell.0 % self.cols
    }

    /// Row index of a cell (0 = top row).
    #[must_use]
    pub fn row_of(&self, cell: CellId) -> u32 {
        cell.0 / self.cols
    }

    /// Column index containing coordinate `x` under the half-open rule
    /// (`[lo, hi)`, global right edge closed).
    #[must_use]
    pub fn col_of_x(&self, x: Coord) -> u32 {
        debug_assert!(x >= self.x0 && x <= self.xn, "x = {x} outside the space");
        let idx = ((x - self.x0) / self.cell_w).floor();
        (idx as i64).clamp(0, i64::from(self.cols) - 1) as u32
    }

    /// Row index containing coordinate `y`. A point on a horizontal boundary
    /// belongs to the cell **below** (a rectangle starting there has its body
    /// below the boundary); the global bottom edge is closed.
    #[must_use]
    pub fn row_of_y(&self, y: Coord) -> u32 {
        debug_assert!(y >= self.y0 && y <= self.yn, "y = {y} outside the space");
        let idx = ((self.yn - y) / self.cell_h).floor();
        (idx as i64).clamp(0, i64::from(self.rows) - 1) as u32
    }

    /// The cell containing a point.
    #[must_use]
    pub fn cell_of_point(&self, p: &Point) -> CellId {
        self.cell_at(self.col_of_x(p.x), self.row_of_y(p.y))
    }

    /// The *cell of a rectangle* (§4): the cell containing its start point.
    #[must_use]
    pub fn cell_of(&self, r: &Rect) -> CellId {
        self.cell_of_point(&r.start_point())
    }

    /// The closed rectangular extent of a cell.
    #[must_use]
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let col = self.col_of(cell);
        let row = self.row_of(cell);
        let x = self.x0 + Coord::from(col) * self.cell_w;
        let y = self.yn - Coord::from(row) * self.cell_h;
        Rect::new(x, y, self.cell_w, self.cell_h)
    }

    /// Whether the closed rectangle intersects the cell's half-open region
    /// ("has at least one point in common" in the paper's split definition,
    /// made boundary-exact; see the crate docs).
    #[must_use]
    pub fn rect_overlaps_cell(&self, r: &Rect, cell: CellId) -> bool {
        let c = self.cell_rect(cell);
        let col = self.col_of(cell);
        let row = self.row_of(cell);
        // x axis: region [lo, hi), last column closed at xn.
        let x_ok = r.max_x() >= c.min_x()
            && (r.min_x() < c.max_x() || (col == self.cols - 1 && r.min_x() <= c.max_x()));
        // y axis: region open at the top, closed at the bottom boundary; the
        // top row is closed at yn.
        let y_ok = r.min_y() <= c.max_y()
            && (r.max_y() > c.min_y() || (row == self.rows - 1 && r.max_y() >= c.min_y()));
        x_ok && y_ok
    }

    /// Whether the rectangle crosses the boundary of `cell`, i.e. overlaps at
    /// least one other cell. This is the overlap-predicate crossing test of
    /// condition C2 (§7.4).
    #[must_use]
    pub fn rect_crosses_cell(&self, r: &Rect, cell: CellId) -> bool {
        let c = self.cell_rect(cell);
        let col = self.col_of(cell);
        let row = self.row_of(cell);
        // Crosses right: some part of the closed rect lies in the next
        // column's region [hi, ...). Crosses down: some part lies below
        // (y <= min_y of the cell, belonging to the region of the row below).
        let crosses_right = col + 1 < self.cols && r.max_x() >= c.max_x();
        let crosses_down = row + 1 < self.rows && r.min_y() <= c.min_y();
        let crosses_left = r.min_x() < c.min_x();
        let crosses_up = r.max_y() > c.max_y();
        crosses_right || crosses_down || crosses_left || crosses_up
    }

    /// Minimum distance between a cell (closed extent) and a rectangle —
    /// `dist(c, r)` of equation (2). Using the closed extent only ever
    /// over-approximates cell membership, which is the safe direction for
    /// every use in the paper (replication and C2 checks send *more*, never
    /// fewer, rectangles).
    #[must_use]
    pub fn cell_distance(&self, cell: CellId, r: &Rect) -> Coord {
        self.cell_rect(cell).distance(r)
    }

    /// Whether some cell **other than** `cell` lies within distance `d` of
    /// the rectangle — the range-predicate crossing test of condition C2 for
    /// range joins (§8).
    #[must_use]
    pub fn other_cell_within(&self, r: &Rect, cell: CellId, d: Coord) -> bool {
        // The nearest other cell is always one of the neighbours of the cells
        // the enlarged rectangle touches; scanning the cells overlapping
        // r.enlarge(d) is exact and cheap.
        let e = r.enlarge(d);
        let (c0, c1, r0, r1) = self.index_span(&e);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let cand = self.cell_at(col, row);
                if cand != cell && self.cell_distance(cand, r) <= d {
                    return true;
                }
            }
        }
        false
    }

    /// Iterator over every cell in the grid, row-major.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells()).map(CellId)
    }

    /// Inclusive `(col_lo, col_hi, row_lo, row_hi)` index span of the cells a
    /// rectangle can interact with (clamped to the grid).
    fn index_span(&self, r: &Rect) -> (u32, u32, u32, u32) {
        let clamp_x = |x: Coord| x.clamp(self.x0, self.xn);
        let clamp_y = |y: Coord| y.clamp(self.y0, self.yn);
        let c0 = self.col_of_x(clamp_x(r.min_x()));
        let c1 = self.col_of_x(clamp_x(r.max_x()));
        let r0 = self.row_of_y(clamp_y(r.max_y()));
        let r1 = self.row_of_y(clamp_y(r.min_y()));
        (c0, c1, r0, r1)
    }

    /// All cells overlapped by the rectangle (the **split** target set, §4).
    #[must_use]
    pub fn split_cells(&self, r: &Rect) -> Vec<CellId> {
        let (c0, c1, r0, r1) = self.index_span(r);
        let mut out = Vec::with_capacity(((c1 - c0 + 1) * (r1 - r0 + 1)) as usize);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let cell = self.cell_at(col, row);
                if self.rect_overlaps_cell(r, cell) {
                    out.push(cell);
                }
            }
        }
        out
    }

    /// All cells in the 4th quadrant w.r.t. the rectangle (the **replicate**
    /// target set with function `f1`, §4): cells with `col ≥ col(c_u)` and
    /// `row ≥ row(c_u)` where `c_u` is the rectangle's cell.
    #[must_use]
    pub fn fourth_quadrant_cells(&self, r: &Rect) -> Vec<CellId> {
        let cu = self.cell_of(r);
        let (col0, row0) = (self.col_of(cu), self.row_of(cu));
        let mut out = Vec::with_capacity(((self.cols - col0) * (self.rows - row0)) as usize);
        for row in row0..self.rows {
            for col in col0..self.cols {
                out.push(self.cell_at(col, row));
            }
        }
        out
    }

    /// Replicate target set with function `f2` (§4): 4th-quadrant cells
    /// within distance `d` of the rectangle.
    #[must_use]
    pub fn fourth_quadrant_cells_within(&self, r: &Rect, d: Coord) -> Vec<CellId> {
        let cu = self.cell_of(r);
        let (col0, row0) = (self.col_of(cu), self.row_of(cu));
        let mut out = Vec::new();
        for row in row0..self.rows {
            // Once an entire row is beyond distance d we can stop: row
            // distance grows monotonically going down.
            let mut row_hit = false;
            for col in col0..self.cols {
                let cell = self.cell_at(col, row);
                if self.cell_distance(cell, r) <= d {
                    out.push(cell);
                    row_hit = true;
                } else if row_hit {
                    // Distance grows monotonically moving right past the
                    // rectangle; no further cell in this row qualifies.
                    break;
                }
            }
            if !row_hit && row > self.row_of_y(r.min_y().clamp(self.y0, self.yn)) {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's Figure 2(a) grid: 4×4 cells over [0, 8] × [0, 8] (cell
    /// numbers 1..16 row-major from top-left).
    fn fig2_grid() -> Grid {
        Grid::square((0.0, 8.0), (0.0, 8.0), 4)
    }

    #[test]
    fn cell_numbering_is_row_major_from_top_left() {
        let g = fig2_grid();
        assert_eq!(g.cell_at(0, 0).paper_number(), 1);
        assert_eq!(g.cell_at(3, 0).paper_number(), 4);
        assert_eq!(g.cell_at(0, 1).paper_number(), 5);
        assert_eq!(g.cell_at(3, 3).paper_number(), 16);
        assert_eq!(g.num_cells(), 16);
    }

    #[test]
    fn cell_rect_geometry() {
        let g = fig2_grid();
        // Cell 6 = (col 1, row 1): x in [2, 4], y in [4, 6].
        let c6 = CellId::from_paper_number(6);
        assert_eq!(g.cell_rect(c6), Rect::new(2.0, 6.0, 2.0, 2.0));
    }

    #[test]
    fn cell_of_point_interior() {
        let g = fig2_grid();
        assert_eq!(g.cell_of_point(&Point::new(3.0, 5.0)).paper_number(), 6);
        assert_eq!(g.cell_of_point(&Point::new(0.5, 7.5)).paper_number(), 1);
        assert_eq!(g.cell_of_point(&Point::new(7.9, 0.1)).paper_number(), 16);
    }

    #[test]
    fn boundary_point_goes_right_and_down() {
        let g = fig2_grid();
        // x = 2 is the boundary between columns 0 and 1 -> column 1.
        assert_eq!(g.cell_of_point(&Point::new(2.0, 7.0)).paper_number(), 2);
        // y = 6 is the boundary between rows 0 and 1 -> row 1 (below).
        assert_eq!(g.cell_of_point(&Point::new(1.0, 6.0)).paper_number(), 5);
        // Both at once.
        assert_eq!(g.cell_of_point(&Point::new(2.0, 6.0)).paper_number(), 6);
    }

    #[test]
    fn global_edges_are_closed() {
        let g = fig2_grid();
        assert_eq!(g.cell_of_point(&Point::new(8.0, 8.0)).paper_number(), 4);
        assert_eq!(g.cell_of_point(&Point::new(8.0, 0.0)).paper_number(), 16);
        assert_eq!(g.cell_of_point(&Point::new(0.0, 0.0)).paper_number(), 13);
    }

    #[test]
    fn split_cells_interior_rect() {
        let g = fig2_grid();
        // A rectangle inside cell 6 only.
        let r = Rect::new(2.5, 5.5, 1.0, 1.0);
        let cells: Vec<u32> = g.split_cells(&r).iter().map(|c| c.paper_number()).collect();
        assert_eq!(cells, vec![6]);
    }

    #[test]
    fn split_cells_spanning_rect() {
        let g = fig2_grid();
        // Spans columns 1-2 and rows 1-2: cells 6, 7, 10, 11.
        let r = Rect::new(3.0, 5.0, 2.0, 2.0);
        let cells: Vec<u32> = g.split_cells(&r).iter().map(|c| c.paper_number()).collect();
        assert_eq!(cells, vec![6, 7, 10, 11]);
    }

    #[test]
    fn split_touching_boundary_from_left_reaches_right_cell() {
        let g = fig2_grid();
        // max_x = 4.0 exactly on the col 1 / col 2 boundary: the rectangle's
        // right edge lies in column 2's region.
        let r = Rect::new(3.0, 5.5, 1.0, 0.5);
        let cells: Vec<u32> = g.split_cells(&r).iter().map(|c| c.paper_number()).collect();
        assert_eq!(cells, vec![6, 7]);
    }

    #[test]
    fn split_touching_bottom_boundary_reaches_lower_cell() {
        let g = fig2_grid();
        // min_y = 4.0 exactly on the row 1 / row 2 boundary: the bottom edge
        // lies in row 2's region.
        let r = Rect::new(2.5, 5.0, 1.0, 1.0);
        let cells: Vec<u32> = g.split_cells(&r).iter().map(|c| c.paper_number()).collect();
        assert_eq!(cells, vec![6, 10]);
    }

    #[test]
    fn split_starting_on_boundary_stays_right() {
        let g = fig2_grid();
        let r = Rect::new(4.0, 5.5, 1.0, 0.5);
        let cells: Vec<u32> = g.split_cells(&r).iter().map(|c| c.paper_number()).collect();
        assert_eq!(cells, vec![7]);
    }

    #[test]
    fn rect_crosses_cell_detects_all_directions() {
        let g = fig2_grid();
        let c6 = CellId::from_paper_number(6);
        // Entirely inside cell 6.
        assert!(!g.rect_crosses_cell(&Rect::new(2.5, 5.5, 1.0, 1.0), c6));
        // Extends right into cell 7.
        assert!(g.rect_crosses_cell(&Rect::new(3.0, 5.0, 2.0, 1.0), c6));
        // Extends down into cell 10.
        assert!(g.rect_crosses_cell(&Rect::new(2.5, 5.0, 1.0, 2.0), c6));
        // Touches the right boundary: its edge lies in cell 7's region.
        assert!(g.rect_crosses_cell(&Rect::new(3.0, 5.0, 1.0, 1.0), c6));
    }

    #[test]
    fn fourth_quadrant_matches_figure2() {
        // Figure 2(a): r1 starts in cell 6; its 4th quadrant is cells 6-8,
        // 10-12, 14-16.
        let g = fig2_grid();
        let r1 = Rect::new(3.0, 5.5, 2.0, 1.0);
        assert_eq!(g.cell_of(&r1).paper_number(), 6);
        let cells: Vec<u32> = g
            .fourth_quadrant_cells(&r1)
            .iter()
            .map(|c| c.paper_number())
            .collect();
        assert_eq!(cells, vec![6, 7, 8, 10, 11, 12, 14, 15, 16]);
    }

    #[test]
    fn cell_distance_zero_when_overlapping() {
        let g = fig2_grid();
        let r = Rect::new(2.5, 5.5, 1.0, 1.0);
        assert_eq!(g.cell_distance(CellId::from_paper_number(6), &r), 0.0);
        assert!(g.cell_distance(CellId::from_paper_number(16), &r) > 0.0);
    }

    #[test]
    fn replicate_f2_limits_distance() {
        // Figure 2(c): replicate with f2 returns cells 6, 7, 10, 11 for a
        // suitable d — 4th-quadrant cells within distance d of r1.
        let g = fig2_grid();
        let r1 = Rect::new(3.0, 5.5, 2.0, 1.0);
        let d = 0.6; // reaches one cell right/down but not further
        let cells: Vec<u32> = g
            .fourth_quadrant_cells_within(&r1, d)
            .iter()
            .map(|c| c.paper_number())
            .collect();
        assert_eq!(cells, vec![6, 7, 10, 11]);
    }

    #[test]
    fn other_cell_within_detects_neighbours() {
        let g = fig2_grid();
        let c6 = CellId::from_paper_number(6);
        // Rectangle in the middle of cell 6 (0.5 from every boundary).
        let r = Rect::new(2.5, 5.5, 1.0, 1.0);
        assert!(!g.other_cell_within(&r, c6, 0.4));
        assert!(g.other_cell_within(&r, c6, 0.5));
    }

    fn arb_rect_in(extent: Coord) -> impl Strategy<Value = Rect> {
        (
            0.0..extent,
            0.0..extent,
            0.0..extent / 2.0,
            0.0..extent / 2.0,
        )
            .prop_map(move |(x, y, l, b)| {
                let l = l.min(extent - x);
                let b = b.min(y);
                Rect::new(x, y, l, b)
            })
    }

    proptest! {
        #[test]
        fn prop_cell_of_is_in_split_set(r in arb_rect_in(100.0)) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let cu = g.cell_of(&r);
            prop_assert!(g.split_cells(&r).contains(&cu));
        }

        #[test]
        fn prop_split_subset_of_fourth_quadrant(r in arb_rect_in(100.0)) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let quad = g.fourth_quadrant_cells(&r);
            for c in g.split_cells(&r) {
                prop_assert!(quad.contains(&c), "split cell {c:?} outside 4th quadrant");
            }
        }

        #[test]
        fn prop_split_matches_overlap_scan(r in arb_rect_in(100.0)) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let split = g.split_cells(&r);
            for c in g.cells() {
                prop_assert_eq!(split.contains(&c), g.rect_overlaps_cell(&r, c));
            }
        }

        #[test]
        fn prop_cell_regions_partition_points(x in 0.0..100.0f64, y in 0.0..100.0f64) {
            // Every point belongs to exactly one cell via cell_of_point, and
            // the zero-size rectangle at that point overlaps that cell.
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let cell = g.cell_of_point(&Point::new(x, y));
            let degenerate = Rect::new(x, y, 0.0, 0.0);
            prop_assert!(g.rect_overlaps_cell(&degenerate, cell));
        }

        #[test]
        fn prop_f2_subset_of_f1_and_distance_bound(r in arb_rect_in(100.0), d in 0.0..50.0f64) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let f1 = g.fourth_quadrant_cells(&r);
            let f2 = g.fourth_quadrant_cells_within(&r, d);
            for c in &f2 {
                prop_assert!(f1.contains(c));
                prop_assert!(g.cell_distance(*c, &r) <= d);
            }
            // And every f1 cell within d is in f2 (no false pruning).
            for c in &f1 {
                if g.cell_distance(*c, &r) <= d {
                    prop_assert!(f2.contains(c));
                }
            }
        }

        #[test]
        fn prop_crossing_iff_split_count(r in arb_rect_in(100.0)) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let cu = g.cell_of(&r);
            let split = g.split_cells(&r);
            // The rectangle crosses its own cell iff it overlaps another cell.
            prop_assert_eq!(g.rect_crosses_cell(&r, cu), split.len() > 1);
        }

        #[test]
        fn prop_other_cell_within_matches_scan(r in arb_rect_in(100.0), d in 0.0..40.0f64) {
            let g = Grid::square((0.0, 100.0), (0.0, 100.0), 8);
            let cu = g.cell_of(&r);
            let expect = g.cells().any(|c| c != cu && g.cell_distance(c, &r) <= d);
            prop_assert_eq!(g.other_cell_within(&r, cu, d), expect);
        }
    }
}
