use mwsj_geom::{Coord, Rect};
use serde::{Deserialize, Serialize};

use crate::{CellId, Grid};

/// An intermediate key-value pair: the key is the partition-cell (routing the
/// value to one reducer), the value is the payload (typically a rectangle
/// with provenance). The number of such pairs is the paper's communication
/// cost metric.
pub type KvPair<V> = (CellId, V);

/// The transform operations of §4, each mapping a rectangle to the set of
/// cells (reducers) it must be communicated to.
///
/// * `Project` — the single cell containing the start point;
/// * `Split` — every cell sharing a point with the rectangle;
/// * `ReplicateF1` — every cell in the 4th quadrant w.r.t. the rectangle
///   (function `f1`);
/// * `ReplicateF2 { d }` — 4th-quadrant cells within distance `d` (function
///   `f2`, used by *C-Rep-L*);
/// * `SplitEnlarged { d }` — every cell overlapping the rectangle enlarged by
///   `d` units (the 2-way range-join routing of §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Send to the cell of the rectangle's start point.
    Project,
    /// Send to every cell the rectangle overlaps.
    Split,
    /// Send to every 4th-quadrant cell (replication function `f1`).
    ReplicateF1,
    /// Send to every 4th-quadrant cell within distance `d` (function `f2`).
    ReplicateF2 {
        /// Maximum replication distance.
        d: Coord,
    },
    /// Send to every cell overlapping the rectangle enlarged by `d`.
    SplitEnlarged {
        /// Enlargement distance.
        d: Coord,
    },
}

impl Transform {
    /// The cells a rectangle is communicated to under this transform.
    #[must_use]
    pub fn target_cells(&self, r: &Rect, grid: &Grid) -> Vec<CellId> {
        match *self {
            Transform::Project => vec![grid.cell_of(r)],
            Transform::Split => grid.split_cells(r),
            Transform::ReplicateF1 => grid.fourth_quadrant_cells(r),
            Transform::ReplicateF2 { d } => grid.fourth_quadrant_cells_within(r, d),
            Transform::SplitEnlarged { d } => {
                let enlarged = r.enlarge(d);
                // Clamp to the grid extent: enlargement may leave the space.
                grid.split_cells(&clamp_to(&enlarged, &grid.extent()))
            }
        }
    }

    /// Applies the transform to a rectangle, emitting one key-value pair per
    /// target cell via `emit`.
    pub fn apply<V: Clone>(
        &self,
        r: &Rect,
        value: &V,
        grid: &Grid,
        mut emit: impl FnMut(KvPair<V>),
    ) {
        for cell in self.target_cells(r, grid) {
            emit((cell, value.clone()));
        }
    }
}

/// Clamps a rectangle to an extent (non-empty intersection assumed: every
/// data rectangle lies inside the space, so its enlargement always intersects
/// the extent).
fn clamp_to(r: &Rect, extent: &Rect) -> Rect {
    r.intersection(extent)
        .expect("enlarged rectangle must intersect the space extent")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2(a)/(c) of the paper: 4×4 grid over [0, 8]², rectangle r1
    /// starting in cell 6 and extending into cell 7.
    fn fig2() -> (Grid, Rect) {
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
        let r1 = Rect::new(3.0, 5.5, 1.5, 1.0);
        (grid, r1)
    }

    fn numbers(cells: &[CellId]) -> Vec<u32> {
        cells.iter().map(|c| c.paper_number()).collect()
    }

    #[test]
    fn figure2_project() {
        let (grid, r1) = fig2();
        assert_eq!(
            numbers(&Transform::Project.target_cells(&r1, &grid)),
            vec![6]
        );
    }

    #[test]
    fn figure2_split() {
        let (grid, r1) = fig2();
        assert_eq!(
            numbers(&Transform::Split.target_cells(&r1, &grid)),
            vec![6, 7]
        );
    }

    #[test]
    fn figure2_replicate_f1() {
        let (grid, r1) = fig2();
        assert_eq!(
            numbers(&Transform::ReplicateF1.target_cells(&r1, &grid)),
            vec![6, 7, 8, 10, 11, 12, 14, 15, 16]
        );
    }

    #[test]
    fn figure2_replicate_f2() {
        let (grid, r1) = fig2();
        // With d reaching one cell over, f2 returns cells 6, 7, 10, 11 as in
        // Figure 2(c).
        let cells = Transform::ReplicateF2 { d: 0.5 }.target_cells(&r1, &grid);
        assert_eq!(numbers(&cells), vec![6, 7, 10, 11]);
    }

    #[test]
    fn figure2b_split_enlarged() {
        // Figure 2(b): r1 enlarged by d overlaps cells 2-4, 6-8 and 10-12.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
        let r1 = Rect::new(3.0, 5.5, 2.5, 1.0);
        let d = 1.0; // pushes the enlarged rect into rows 0 and 2, columns 1-3
        let cells = Transform::SplitEnlarged { d }.target_cells(&r1, &grid);
        assert_eq!(numbers(&cells), vec![2, 3, 4, 6, 7, 8, 10, 11, 12]);
    }

    #[test]
    fn enlarged_split_clamps_to_space() {
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
        // A rectangle in the top-left corner: enlargement leaves the space.
        let r = Rect::new(0.1, 7.9, 0.5, 0.5);
        let cells = Transform::SplitEnlarged { d: 3.0 }.target_cells(&r, &grid);
        assert!(!cells.is_empty());
        assert!(cells.iter().all(|c| c.0 < grid.num_cells()));
    }

    #[test]
    fn apply_emits_one_pair_per_cell() {
        let (grid, r1) = fig2();
        let mut pairs = Vec::new();
        Transform::Split.apply(&r1, &"payload", &grid, |kv| pairs.push(kv));
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.paper_number(), 6);
        assert_eq!(pairs[1].0.paper_number(), 7);
    }
}
