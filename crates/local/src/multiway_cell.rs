//! The reducer-side variant of the multi-way matcher with **designated-cell
//! pruning**.
//!
//! In the single-round join (All-Replicate) and in round 2 of
//! Controlled-Replicate, many reducers hold every member of the same output
//! tuple; only the *designated cell* of §6.2 — the cell containing
//! `(u_r.x, u_l.y)` — may emit it. Running the plain matcher and filtering
//! afterwards enumerates each tuple once **per receiving reducer**; with
//! heavy replication that multiplies the join work by the replication
//! factor.
//!
//! This variant pushes the designated-cell test *into* the backtracking:
//! as members bind, `max(start x)` only grows and `min(start y)` only
//! shrinks, so the designated point's column index and row index are both
//! monotonically non-decreasing. The moment a partial assignment's
//! designated column or row exceeds this reducer's cell, no extension can
//! designate this cell and the branch is cut.
//!
//! **Finding** (see the `ablation_pruning` bench): under 4th-quadrant
//! delivery the partial bound never fires — every delivered rectangle
//! starts at-or-left-above the reducer's cell, so partial extrema cannot
//! exceed it — and the check is pure overhead (~15%). The distributed
//! algorithms therefore use the plain matcher plus post-filter, which is
//! also what the paper's reducers do; this module remains as the measured
//! ablation and for grids/delivery schemes where the bound can fire
//! (e.g. split-based delivery).

use mwsj_geom::{Coord, Rect};
use mwsj_partition::{CellId, Grid};
use mwsj_query::{JoinPlan, PlanStep, Query, RelationId};
use mwsj_rtree::RTree;

use crate::LocalRect;

/// Finds every consistent full tuple whose §6.2 designated cell is `cell`,
/// calling `emit` once per tuple with one `(rect, id)` per relation
/// position. Equivalent to running
/// [`crate::multiway::multiway_join`] and keeping the tuples whose
/// designated cell matches — but prunes those branches early.
pub fn multiway_join_at_cell(
    query: &Query,
    relations: &[Vec<LocalRect>],
    grid: &Grid,
    cell: CellId,
    mut emit: impl FnMut(&[LocalRect]),
) {
    let n = query.num_relations();
    assert_eq!(
        relations.len(),
        n,
        "one rectangle set per relation position"
    );
    if relations.iter().any(Vec::is_empty) {
        return;
    }

    let trees: Vec<RTree<u32>> = relations
        .iter()
        .map(|rel| {
            RTree::bulk_load(
                rel.iter()
                    .enumerate()
                    .map(|(i, (r, _))| (*r, i as u32))
                    .collect(),
            )
        })
        .collect();

    // Same precompiled bind order as the kernel behind the plain matcher:
    // per-depth probe and verify edges resolved once.
    let start = (0..n)
        .min_by_key(|&i| relations[i].len())
        .map(|i| RelationId(i as u16))
        .expect("non-empty query");
    let plan = JoinPlan::compile(query, start);
    debug_assert_eq!(plan.len(), n);

    // Precompute the designated-cell test as pure float comparisons. With
    // the half-open region semantics, `col(px) == cell_col` iff
    // `px ∈ [x_lo, x_hi)` (closed at the space edge for the last column),
    // and `row(py) == cell_row` iff `py ∈ (y_lo, y_hi]` (closed at the
    // bottom edge for the last row). The partial test only needs the upper
    // bounds (columns/rows are monotone as members bind).
    let cell_rect = grid.cell_rect(cell);
    let last_col = grid.col_of(cell) + 1 == grid.cols();
    let last_row = grid.row_of(cell) + 1 == grid.rows();
    let bounds = CellBounds {
        x_lo: cell_rect.min_x(),
        x_hi: cell_rect.max_x(),
        y_lo: cell_rect.min_y(),
        y_hi: cell_rect.max_y(),
        last_col,
        last_row,
        extent: grid.extent(),
    };

    struct CellBounds {
        x_lo: Coord,
        x_hi: Coord,
        y_lo: Coord,
        y_hi: Coord,
        last_col: bool,
        last_row: bool,
        extent: Rect,
    }

    impl CellBounds {
        /// Can a partial assignment with these extrema still designate the
        /// cell?
        #[inline]
        fn partial_ok(&self, frame: &Frame) -> bool {
            let px = frame.max_start_x;
            let py = frame.min_start_y;
            (self.last_col || px < self.x_hi || px == Coord::NEG_INFINITY)
                && (self.last_row || py > self.y_lo || py == Coord::INFINITY)
        }

        /// Does a full assignment designate the cell?
        #[inline]
        fn full_ok(&self, frame: &Frame) -> bool {
            let px = frame
                .max_start_x
                .clamp(self.extent.min_x(), self.extent.max_x());
            let py = frame
                .min_start_y
                .clamp(self.extent.min_y(), self.extent.max_y());
            let x_ok = px >= self.x_lo && (px < self.x_hi || (self.last_col && px <= self.x_hi));
            let y_ok = py <= self.y_hi && (py > self.y_lo || (self.last_row && py >= self.y_lo));
            x_ok && y_ok
        }
    }

    struct Ctx<'a, F> {
        steps: &'a [PlanStep],
        relations: &'a [Vec<LocalRect>],
        trees: &'a [RTree<u32>],
        bounds: CellBounds,
        emit: F,
    }

    struct Frame {
        max_start_x: Coord,
        min_start_y: Coord,
    }

    impl Frame {
        fn extend(&self, r: &Rect) -> Frame {
            Frame {
                max_start_x: self.max_start_x.max(r.x()),
                min_start_y: self.min_start_y.min(r.y()),
            }
        }
    }

    fn recurse<F: FnMut(&[LocalRect])>(
        ctx: &mut Ctx<'_, F>,
        depth: usize,
        frame: Frame,
        tuple: &mut Vec<LocalRect>,
        bufs: &mut [Vec<u32>],
    ) {
        if depth == ctx.steps.len() {
            if ctx.bounds.full_ok(&frame) {
                (ctx.emit)(tuple);
            }
            return;
        }
        let step = &ctx.steps[depth];
        let v = step.relation.index();
        // Each depth reuses its own candidate buffer across sibling probes
        // (`query_within_into` clears it); deeper depths use the rest.
        let (mine, rest) = bufs.split_first_mut().expect("one buffer per depth");
        match &step.probe {
            None => {
                mine.clear();
                mine.extend(0..ctx.relations[v].len() as u32);
            }
            Some(probe) => {
                let probe_rect = tuple[probe.from.index()].0;
                ctx.trees[v].query_within_into(&probe_rect, probe.predicate.distance(), mine);
            }
        }
        for &idx in mine.iter() {
            let (rect, id) = ctx.relations[v][idx as usize];
            let next = frame.extend(&rect);
            if !ctx.bounds.partial_ok(&next) {
                continue;
            }
            let ok = step.verify.iter().all(|e| {
                let other = &tuple[e.against.index()].0;
                if e.candidate_is_left {
                    e.predicate.eval(&rect, other)
                } else {
                    e.predicate.eval(other, &rect)
                }
            });
            if !ok {
                continue;
            }
            tuple[v] = (rect, id);
            recurse(ctx, depth + 1, next, tuple, rest);
        }
    }

    let mut tuple: Vec<LocalRect> = vec![(Rect::new(0.0, 0.0, 0.0, 0.0), 0); n];
    let mut bufs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut ctx = Ctx {
        steps: plan.steps(),
        relations,
        trees: &trees,
        bounds,
        emit: &mut emit,
    };
    let root = Frame {
        max_start_x: Coord::NEG_INFINITY,
        min_start_y: Coord::INFINITY,
    };
    recurse(&mut ctx, 0, root, &mut tuple, &mut bufs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiway;
    use mwsj_local_test_util::*;

    // Shared small helpers (kept local to this module).
    mod mwsj_local_test_util {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub fn random_relation(n: usize, seed: u64, side: f64) -> Vec<LocalRect> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|i| {
                    (
                        Rect::new(
                            rng.random_range(0.0..300.0),
                            rng.random_range(side..300.0),
                            rng.random_range(0.0..side),
                            rng.random_range(0.0..side),
                        ),
                        i as u32,
                    )
                })
                .collect()
        }
    }

    fn check_equivalence(query: &Query, relations: &[Vec<LocalRect>], grid: &Grid) {
        // Union over all cells of the pruned matcher == plain matcher
        // filtered by designated cell; and each tuple appears exactly once
        // across cells.
        let mut pruned: Vec<(u32, Vec<u32>)> = Vec::new();
        for cell in grid.cells() {
            multiway_join_at_cell(query, relations, grid, cell, |tuple| {
                pruned.push((cell.0, tuple.iter().map(|&(_, id)| id).collect()));
            });
        }
        let mut expected: Vec<(u32, Vec<u32>)> = Vec::new();
        multiway::multiway_join(query, relations, |tuple| {
            let rects: Vec<Rect> = tuple.iter().map(|&(r, _)| r).collect();
            let cell = crate::dedup::multiway_tuple_cell(grid, &rects);
            expected.push((cell.0, tuple.iter().map(|&(_, id)| id).collect()));
        });
        pruned.sort();
        expected.sort();
        assert_eq!(pruned, expected);
        // Exactly-once across all cells.
        let mut ids: Vec<&Vec<u32>> = pruned.iter().map(|(_, t)| t).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "a tuple was emitted by two cells");
    }

    #[test]
    fn pruned_matcher_equals_filtered_matcher_overlap() {
        let q = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        let rels = vec![
            random_relation(40, 1, 30.0),
            random_relation(40, 2, 30.0),
            random_relation(40, 3, 30.0),
        ];
        let grid = Grid::square((0.0, 300.0), (0.0, 300.0), 4);
        check_equivalence(&q, &rels, &grid);
    }

    #[test]
    fn pruned_matcher_equals_filtered_matcher_range() {
        let q = Query::builder()
            .range("R1", "R2", 20.0)
            .range("R2", "R3", 20.0)
            .build()
            .unwrap();
        let rels = vec![
            random_relation(30, 4, 15.0),
            random_relation(30, 5, 15.0),
            random_relation(30, 6, 15.0),
        ];
        let grid = Grid::square((0.0, 300.0), (0.0, 300.0), 8);
        check_equivalence(&q, &rels, &grid);
    }

    #[test]
    fn pruned_matcher_equals_filtered_matcher_star() {
        let q = Query::builder()
            .overlap("C", "L1")
            .overlap("C", "L2")
            .build()
            .unwrap();
        let rels = vec![
            random_relation(25, 7, 40.0),
            random_relation(25, 8, 40.0),
            random_relation(25, 9, 40.0),
        ];
        let grid = Grid::square((0.0, 300.0), (0.0, 300.0), 2);
        check_equivalence(&q, &rels, &grid);
    }

    #[test]
    fn single_cell_grid_emits_everything() {
        let q = Query::builder().overlap("A", "B").build().unwrap();
        let rels = vec![random_relation(30, 10, 50.0), random_relation(30, 11, 50.0)];
        let grid = Grid::square((0.0, 300.0), (0.0, 300.0), 1);
        let mut count = 0;
        multiway_join_at_cell(&q, &rels, &grid, CellId(0), |_| count += 1);
        assert_eq!(count, multiway::multiway_join_ids(&q, &rels).len());
    }
}
