//! The reducer-local multi-way join: find every tuple (one rectangle per
//! relation position) satisfying all of a query's predicates.
//!
//! The paper leaves the reducer-side algorithm unspecified; this is a
//! window-reduction backtracking matcher in the spirit of Mamoulis &
//! Papadias' multiway spatial joins: relations are bound in a BFS order of
//! the join graph, each extension is driven by an index probe from an
//! already-bound neighbor (the tightest incident predicate), and all other
//! predicates to bound relations are verified before extending further.
//!
//! [`multiway_join`] executes on the precompiled, allocation-free
//! [`crate::kernel::JoinKernel`]; jobs running many reducer groups build
//! the kernel once and call it directly. [`multiway_join_naive`] keeps the
//! original recursive implementation — per-call R-trees, dynamic probe
//! selection, a fresh candidate `Vec` per probe — as the comparison
//! reference for the equivalence tests and the old-vs-new micro-bench.
//! [`brute_force_join`] is the quadratic-or-worse oracle used by the test
//! suites to validate both matchers and every distributed algorithm.

use mwsj_geom::Rect;
use mwsj_query::{Query, RelationId};
use mwsj_rtree::RTree;

use crate::kernel::JoinKernel;
use crate::LocalRect;

/// Finds every consistent full tuple over the local relations and calls
/// `emit` with one `(rect, id)` per relation position, in position order.
///
/// `relations[i]` holds the local rectangles of query position `i`.
///
/// Compiles a [`JoinKernel`] per call; callers joining many groups under
/// one query should build the kernel once and use
/// [`JoinKernel::execute`].
pub fn multiway_join(query: &Query, relations: &[Vec<LocalRect>], emit: impl FnMut(&[LocalRect])) {
    JoinKernel::new(query).execute(relations, emit);
}

/// The pre-kernel recursive matcher, kept as an independent reference:
/// same bind order and probe selection as the kernel, but resolved
/// dynamically per node with per-probe allocations. Emits the same tuple
/// set as [`multiway_join`] (candidate order within a probe may differ —
/// the kernel scans small relations linearly instead of through a tree).
pub fn multiway_join_naive(
    query: &Query,
    relations: &[Vec<LocalRect>],
    mut emit: impl FnMut(&[LocalRect]),
) {
    let n = query.num_relations();
    assert_eq!(
        relations.len(),
        n,
        "one rectangle set per relation position"
    );
    if relations.iter().any(Vec::is_empty) {
        return;
    }

    // Index every relation; payload = position in the input vector.
    let trees: Vec<RTree<u32>> = relations
        .iter()
        .map(|rel| {
            RTree::bulk_load(
                rel.iter()
                    .enumerate()
                    .map(|(i, (r, _))| (*r, i as u32))
                    .collect(),
            )
        })
        .collect();

    // Bind relations in BFS order from the smallest relation: each later
    // relation has at least one bound neighbor to probe from.
    let graph = query.graph();
    let start = (0..n)
        .min_by_key(|&i| relations[i].len())
        .map(|i| RelationId(i as u16))
        .expect("non-empty query");
    let order = graph.bfs_order(start);
    debug_assert_eq!(order.len(), n, "query graphs are connected");

    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut tuple: Vec<LocalRect> = vec![(Rect::new(0.0, 0.0, 0.0, 0.0), 0); n];

    struct Ctx<'a, F> {
        graph: &'a mwsj_query::JoinGraph,
        relations: &'a [Vec<LocalRect>],
        trees: &'a [RTree<u32>],
        order: &'a [RelationId],
        emit: F,
    }

    fn recurse<F: FnMut(&[LocalRect])>(
        ctx: &mut Ctx<'_, F>,
        depth: usize,
        assignment: &mut Vec<Option<u32>>,
        tuple: &mut Vec<LocalRect>,
    ) {
        if depth == ctx.order.len() {
            (ctx.emit)(tuple);
            return;
        }
        let v = ctx.order[depth];
        if depth == 0 {
            // First relation: every rectangle is a seed.
            for (idx, &(rect, id)) in ctx.relations[v.index()].iter().enumerate() {
                assignment[v.index()] = Some(idx as u32);
                tuple[v.index()] = (rect, id);
                recurse(ctx, depth + 1, assignment, tuple);
            }
            assignment[v.index()] = None;
            return;
        }
        // Probe from the bound neighbor whose predicate is tightest (the
        // smallest distance parameter filters hardest).
        let probe = ctx
            .graph
            .neighbors(v)
            .iter()
            .filter(|(u, _, _)| assignment[u.index()].is_some())
            .min_by(|(_, p1, _), (_, p2, _)| p1.distance().total_cmp(&p2.distance()))
            .copied();
        let Some((u, pred, _)) = probe else {
            // Unreachable for connected queries: BFS order guarantees a
            // bound neighbor.
            unreachable!("BFS order leaves no relation without a bound neighbor");
        };
        let probe_rect = tuple[u.index()].0;
        // Collect candidate indices first (the tree probe borrows ctx).
        let mut candidates: Vec<u32> = Vec::new();
        ctx.trees[v.index()].query_within(&probe_rect, pred.distance(), |_, &idx| {
            candidates.push(idx);
        });
        for idx in candidates {
            let (rect, id) = ctx.relations[v.index()][idx as usize];
            // Verify every predicate between v and all bound relations
            // (including parallel edges to u beyond the probe predicate).
            // `forward` orients asymmetric predicates: this entry lists v
            // as the triple's left side when forward is true.
            let ok =
                ctx.graph
                    .neighbors(v)
                    .iter()
                    .all(|&(w, p, forward)| match assignment[w.index()] {
                        Some(_) => p.eval_oriented(&rect, &tuple[w.index()].0, !forward),
                        None => true,
                    });
            if !ok {
                continue;
            }
            assignment[v.index()] = Some(idx);
            tuple[v.index()] = (rect, id);
            recurse(ctx, depth + 1, assignment, tuple);
            assignment[v.index()] = None;
        }
    }

    let mut ctx = Ctx {
        graph: &graph,
        relations,
        trees: &trees,
        order: &order,
        emit: &mut emit,
    };
    recurse(&mut ctx, 0, &mut assignment, &mut tuple);
}

/// Convenience wrapper collecting result tuples as id vectors (one id per
/// relation position).
#[must_use]
pub fn multiway_join_ids(query: &Query, relations: &[Vec<LocalRect>]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    multiway_join(query, relations, |tuple| {
        out.push(tuple.iter().map(|&(_, id)| id).collect());
    });
    out
}

/// [`multiway_join_ids`] over the naive reference matcher.
#[must_use]
pub fn multiway_join_ids_naive(query: &Query, relations: &[Vec<LocalRect>]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    multiway_join_naive(query, relations, |tuple| {
        out.push(tuple.iter().map(|&(_, id)| id).collect());
    });
    out
}

/// Exhaustive nested-loop oracle: every combination of one rectangle per
/// relation is checked against all predicates. Exponential — tests only.
#[must_use]
pub fn brute_force_join(query: &Query, relations: &[Vec<LocalRect>]) -> Vec<Vec<u32>> {
    let n = query.num_relations();
    assert_eq!(relations.len(), n);
    if relations.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices = vec![0usize; n];
    'outer: loop {
        let tuple: Vec<Rect> = indices
            .iter()
            .enumerate()
            .map(|(rel, &i)| relations[rel][i].0)
            .collect();
        if query.satisfied_by(&tuple) {
            out.push(
                indices
                    .iter()
                    .enumerate()
                    .map(|(rel, &i)| relations[rel][i].1)
                    .collect(),
            );
        }
        // Odometer increment.
        for rel in (0..n).rev() {
            indices[rel] += 1;
            if indices[rel] < relations[rel].len() {
                continue 'outer;
            }
            indices[rel] = 0;
            if rel == 0 {
                break 'outer;
            }
        }
    }
    out
}

/// Normalizes result tuples for comparison in tests.
#[must_use]
pub fn normalized(mut tuples: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    tuples.sort();
    tuples.dedup();
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_query::Query;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_relation(n: usize, seed: u64, side: f64) -> Vec<LocalRect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..300.0),
                        rng.random_range(side..300.0),
                        rng.random_range(0.0..side),
                        rng.random_range(0.0..side),
                    ),
                    i as u32,
                )
            })
            .collect()
    }

    fn chain3() -> Query {
        Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap()
    }

    /// Both matchers against the brute-force oracle, and against each
    /// other.
    fn check_all(q: &Query, rels: &[Vec<LocalRect>]) {
        let want = normalized(brute_force_join(q, rels));
        assert_eq!(normalized(multiway_join_ids(q, rels)), want);
        assert_eq!(normalized(multiway_join_ids_naive(q, rels)), want);
    }

    #[test]
    fn matches_brute_force_overlap_chain() {
        let q = chain3();
        let rels = vec![
            random_relation(40, 1, 30.0),
            random_relation(40, 2, 30.0),
            random_relation(40, 3, 30.0),
        ];
        assert!(
            !brute_force_join(&q, &rels).is_empty(),
            "test should exercise non-empty output"
        );
        check_all(&q, &rels);
    }

    #[test]
    fn matches_brute_force_range_chain() {
        let q = Query::builder()
            .range("R1", "R2", 15.0)
            .range("R2", "R3", 15.0)
            .build()
            .unwrap();
        let rels = vec![
            random_relation(30, 4, 10.0),
            random_relation(30, 5, 10.0),
            random_relation(30, 6, 10.0),
        ];
        check_all(&q, &rels);
    }

    #[test]
    fn matches_brute_force_hybrid_chain4() {
        let q = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", 20.0)
            .overlap("R3", "R4")
            .build()
            .unwrap();
        let rels = vec![
            random_relation(20, 7, 25.0),
            random_relation(20, 8, 25.0),
            random_relation(20, 9, 25.0),
            random_relation(20, 10, 25.0),
        ];
        check_all(&q, &rels);
    }

    #[test]
    fn matches_brute_force_cycle() {
        let q = Query::builder()
            .overlap("A", "B")
            .overlap("B", "C")
            .overlap("C", "A")
            .build()
            .unwrap();
        let rels = vec![
            random_relation(30, 11, 40.0),
            random_relation(30, 12, 40.0),
            random_relation(30, 13, 40.0),
        ];
        check_all(&q, &rels);
    }

    #[test]
    fn parallel_edges_all_enforced() {
        // Overlap AND Range(5): both must hold -> equals plain overlap
        // intersected with the range condition.
        let q = Query::builder()
            .overlap("A", "B")
            .range("A", "B", 5.0)
            .build()
            .unwrap();
        let rels = vec![random_relation(50, 14, 20.0), random_relation(50, 15, 20.0)];
        check_all(&q, &rels);
    }

    #[test]
    fn empty_relation_gives_empty_result() {
        let q = chain3();
        let rels = vec![
            random_relation(10, 1, 20.0),
            Vec::new(),
            random_relation(10, 2, 20.0),
        ];
        assert!(multiway_join_ids(&q, &rels).is_empty());
        assert!(multiway_join_ids_naive(&q, &rels).is_empty());
    }

    #[test]
    fn no_duplicate_tuples_emitted() {
        let q = chain3();
        let rels = vec![
            random_relation(30, 21, 40.0),
            random_relation(30, 22, 40.0),
            random_relation(30, 23, 40.0),
        ];
        let got = multiway_join_ids(&q, &rels);
        let deduped = normalized(got.clone());
        assert_eq!(got.len(), deduped.len());
    }

    #[test]
    fn star_query_matches_oracle() {
        let q = Query::builder()
            .overlap("C", "L1")
            .overlap("C", "L2")
            .overlap("C", "L3")
            .build()
            .unwrap();
        let rels = vec![
            random_relation(15, 31, 50.0),
            random_relation(15, 32, 50.0),
            random_relation(15, 33, 50.0),
            random_relation(15, 34, 50.0),
        ];
        check_all(&q, &rels);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matcher_equals_oracle(
            a in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..15),
            b in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..15),
            c in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..15),
            d in 0.0..30.0f64,
        ) {
            let to_rel = |v: Vec<(f64, f64, f64, f64)>| -> Vec<LocalRect> {
                v.into_iter().enumerate()
                    .map(|(i, (x, y, l, b))| (Rect::new(x, y, l, b), i as u32))
                    .collect()
            };
            let rels = vec![to_rel(a), to_rel(b), to_rel(c)];
            let q = Query::builder()
                .overlap("R1", "R2")
                .range("R2", "R3", d)
                .build()
                .unwrap();
            let want = normalized(brute_force_join(&q, &rels));
            prop_assert_eq!(&normalized(multiway_join_ids(&q, &rels)), &want);
            prop_assert_eq!(normalized(multiway_join_ids_naive(&q, &rels)), want);
        }
    }
}
