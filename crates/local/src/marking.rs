//! The round-1 *Controlled-Replicate* marking procedure (§7.4).
//!
//! Reducer `c` receives every rectangle split onto cell `c` and must decide
//! which of them to replicate. The paper defines the marked set through
//! rectangle-sets `U` (one rectangle per relation of a relation-subset
//! `R_s`) satisfying:
//!
//! * **C1** — `U` is *consistent*: all query predicates between relations
//!   of `R_s` hold among the members (§7.3);
//! * **C2** — every member whose relation has a join condition to a
//!   relation **outside** `R_s` *crosses* cell `c` (overlap predicate:
//!   overlaps another cell; range `d`: some other cell within distance `d`,
//!   §8; hybrid queries take the per-edge condition, §9);
//! * **C3** — at least one such outside pair exists;
//! * **C4** — `U` is maximal.
//!
//! `uS_c` is the union of all such sets; rectangles of `uS_c` that *start*
//! in `c` are replicated.
//!
//! # Algorithm
//!
//! The paper specifies the conditions but no enumeration procedure. Two
//! observations make the computation tractable (proofs in the comments):
//!
//! 1. **C4 does not change the union.** Every set satisfying C1-C3 is
//!    contained in some maximal such set, so the union over C1-C4 sets
//!    equals the union over C1-C3 sets and maximality never needs to be
//!    checked.
//! 2. **Only connected relation-subsets matter.** If `R_s` induces a
//!    disconnected subgraph of the (connected) join graph, restricting `U`
//!    to the component of any member changes neither that member's C2
//!    obligations (components share no internal edges) nor C3 (a proper
//!    subset of a connected graph always has an outside edge). So a
//!    rectangle is in `uS_c` iff it belongs to a consistent,
//!    C2-satisfying set over a **connected proper** subset containing its
//!    relation.
//!
//! For each connected proper subset `S` the procedure filters each member
//! relation's rectangles by their C2 crossing obligations and then runs an
//! **arc-consistency fixpoint** (semi-join reduction) over the predicates
//! internal to `S`: a rectangle survives iff every internal edge offers at
//! least one supporting partner. On tree-shaped subsets (all subsets of
//! the paper's chain queries) arc consistency is exact — every survivor
//! extends to a full consistent set. On cyclic subsets it may keep a
//! rectangle that belongs to no full set; that only **over**-marks, which
//! is always safe (a replicated rectangle reaches a superset of the cells
//! a projected one does) and never misses a mark.

use mwsj_geom::Rect;
use mwsj_partition::{CellId, Grid};
use mwsj_query::{Predicate, Query, RelationId};
use mwsj_rtree::RTree;

use crate::LocalRect;

/// Computes, for every local rectangle, whether it belongs to `uS_c` — the
/// union of rectangle-sets satisfying conditions C1-C4 at cell `cell`.
///
/// `relations[i]` holds the rectangles of relation position `i` that were
/// split onto this cell. The returned flags are aligned with the input
/// (`flags[i][j]` corresponds to `relations[i][j]`). The round-1 reducer
/// replicates flagged rectangles **that start in `cell`**; membership is
/// reported for all so the caller owns that filter.
#[must_use]
pub fn mark_for_replication(
    query: &Query,
    grid: &Grid,
    cell: CellId,
    relations: &[Vec<LocalRect>],
) -> Vec<Vec<bool>> {
    let n = query.num_relations();
    assert_eq!(
        relations.len(),
        n,
        "one rectangle set per relation position"
    );
    let graph = query.graph();
    let mut marked: Vec<Vec<bool>> = relations.iter().map(|r| vec![false; r.len()]).collect();

    for mask in graph.connected_subsets(true) {
        debug_assert!(
            graph.has_outside_edge(mask),
            "a proper subset of a connected graph has an outside edge (C3)"
        );

        // C2 pre-filter: candidate lists per relation in S.
        let mut candidates: Vec<(RelationId, Vec<u32>)> = Vec::new();
        let mut empty = false;
        for rel in query.relations() {
            if mask & (1 << rel.index()) == 0 {
                continue;
            }
            let obligations = graph.outside_edges(rel, mask);
            let list: Vec<u32> = relations[rel.index()]
                .iter()
                .enumerate()
                .filter(|(_, (rect, _))| {
                    obligations
                        .iter()
                        .all(|p| crosses_for_predicate(grid, cell, rect, *p))
                })
                .map(|(i, _)| i as u32)
                .collect();
            if list.is_empty() {
                empty = true;
                break;
            }
            candidates.push((rel, list));
        }
        if empty {
            continue;
        }

        // C1 via arc-consistency over the predicates internal to S.
        arc_consistency(query, relations, mask, &mut candidates);
        if candidates.iter().any(|(_, list)| list.is_empty()) {
            continue;
        }
        for (rel, list) in &candidates {
            for &i in list {
                marked[rel.index()][i as usize] = true;
            }
        }
    }
    marked
}

/// The C2 crossing test for one predicate (§7.4 for overlap, §8 for range,
/// §9 takes the union for hybrid queries).
fn crosses_for_predicate(grid: &Grid, cell: CellId, rect: &Rect, p: Predicate) -> bool {
    match p {
        // Containment implies overlap, so its crossing obligation is the
        // overlap one (§9's per-edge union extends naturally).
        Predicate::Overlap | Predicate::Contains => grid.rect_crosses_cell(rect, cell),
        Predicate::Range(d) => grid.other_cell_within(rect, cell, d),
    }
}

/// Prunes candidate lists to arc consistency: a rectangle survives iff for
/// every internal edge of `mask` incident to its relation there exists a
/// supporting partner among the other relation's survivors.
/// Predicates between one (ordered) relation pair; `flipped` records that
/// the triple listed the pair as (b, a), so asymmetric predicates keep
/// their orientation.
type PairPredicates = Vec<(Predicate, bool)>;

fn arc_consistency(
    query: &Query,
    relations: &[Vec<LocalRect>],
    mask: u32,
    candidates: &mut [(RelationId, Vec<u32>)],
) {
    // Internal constraint per relation pair: the conjunction of all
    // parallel predicates between them.
    let pairs: Vec<(RelationId, RelationId, PairPredicates)> = {
        let mut pairs: Vec<(RelationId, RelationId, PairPredicates)> = Vec::new();
        for t in query.triples() {
            let (a, b, flipped) = if t.left < t.right {
                (t.left, t.right, false)
            } else {
                (t.right, t.left, true)
            };
            if mask & (1 << a.index()) == 0 || mask & (1 << b.index()) == 0 {
                continue;
            }
            if let Some(entry) = pairs.iter_mut().find(|(x, y, _)| (*x, *y) == (a, b)) {
                entry.2.push((t.predicate, flipped));
            } else {
                pairs.push((a, b, vec![(t.predicate, flipped)]));
            }
        }
        pairs
    };
    if pairs.is_empty() {
        return; // Singleton subset: nothing internal to check.
    }

    let slot_of = |rel: RelationId, candidates: &[(RelationId, Vec<u32>)]| {
        candidates
            .iter()
            .position(|(r, _)| *r == rel)
            .expect("relation in subset")
    };

    loop {
        let mut changed = false;
        for &(a, b, ref preds) in &pairs {
            // The loosest probe distance that any support must satisfy;
            // every predicate is then verified exactly.
            let probe_d = preds
                .iter()
                .map(|(p, _)| p.distance())
                .fold(f64::INFINITY, f64::min);
            for (from, to) in [(a, b), (b, a)] {
                let from_slot = slot_of(from, candidates);
                let to_slot = slot_of(to, candidates);
                // Index the current survivors of `to`.
                let tree = RTree::bulk_load(
                    candidates[to_slot]
                        .1
                        .iter()
                        .map(|&i| (relations[to.index()][i as usize].0, ()))
                        .collect(),
                );
                let before = candidates[from_slot].1.len();
                let from_rel = from.index();
                let kept: Vec<u32> = candidates[from_slot]
                    .1
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let rect = relations[from_rel][i as usize].0;
                        // `rect` belongs to `from`; a predicate stored as
                        // (a -> b, flipped) evaluates left = a. When probing
                        // from b, the arguments swap once more.
                        let probing_from_a = from == a;
                        let mut supported = false;
                        tree.query_within(&rect, probe_d, |partner, ()| {
                            if !supported
                                && preds.iter().all(|&(p, flipped)| {
                                    p.eval_oriented(&rect, partner, flipped == probing_from_a)
                                })
                            {
                                supported = true;
                            }
                        });
                        supported
                    })
                    .collect();
                if kept.len() != before {
                    changed = true;
                    candidates[from_slot].1 = kept;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_query::Query;

    /// Figure 5 of the paper: a 2x2 grid and the chain query Q1
    /// (R1 Ov R2 and R2 Ov R3 and R3 Ov R4). Relations R1..R4 hold the
    /// u, v, w, x rectangles. The geometry below reproduces every relation
    /// the worked example states.
    struct Fig5 {
        grid: Grid,
        query: Query,
        u: Vec<LocalRect>,
        v: Vec<LocalRect>,
        w: Vec<LocalRect>,
        x: Vec<LocalRect>,
    }

    #[allow(clippy::too_many_lines)]
    fn fig5() -> Fig5 {
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let query = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .overlap("R3", "R4")
            .build()
            .unwrap();
        // Ids are 1-based to match the paper's subscripts (u1 = id 1, ...).
        let u = vec![
            (Rect::new(0.5, 7.5, 0.5, 0.5), 1), // u1: isolated, inside c1
            (Rect::new(1.5, 6.0, 0.8, 0.8), 2), // u2: overlaps v3, inside c1
            (Rect::new(2.2, 3.8, 0.6, 0.6), 3), // u3: starts in c3, overlaps v3
        ];
        let v = vec![
            (Rect::new(0.4, 6.8, 0.4, 0.4), 1), // v1: isolated, inside c1
            (Rect::new(3.2, 4.9, 0.6, 0.4), 2), // v2: overlaps w1, does NOT cross
            (Rect::new(2.0, 6.5, 1.2, 3.0), 3), // v3: crosses into c3
            (Rect::new(3.5, 7.5, 1.0, 0.5), 4), // v4: crosses into c2, joins nothing
        ];
        let w = vec![
            (Rect::new(3.0, 5.0, 2.0, 2.0), 1), // w1: crosses all four cells
            (Rect::new(0.3, 5.2, 0.5, 0.8), 2), // w2: isolated, inside c1
        ];
        let x = vec![
            (Rect::new(4.5, 4.8, 0.4, 0.4), 1), // x1: in c2, overlaps w1
            (Rect::new(3.4, 4.6, 0.4, 0.4), 2), // x2: in c1, overlaps w1
        ];
        Fig5 {
            grid,
            query,
            u,
            v,
            w,
            x,
        }
    }

    /// Restricts relations to the rectangles split onto `cell`.
    fn at_cell(f: &Fig5, cell: CellId) -> Vec<Vec<LocalRect>> {
        [&f.u, &f.v, &f.w, &f.x]
            .iter()
            .map(|rel| {
                rel.iter()
                    .filter(|(r, _)| f.grid.split_cells(r).contains(&cell))
                    .copied()
                    .collect()
            })
            .collect()
    }

    fn marked_ids(relations: &[Vec<LocalRect>], flags: &[Vec<bool>]) -> Vec<Vec<u32>> {
        relations
            .iter()
            .zip(flags)
            .map(|(rel, fl)| {
                rel.iter()
                    .zip(fl)
                    .filter(|(_, &m)| m)
                    .map(|(&(_, id), _)| id)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn geometry_reproduces_the_output_tuples() {
        // Sanity: exactly the four tuples the paper lists are the join
        // output of the full data.
        let f = fig5();
        let rels = vec![f.u.clone(), f.v.clone(), f.w.clone(), f.x.clone()];
        let got = crate::multiway::normalized(crate::multiway::brute_force_join(&f.query, &rels));
        assert_eq!(
            got,
            vec![
                vec![2, 3, 1, 1], // (u2, v3, w1, x1)
                vec![2, 3, 1, 2], // (u2, v3, w1, x2)
                vec![3, 3, 1, 1], // (u3, v3, w1, x1)
                vec![3, 3, 1, 2], // (u3, v3, w1, x2)
            ]
        );
    }

    #[test]
    fn figure5_reducer_c1_receives_the_stated_rectangles() {
        let f = fig5();
        let c1 = CellId::from_paper_number(1);
        let local = at_cell(&f, c1);
        // §7.7: reducer c1 receives u1, u2 | v1, v2, v3, v4 | w1, w2 — and
        // x2 (it participates in US_c1's set (v3, w1, x2)).
        let ids: Vec<Vec<u32>> = local
            .iter()
            .map(|rel| rel.iter().map(|&(_, id)| id).collect())
            .collect();
        assert_eq!(ids[0], vec![1, 2]);
        assert_eq!(ids[1], vec![1, 2, 3, 4]);
        assert_eq!(ids[2], vec![1, 2]);
        assert_eq!(ids[3], vec![2]);
    }

    #[test]
    fn figure5_marking_at_c1() {
        // §7.7: uS_c1 = {u2, v3, v4, w1, x2}; u1, v1, v2, w2 stay unmarked.
        let f = fig5();
        let c1 = CellId::from_paper_number(1);
        let local = at_cell(&f, c1);
        let flags = mark_for_replication(&f.query, &f.grid, c1, &local);
        assert_eq!(
            marked_ids(&local, &flags),
            vec![vec![2], vec![3, 4], vec![1], vec![2]]
        );
    }

    #[test]
    fn figure5_marking_at_c3() {
        // §7.7: at reducer c3 the set (u3, v3) qualifies; u3 starts in c3
        // and is replicated, v3 and w1 are marked but start in c1.
        let f = fig5();
        let c3 = CellId::from_paper_number(3);
        let local = at_cell(&f, c3);
        let flags = mark_for_replication(&f.query, &f.grid, c3, &local);
        let ids = marked_ids(&local, &flags);
        assert!(ids[0].contains(&3), "u3 must be marked at c3: {ids:?}");
        // Replication = marked AND starts in the cell.
        let replicated: Vec<Vec<u32>> = local
            .iter()
            .zip(&flags)
            .map(|(rel, fl)| {
                rel.iter()
                    .zip(fl)
                    .filter(|((r, _), &m)| m && f.grid.cell_of(r) == c3)
                    .map(|(&(_, id), _)| id)
                    .collect()
            })
            .collect();
        assert_eq!(replicated, vec![vec![3], vec![], vec![], vec![]]);
    }

    #[test]
    fn figure7_range_marking() {
        // Figure 7 / §8: Q3 = R1 Ra(d) R2 and R2 Ra(d) R3 on a 2x2 grid.
        // Reducer C1 marks u1 and v1 (v1 is within d of cell C2, and u1 is
        // within d of v1); v2 is not marked — no other cell is within d.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let d = 1.0;
        let query = Query::builder()
            .range("R1", "R2", d)
            .range("R2", "R3", d)
            .build()
            .unwrap();
        let u = vec![(Rect::new(1.9, 7.3, 0.5, 0.5), 1)];
        let v = vec![
            (Rect::new(2.8, 7.0, 0.7, 0.5), 1), // v1: within d of u1 and of C2
            (Rect::new(1.5, 6.0, 0.5, 0.5), 2), // v2: deep inside C1
        ];
        let w: Vec<LocalRect> = Vec::new();
        let c1 = CellId::from_paper_number(1);
        let local = vec![u.clone(), v.clone(), w];
        let flags = mark_for_replication(&query, &grid, c1, &local);
        assert_eq!(flags[0], vec![true], "u1 marked via the set (u1, v1)");
        assert_eq!(flags[1], vec![true, false], "v1 marked, v2 not");
    }

    #[test]
    fn range_marking_does_not_need_the_partner_to_exist() {
        // §8: "even if the rectangle w1 were more than distance d apart
        // from v1, u1 and v1 would have still required to be replicated as
        // reducer C1 has no way to figure that out" — marking is local.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let d = 1.0;
        let query = Query::builder()
            .range("R1", "R2", d)
            .range("R2", "R3", d)
            .build()
            .unwrap();
        let local = vec![
            vec![(Rect::new(1.9, 7.3, 0.5, 0.5), 1)],
            vec![(Rect::new(2.8, 7.0, 0.7, 0.5), 1)],
            Vec::new(), // no R3 rectangle anywhere near
        ];
        let flags = mark_for_replication(&query, &grid, CellId::from_paper_number(1), &local);
        assert_eq!(flags[0], vec![true]);
        assert_eq!(flags[1], vec![true]);
    }

    #[test]
    fn fully_local_tuple_is_not_marked() {
        // Condition C3: a set covering every relation of the query is not
        // marked — the reducer computes the tuple itself in round 2.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let query = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        // A chain of three mutually overlapping rectangles deep inside c1.
        let local = vec![
            vec![(Rect::new(1.0, 7.0, 0.5, 0.5), 1)],
            vec![(Rect::new(1.2, 7.2, 0.5, 0.5), 1)],
            vec![(Rect::new(1.4, 7.0, 0.5, 0.5), 1)],
        ];
        let flags = mark_for_replication(&query, &grid, CellId::from_paper_number(1), &local);
        assert!(flags.iter().flatten().all(|&m| !m), "{flags:?}");
    }

    #[test]
    fn crossing_rectangle_with_no_partner_is_marked_when_singleton_qualifies() {
        // v4 of Figure 5: a crossing rectangle of a middle relation is
        // marked even though it joins nothing locally — the reducer cannot
        // rule out partners elsewhere.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let query = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        let local = vec![
            Vec::new(),
            vec![(Rect::new(3.5, 7.5, 1.0, 0.5), 4)], // crosses into c2
            Vec::new(),
        ];
        let flags = mark_for_replication(&query, &grid, CellId::from_paper_number(1), &local);
        assert_eq!(flags[1], vec![true]);
    }

    #[test]
    fn non_crossing_isolated_rectangle_is_not_marked() {
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 2);
        let query = Query::builder()
            .overlap("R1", "R2")
            .overlap("R2", "R3")
            .build()
            .unwrap();
        let local = vec![
            Vec::new(),
            vec![(Rect::new(1.0, 7.0, 0.5, 0.5), 1)], // interior of c1
            Vec::new(),
        ];
        let flags = mark_for_replication(&query, &grid, CellId::from_paper_number(1), &local);
        assert_eq!(flags[1], vec![false]);
    }

    #[test]
    fn hybrid_query_uses_per_edge_crossing() {
        // §9: Q4 = R1 Ov R2 and R2 Ra(d) R3. An R2 rectangle with only the
        // range edge leading outside needs a cell within d; with only the
        // overlap edge outside it must cross.
        let grid = Grid::square((0.0, 80.0), (0.0, 80.0), 2);
        let d = 5.0;
        let query = Query::builder()
            .overlap("R1", "R2")
            .range("R2", "R3", d)
            .build()
            .unwrap();
        // v near the c1/c2 border (within d of c2 but not crossing), with a
        // local R1 partner overlapping it.
        let v = (Rect::new(36.0, 70.0, 2.0, 2.0), 1);
        let u = (Rect::new(35.0, 70.5, 2.0, 2.0), 1);
        let c1 = CellId::from_paper_number(1);
        // Subset {R1, R2}: outside edge is the range edge R2-R3 -> v needs
        // a cell within d (true: c2 is 2 units away), u has no obligation.
        let local = vec![vec![u], vec![v], Vec::new()];
        let flags = mark_for_replication(&query, &grid, c1, &local);
        assert_eq!(flags[0], vec![true]);
        assert_eq!(flags[1], vec![true]);

        // Move the pair far from every border: the range obligation fails,
        // nothing is marked (u's overlap edge to R2 is satisfied inside S).
        let v_far = (Rect::new(15.0, 60.0, 2.0, 2.0), 1);
        let u_far = (Rect::new(14.0, 60.5, 2.0, 2.0), 1);
        let local = vec![vec![u_far], vec![v_far], Vec::new()];
        let flags = mark_for_replication(&query, &grid, c1, &local);
        assert!(flags.iter().flatten().all(|&m| !m), "{flags:?}");
    }
}
