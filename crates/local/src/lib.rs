//! Reducer-local join algorithms.
//!
//! Once the transforms of `mwsj-partition` have routed rectangles to
//! reducers, each reducer runs purely local computation. This crate
//! implements those local pieces:
//!
//! * [`planesweep`] — the classic 2-way plane-sweep join over two sets of
//!   rectangles (the local step of the 2-way joins of §5);
//! * [`multiway`] — a backtracking matcher that finds every tuple of local
//!   rectangles satisfying a multi-way query (the reducer-side join of
//!   *All-Replicate* and round 2 of *Controlled-Replicate*), plus a
//!   brute-force oracle used throughout the test suites;
//! * [`kernel`] — the precompiled, allocation-free execution engine behind
//!   the matcher: per-depth probe/verify plans, an iterative stack over a
//!   flat candidate arena, SoA rectangle storage with linear-scan probes
//!   for small relations, thread-local scratch;
//! * [`marking`] — the round-1 *Controlled-Replicate* marking procedure:
//!   which rectangles satisfy conditions C1-C4 (§7.4) and must be
//!   replicated;
//! * [`dedup`] — the duplicate-avoidance rules: the overlap-area start
//!   point for 2-way joins (§5.2-5.3) and the
//!   `(u_r.x, u_l.y)` designated cell for multi-way joins (§6.2).
//!
//! Relations are represented positionally: `relations[i]` holds the
//! `(rect, id)` pairs of the rectangles of relation position `i` present at
//! this reducer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dedup;
pub mod kernel;
pub mod marking;
pub mod multiway;
pub mod multiway_cell;
pub mod planesweep;

pub use kernel::JoinKernel;

use mwsj_geom::Rect;

/// A rectangle with its record id, as shipped to reducers. Ids are unique
/// within one relation position.
pub type LocalRect = (Rect, u32);
