//! 2-way plane-sweep rectangle join.
//!
//! The local step of the 2-way joins of §5: given the rectangles of two
//! relations present at one reducer, report every pair within distance `d`
//! (`d = 0` is the overlap join). The sweep runs along the x axis; an
//! entry of one relation is checked against the active x-window of the
//! other. Used both directly by the distributed 2-way joins and as a
//! baseline in the benches (the multi-way matcher subsumes it).

use mwsj_geom::{Coord, Rect};

use crate::LocalRect;

/// Reports every `(id_left, id_right)` with the rectangles within distance
/// `d` of each other (closed; `d = 0` = overlap). Pairs are emitted in
/// arbitrary order, exactly once each.
pub fn sweep_join(
    left: &[LocalRect],
    right: &[LocalRect],
    d: Coord,
    mut emit: impl FnMut(u32, u32, &Rect, &Rect),
) {
    if left.is_empty() || right.is_empty() {
        return;
    }
    // Events sorted by min_x - the sweep enters a rectangle at min_x and
    // retires it once the sweep line passes max_x + d.
    let mut l: Vec<&LocalRect> = left.iter().collect();
    let mut r: Vec<&LocalRect> = right.iter().collect();
    let by_min_x = |a: &&LocalRect, b: &&LocalRect| a.0.min_x().total_cmp(&b.0.min_x());
    l.sort_unstable_by(by_min_x);
    r.sort_unstable_by(by_min_x);

    let mut active_l: Vec<&LocalRect> = Vec::new();
    let mut active_r: Vec<&LocalRect> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() || j < r.len() {
        let next_is_left = match (l.get(i), r.get(j)) {
            (Some(a), Some(b)) => a.0.min_x() <= b.0.min_x(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if next_is_left {
            let cur = l[i];
            i += 1;
            let x = cur.0.min_x();
            active_r.retain(|c| c.0.max_x() + d >= x);
            for cand in &active_r {
                if cur.0.within_distance(&cand.0, d) {
                    emit(cur.1, cand.1, &cur.0, &cand.0);
                }
            }
            active_l.push(cur);
        } else {
            let cur = r[j];
            j += 1;
            let x = cur.0.min_x();
            active_l.retain(|c| c.0.max_x() + d >= x);
            for cand in &active_l {
                if cand.0.within_distance(&cur.0, d) {
                    emit(cand.1, cur.1, &cand.0, &cur.0);
                }
            }
            active_r.push(cur);
        }
    }
}

/// Collects the joined id pairs (convenience wrapper over [`sweep_join`]).
#[must_use]
pub fn sweep_join_pairs(left: &[LocalRect], right: &[LocalRect], d: Coord) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    sweep_join(left, right, d, |a, b, _, _| out.push((a, b)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(left: &[LocalRect], right: &[LocalRect], d: Coord) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (ra, a) in left {
            for (rb, b) in right {
                if ra.within_distance(rb, d) {
                    out.push((*a, *b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn random_set(n: usize, seed: u64) -> Vec<LocalRect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..500.0),
                        rng.random_range(30.0..500.0),
                        rng.random_range(0.0..30.0),
                        rng.random_range(0.0..30.0),
                    ),
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn overlap_join_matches_brute_force() {
        let l = random_set(300, 1);
        let r = random_set(300, 2);
        let mut got = sweep_join_pairs(&l, &r, 0.0);
        got.sort_unstable();
        assert_eq!(got, brute(&l, &r, 0.0));
    }

    #[test]
    fn range_join_matches_brute_force() {
        let l = random_set(200, 3);
        let r = random_set(200, 4);
        for d in [0.0, 5.0, 25.0, 100.0] {
            let mut got = sweep_join_pairs(&l, &r, d);
            got.sort_unstable();
            assert_eq!(got, brute(&l, &r, d), "d = {d}");
        }
    }

    #[test]
    fn empty_inputs() {
        let l = random_set(10, 5);
        assert!(sweep_join_pairs(&l, &[], 0.0).is_empty());
        assert!(sweep_join_pairs(&[], &l, 0.0).is_empty());
    }

    #[test]
    fn touching_rectangles_join_at_d_zero() {
        let l = vec![(Rect::new(0.0, 10.0, 5.0, 5.0), 0)];
        let r = vec![(Rect::new(5.0, 10.0, 5.0, 5.0), 0)];
        assert_eq!(sweep_join_pairs(&l, &r, 0.0), vec![(0, 0)]);
    }

    #[test]
    fn each_pair_reported_once() {
        // Identical rectangles stress duplicate emission.
        let rect = Rect::new(0.0, 10.0, 5.0, 5.0);
        let l: Vec<LocalRect> = (0..10).map(|i| (rect, i)).collect();
        let r: Vec<LocalRect> = (0..10).map(|i| (rect, i)).collect();
        let pairs = sweep_join_pairs(&l, &r, 0.0);
        assert_eq!(pairs.len(), 100);
        let mut dedup = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_sweep_equals_brute(
            ls in proptest::collection::vec((0.0..200.0f64, 20.0..200.0f64, 0.0..30.0f64, 0.0..20.0f64), 0..60),
            rs in proptest::collection::vec((0.0..200.0f64, 20.0..200.0f64, 0.0..30.0f64, 0.0..20.0f64), 0..60),
            d in 0.0..50.0f64,
        ) {
            let l: Vec<LocalRect> = ls.into_iter().enumerate()
                .map(|(i, (x, y, w, b))| (Rect::new(x, y, w, b), i as u32)).collect();
            let r: Vec<LocalRect> = rs.into_iter().enumerate()
                .map(|(i, (x, y, w, b))| (Rect::new(x, y, w, b), i as u32)).collect();
            let mut got = sweep_join_pairs(&l, &r, d);
            got.sort_unstable();
            prop_assert_eq!(got, brute(&l, &r, d));
        }
    }
}
