//! Duplicate-avoidance rules.
//!
//! Several reducers may hold every rectangle of an output tuple; exactly
//! one of them must emit it. The paper uses two designated-cell rules:
//!
//! * **2-way joins** (§5.2, §5.3, after Dittrich & Seeger): the cell
//!   containing the start point of the rectangular overlap between the two
//!   (possibly enlarged) rectangles computes the pair.
//! * **Multi-way joins** (§6.2): with `u_r` the tuple member with the
//!   largest start-point x and `u_l` the member with the smallest
//!   start-point y, the cell containing the point `(u_r.x, u_l.y)` computes
//!   the tuple.
//!
//! Under the half-open cell-region semantics of `mwsj-partition`, the
//! designated cell provably receives every tuple member routed by the
//! respective algorithm (see `mwsj-core::algorithms`), so these rules drop
//! duplicates without ever dropping the last copy.

use mwsj_geom::{Coord, Point, Rect};
use mwsj_partition::{CellId, Grid};

/// Designated cell of a 2-way overlap pair: the cell containing the start
/// point of `a ∩ b` (§5.2).
///
/// Returns `None` when the rectangles do not overlap (no cell may emit).
#[must_use]
pub fn overlap_pair_cell(grid: &Grid, a: &Rect, b: &Rect) -> Option<CellId> {
    a.intersection(b)
        .map(|o| grid.cell_of_point(&o.start_point()))
}

/// Designated cell of a 2-way range pair: the cell containing the start
/// point of `a.enlarge(d) ∩ b` (§5.3). `None` when the enlarged rectangles
/// do not overlap (then the pair cannot satisfy the range predicate either).
#[must_use]
pub fn range_pair_cell(grid: &Grid, a: &Rect, b: &Rect, d: Coord) -> Option<CellId> {
    a.enlarge(d)
        .intersection(b)
        .map(|o| grid.cell_of_point(&clamp_into(grid, o.start_point())))
}

/// Designated cell of a multi-way output tuple (§6.2): the cell containing
/// `(u_r.x, u_l.y)`.
#[must_use]
pub fn multiway_tuple_cell(grid: &Grid, tuple: &[Rect]) -> CellId {
    multiway_tuple_cell_of(grid, tuple)
}

/// [`multiway_tuple_cell`] over any borrowing iterator of tuple members —
/// the allocation-free form for reducers whose tuples carry payloads next
/// to the rectangles (previously they collected a `Vec<Rect>` per
/// candidate tuple just to call the slice form).
///
/// # Panics
///
/// Panics when the iterator is empty (an empty tuple has no designated
/// cell).
pub fn multiway_tuple_cell_of<'a, I>(grid: &Grid, members: I) -> CellId
where
    I: IntoIterator<Item = &'a Rect>,
{
    let mut xr = Coord::NEG_INFINITY;
    let mut yl = Coord::INFINITY;
    let mut any = false;
    for r in members {
        any = true;
        xr = xr.max(r.x());
        yl = yl.min(r.y());
    }
    assert!(any, "designated cell of an empty tuple");
    grid.cell_of_point(&Point::new(xr, yl))
}

/// Clamps a point into the grid extent (an enlarged rectangle may start
/// outside the space; its overlap with any in-space rectangle still starts
/// in-space in the dimension that matters, so clamping is safe).
fn clamp_into(grid: &Grid, p: Point) -> Point {
    let e = grid.extent();
    Point::new(
        p.x.clamp(e.min_x(), e.max_x()),
        p.y.clamp(e.min_y(), e.max_y()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid8() -> Grid {
        Grid::square((0.0, 80.0), (0.0, 80.0), 8)
    }

    #[test]
    fn figure2a_overlap_pair_cell_is_14() {
        // Figure 2(a): r3 and r4 overlap; the overlap area starts in cell
        // 14, so reducer 14 computes the pair. Recreate the geometry on the
        // 4x4 grid over [0, 8]^2: r3 spans cells 13-15, r4 spans 14-15.
        let grid = Grid::square((0.0, 8.0), (0.0, 8.0), 4);
        let r3 = Rect::new(0.5, 1.8, 4.0, 1.2);
        let r4 = Rect::new(2.5, 1.5, 3.0, 0.8);
        let cell = overlap_pair_cell(&grid, &r3, &r4).unwrap();
        assert_eq!(cell.paper_number(), 14);
    }

    #[test]
    fn disjoint_pair_has_no_cell() {
        let grid = grid8();
        let a = Rect::new(0.0, 10.0, 2.0, 2.0);
        let b = Rect::new(50.0, 10.0, 2.0, 2.0);
        assert_eq!(overlap_pair_cell(&grid, &a, &b), None);
    }

    #[test]
    fn range_pair_cell_requires_enlarged_overlap() {
        let grid = grid8();
        let a = Rect::new(0.0, 10.0, 2.0, 2.0);
        let b = Rect::new(5.0, 10.0, 2.0, 2.0);
        assert_eq!(range_pair_cell(&grid, &a, &b, 1.0), None);
        assert!(range_pair_cell(&grid, &a, &b, 3.0).is_some());
    }

    #[test]
    fn figure3_multiway_cell_is_19() {
        // Figure 3: grid 8x4 over the space; U = (u1, v1, w1, x1). x1 is
        // the rightmost rectangle, u1 the lowermost; cell 19 contains
        // (x1.x, u1.y). Recreate the geometry: 8 columns x 4 rows over
        // [0, 80] x [0, 40]. Cell 19 = (col 2, row 2) = x in [20, 30),
        // y in (10, 20].
        let grid = Grid::new((0.0, 80.0), (0.0, 40.0), 8, 4);
        // u1 starts in cell 18 (col 1, row 2) and is the lowermost.
        let u1 = Rect::new(15.0, 15.0, 4.0, 4.0);
        // v1 starts in cell 10 (col 1, row 1) crossing down into 18.
        let v1 = Rect::new(14.0, 25.0, 4.0, 12.0);
        // w1 starts in cell 2 (col 2, row 0) and reaches down into 10/11.
        let w1 = Rect::new(22.0, 38.0, 6.0, 10.0);
        // x1 starts in cell 3 (col 2, row 0), rightmost start x.
        let x1 = Rect::new(26.0, 39.0, 3.0, 8.0);
        let cell = multiway_tuple_cell(&grid, &[u1, v1, w1, x1]);
        // (x1.x, u1.y) = (26, 15) -> col 2, row 2 -> cell 19 (1-based).
        assert_eq!(cell.paper_number(), 19);
    }

    #[test]
    fn multiway_cell_of_iterator_matches_slice_form() {
        let grid = grid8();
        let tuple = [
            Rect::new(15.0, 15.0, 4.0, 4.0),
            Rect::new(14.0, 25.0, 4.0, 12.0),
            Rect::new(26.0, 39.0, 3.0, 8.0),
        ];
        let with_ids: Vec<(Rect, u32)> = tuple
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        assert_eq!(
            multiway_tuple_cell_of(&grid, with_ids.iter().map(|(r, _)| r)),
            multiway_tuple_cell(&grid, &tuple)
        );
    }

    #[test]
    fn multiway_single_rect_is_its_own_cell() {
        let grid = grid8();
        let r = Rect::new(33.0, 47.0, 2.0, 2.0);
        assert_eq!(multiway_tuple_cell(&grid, &[r]), grid.cell_of(&r));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0.0..70.0f64, 10.0..80.0f64, 0.0..10.0f64, 0.0..10.0f64)
            .prop_map(|(x, y, l, b)| Rect::new(x, y, l.min(80.0 - x), b.min(y)))
    }

    proptest! {
        #[test]
        fn prop_overlap_cell_unique_and_shared(a in arb_rect(), b in arb_rect()) {
            // The designated cell must be among the split cells of both
            // rectangles: both are routed there by the 2-way overlap join.
            let grid = grid8();
            if let Some(cell) = overlap_pair_cell(&grid, &a, &b) {
                prop_assert!(grid.split_cells(&a).contains(&cell));
                prop_assert!(grid.split_cells(&b).contains(&cell));
            }
        }

        #[test]
        fn prop_range_cell_shared_by_routing(a in arb_rect(), b in arb_rect(), d in 0.0..20.0f64) {
            // §5.3 routing: a is sent to cells overlapping a.enlarge(d), b
            // is split. The designated cell must be in both target sets.
            let grid = grid8();
            if let Some(cell) = range_pair_cell(&grid, &a, &b, d) {
                let enlarged = a.enlarge(d).intersection(&grid.extent()).unwrap();
                prop_assert!(grid.split_cells(&enlarged).contains(&cell));
                prop_assert!(grid.split_cells(&b).contains(&cell));
            }
        }

        #[test]
        fn prop_multiway_cell_in_fourth_quadrant_of_every_member(
            a in arb_rect(), b in arb_rect(), c in arb_rect()
        ) {
            // All-Replicate routes every rectangle to its 4th quadrant; the
            // designated cell must lie in each member's 4th quadrant.
            let grid = grid8();
            let cell = multiway_tuple_cell(&grid, &[a, b, c]);
            for r in [&a, &b, &c] {
                prop_assert!(
                    grid.fourth_quadrant_cells(r).contains(&cell),
                    "designated cell {cell:?} outside 4th quadrant of {r:?}"
                );
            }
        }
    }
}
