//! The precompiled, allocation-free multi-way join kernel.
//!
//! [`JoinKernel`] is the execution engine behind
//! [`crate::multiway::multiway_join`]: the same window-reduction
//! backtracking search, restructured for the reduce-phase hot loop.
//!
//! * **Precompiled plans.** The query's probe and verify edges are
//!   resolved once per start vertex by [`mwsj_query::JoinPlan`] (the bound
//!   set at depth `d` is exactly the first `d` relations of the BFS
//!   order), so the per-candidate loop never walks the join graph or an
//!   assignment array. Symmetric probe predicates are verified by the
//!   index probe itself and dropped from the verify lists.
//! * **Iterative stack, flat arena.** Recursion is replaced by an explicit
//!   depth cursor over one flat candidate buffer; each depth owns a range
//!   `[base, len)` of the buffer that is truncated on backtrack. No
//!   per-probe `Vec` — a probe appends to the arena and the frame records
//!   where its candidates start.
//! * **SoA rectangles + linear scan for small relations.** Relations
//!   below [`LINEAR_SCAN_THRESHOLD`] are not indexed at all: their corner
//!   coordinates are copied into four flat arrays and probed by a branch-
//!   light linear scan (exactly `distance_sq(candidate, probe) <= d²`,
//!   the R-tree's acceptance test). Larger relations still get an STR
//!   bulk-loaded R-tree whose visitor pushes straight into the arena.
//! * **Thread-local scratch.** All of the above lives in one scratch
//!   struct per worker thread, reused across reducer groups: after the
//!   first group on a thread, executing a group allocates only for R-tree
//!   construction of above-threshold relations (and whatever `emit`
//!   itself does).
//!
//! The kernel emits exactly the tuples of the recursive matcher; only the
//! order of candidates *within one probe* can differ when a relation is
//! scanned linearly instead of through a tree (a permutation, invisible
//! after the algorithms' normalization). `multiway_join_naive` in
//! [`crate::multiway`] keeps the original recursive implementation as the
//! comparison oracle.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use mwsj_geom::{Coord, Rect};
use mwsj_query::{JoinPlan, PlanStep, Query};
use mwsj_rtree::RTree;

use crate::LocalRect;

/// Relations smaller than this are probed by a linear scan over the SoA
/// arrays instead of an R-tree. At `NODE_CAPACITY = 16` a tree this size
/// is 1-2 leaves plus a root: walking it costs more than scanning four
/// flat `f64` arrays (see the `micro_local_join` bench).
pub const LINEAR_SCAN_THRESHOLD: usize = 48;

/// One relation's rectangles in structure-of-arrays layout: the probe
/// scan reads each coordinate array sequentially.
#[derive(Default)]
struct Soa {
    min_x: Vec<Coord>,
    max_x: Vec<Coord>,
    min_y: Vec<Coord>,
    max_y: Vec<Coord>,
}

impl Soa {
    fn fill(&mut self, rel: &[LocalRect]) {
        self.min_x.clear();
        self.max_x.clear();
        self.min_y.clear();
        self.max_y.clear();
        for (r, _) in rel {
            self.min_x.push(r.min_x());
            self.max_x.push(r.max_x());
            self.min_y.push(r.min_y());
            self.max_y.push(r.max_y());
        }
    }

    /// Appends every rectangle of `rel` within distance `d` (closed) of
    /// the probe — the R-tree's `query_within` acceptance test, run as a
    /// scan over the coordinate arrays (`rel` is only read at accepted
    /// positions, in order, to copy the `(rect, id)` into the arena).
    // The scan walks four coordinate arrays plus `rel` in lockstep; an
    // index loop states that more directly than a five-way zip.
    #[allow(clippy::needless_range_loop)]
    fn probe_into(&self, rel: &[LocalRect], probe: &Rect, d: Coord, out: &mut Vec<LocalRect>) {
        let (p_lo_x, p_hi_x) = (probe.min_x(), probe.max_x());
        let (p_lo_y, p_hi_y) = (probe.min_y(), probe.max_y());
        if d == 0.0 {
            // Overlap fast path: distance_sq <= 0 iff both axis gaps are 0
            // iff the closed rectangles overlap — pure comparisons.
            for i in 0..self.min_x.len() {
                if self.min_x[i] <= p_hi_x
                    && p_lo_x <= self.max_x[i]
                    && self.min_y[i] <= p_hi_y
                    && p_lo_y <= self.max_y[i]
                {
                    out.push(rel[i]);
                }
            }
        } else {
            let d_sq = d * d;
            for i in 0..self.min_x.len() {
                let dx = (self.min_x[i] - p_hi_x)
                    .max(p_lo_x - self.max_x[i])
                    .max(0.0);
                let dy = (self.min_y[i] - p_hi_y)
                    .max(p_lo_y - self.max_y[i])
                    .max(0.0);
                if dx * dx + dy * dy <= d_sq {
                    out.push(rel[i]);
                }
            }
        }
    }
}

/// Multiply-rotate hasher for the fixed-width rectangle keys of the probe
/// memo. The keys are 32 bytes of trusted coordinate bits — SipHash's
/// hash-flooding resistance buys nothing here and costs measurable time
/// in the probe loop.
#[derive(Default)]
struct RectKeyHasher(u64);

impl Hasher for RectKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_ne_bytes(buf));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type RectKeyMap = HashMap<[u64; 4], (u32, u32), BuildHasherDefault<RectKeyHasher>>;

fn rect_key(r: &Rect) -> [u64; 4] {
    [
        r.min_x().to_bits(),
        r.max_x().to_bits(),
        r.min_y().to_bits(),
        r.max_y().to_bits(),
    ]
}

/// One depth of the iterative search: its candidates occupy
/// `arena[base..]` (up to the next frame's base) and `cursor` counts how
/// many have been consumed.
#[derive(Clone, Copy, Default)]
struct Frame {
    base: usize,
    cursor: usize,
}

/// Reusable per-thread working memory.
#[derive(Default)]
struct Scratch {
    soa: Vec<Soa>,
    trees: Vec<Option<RTree<u32>>>,
    /// Flat candidate arena shared by all depths. Probes copy the full
    /// `(rect, id)` in, so consuming a candidate is one sequential arena
    /// read — no random access back into the relation vectors.
    arena: Vec<LocalRect>,
    frames: Vec<Frame>,
    tuple: Vec<LocalRect>,
    /// R-tree traversal stack, reused across probes.
    tree_stack: Vec<u32>,
    /// Per-depth probe memo: probe-rect bits -> range in `memo_arena`. A
    /// probe's result depends only on the probe rectangle (the target
    /// index and distance are fixed per depth), so when the probing
    /// relation is not the start relation — i.e. the same rectangle is
    /// probed once per partial tuple it appears in — the index walk runs
    /// once and repeats are a range copy.
    memo: Vec<RectKeyMap>,
    memo_arena: Vec<LocalRect>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// A query compiled for repeated reducer-group execution: one
/// [`JoinPlan`] per possible start vertex (the matcher seeds from the
/// smallest local relation, which varies per group). Build once per job,
/// share across reduce tasks (`Sync` — the mutable state lives in
/// thread-local scratch).
pub struct JoinKernel {
    plans: Vec<JoinPlan>,
    n: usize,
}

impl JoinKernel {
    /// Compiles the kernel for a query.
    #[must_use]
    pub fn new(query: &Query) -> Self {
        Self {
            plans: JoinPlan::compile_all(query),
            n: query.num_relations(),
        }
    }

    /// Number of relation positions the kernel joins.
    #[must_use]
    pub fn num_relations(&self) -> usize {
        self.n
    }

    /// Finds every consistent full tuple over the local relations and
    /// calls `emit` with one `(rect, id)` per relation position, in
    /// position order. Same contract as
    /// [`crate::multiway::multiway_join`].
    pub fn execute(&self, relations: &[Vec<LocalRect>], mut emit: impl FnMut(&[LocalRect])) {
        assert_eq!(
            relations.len(),
            self.n,
            "one rectangle set per relation position"
        );
        if relations.iter().any(Vec::is_empty) {
            return;
        }
        // Seed from the smallest relation (first minimal, like the
        // original `min_by_key`).
        let start = (0..self.n)
            .min_by_key(|&i| relations[i].len())
            .expect("non-empty query");
        // Borrow the thread's scratch for the duration of the group; a
        // reentrant call from `emit` falls back to a fresh one.
        let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        self.run(
            self.plans[start].steps(),
            relations,
            &mut scratch,
            &mut emit,
        );
        SCRATCH.with(|s| *s.borrow_mut() = scratch);
    }

    /// Runs the search seeded by caller-supplied depth-0 candidates,
    /// probing through a caller-supplied index — the entry point for
    /// map-side joins over *stored* per-cell trees, where the candidate
    /// index is a forest of serialized R-trees rather than the in-memory
    /// relation vectors.
    ///
    /// `start` picks the compiled plan (seeds are candidates of relation
    /// position `start`); `probe(w, rect, d, out)` must append every
    /// `(rect, id)` of relation position `w` within distance `d` (closed)
    /// of `rect` — the R-tree acceptance test — to `out`, appending only.
    /// Probe results are memoized per depth by the probe rectangle's bit
    /// pattern (exactly as [`JoinKernel::execute`] memoizes), so the
    /// probe must be a pure function of `(w, rect, d)` for one call.
    /// `emit` receives each full tuple in relation-position order.
    ///
    /// # Panics
    /// Panics when `start` is not a relation position of the query.
    pub fn execute_seeded(
        &self,
        start: usize,
        seeds: &[LocalRect],
        mut probe: impl FnMut(usize, &Rect, Coord, &mut Vec<LocalRect>),
        mut emit: impl FnMut(&[LocalRect]),
    ) {
        assert!(start < self.n, "start relation position out of range");
        if seeds.is_empty() {
            return;
        }
        let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        let Scratch {
            arena,
            frames,
            tuple,
            memo,
            memo_arena,
            ..
        } = &mut scratch;
        arena.clear();
        arena.extend_from_slice(seeds);
        search(
            self.plans[start].steps(),
            self.n,
            arena,
            frames,
            tuple,
            memo,
            memo_arena,
            &mut probe,
            &mut emit,
        );
        SCRATCH.with(|s| *s.borrow_mut() = scratch);
    }

    fn run(
        &self,
        steps: &[PlanStep],
        relations: &[Vec<LocalRect>],
        scratch: &mut Scratch,
        emit: &mut impl FnMut(&[LocalRect]),
    ) {
        let n = self.n;
        let Scratch {
            soa,
            trees,
            arena,
            frames,
            tuple,
            tree_stack,
            memo,
            memo_arena,
        } = scratch;

        // Index the probed relations (every step but the first): SoA scan
        // below the threshold, R-tree above.
        soa.resize_with(n, Soa::default);
        trees.clear();
        trees.resize_with(n, || None);
        for step in steps.iter().skip(1) {
            let v = step.relation.index();
            let rel = &relations[v];
            if rel.len() < LINEAR_SCAN_THRESHOLD {
                soa[v].fill(rel);
            } else {
                // Payload = the record id: the tree visitor hands back the
                // complete `(rect, id)` with no indirection.
                trees[v] = Some(RTree::bulk_load(rel.clone()));
            }
        }

        // Depth 0: every rectangle of the start relation seeds the search.
        arena.clear();
        arena.extend_from_slice(&relations[steps[0].relation.index()]);

        let mut probe = |w: usize, probe_rect: &Rect, d: Coord, out: &mut Vec<LocalRect>| {
            if let Some(tree) = &trees[w] {
                tree.query_within_scratch(probe_rect, d, tree_stack, |r, &id| {
                    out.push((*r, id));
                });
            } else {
                soa[w].probe_into(&relations[w], probe_rect, d, out);
            }
        };
        search(
            steps, n, arena, frames, tuple, memo, memo_arena, &mut probe, emit,
        );
    }
}

/// The iterative backtracking loop shared by [`JoinKernel::execute`] and
/// [`JoinKernel::execute_seeded`]: candidate generation is abstracted
/// behind `probe`, everything else (verify edges, frame bookkeeping, the
/// per-depth probe memo) is identical for both entry points. `arena` must
/// arrive holding exactly the depth-0 seeds; the remaining scratch parts
/// are (re)initialized here.
#[allow(clippy::too_many_arguments)]
fn search(
    steps: &[PlanStep],
    n: usize,
    arena: &mut Vec<LocalRect>,
    frames: &mut Vec<Frame>,
    tuple: &mut Vec<LocalRect>,
    memo: &mut Vec<RectKeyMap>,
    memo_arena: &mut Vec<LocalRect>,
    probe: &mut impl FnMut(usize, &Rect, Coord, &mut Vec<LocalRect>),
    emit: &mut impl FnMut(&[LocalRect]),
) {
    tuple.clear();
    tuple.resize(n, (Rect::new(0.0, 0.0, 0.0, 0.0), 0));
    frames.clear();
    frames.resize(n, Frame::default());
    memo.resize_with(n, RectKeyMap::default);
    for m in memo.iter_mut() {
        m.clear();
    }
    memo_arena.clear();

    let mut depth = 0usize;
    loop {
        let step = &steps[depth];
        let v = step.relation.index();
        let Frame { base, mut cursor } = frames[depth];
        let len = arena.len() - base;

        // Advance to the next candidate at this depth that satisfies
        // its verify edges.
        let mut extended = false;
        while cursor < len {
            let (rect, id) = arena[base + cursor];
            cursor += 1;
            let ok = step.verify.iter().all(|e| {
                let other = &tuple[e.against.index()].0;
                if e.candidate_is_left {
                    e.predicate.eval(&rect, other)
                } else {
                    e.predicate.eval(other, &rect)
                }
            });
            if ok {
                tuple[v] = (rect, id);
                extended = true;
                break;
            }
        }
        frames[depth].cursor = cursor;

        if !extended {
            // Depth exhausted: release its candidates, backtrack.
            arena.truncate(base);
            if depth == 0 {
                break;
            }
            depth -= 1;
            continue;
        }
        if depth + 1 == n {
            emit(tuple);
            continue;
        }
        // Probe for the next depth's candidates. When the probing
        // relation is the start relation every probe rectangle is
        // distinct, so the index is walked directly; otherwise the
        // same rectangle recurs once per partial tuple containing it
        // and the result is memoized by rectangle.
        let next = &steps[depth + 1];
        let w = next.relation.index();
        let probe_edge = next.probe.as_ref().expect("non-root steps have a probe");
        let probe_rect = &tuple[probe_edge.from.index()].0;
        let d = probe_edge.predicate.distance();
        let next_base = arena.len();
        if probe_edge.from == steps[0].relation {
            probe(w, probe_rect, d, arena);
        } else {
            let (s, e) = *memo[depth + 1]
                .entry(rect_key(probe_rect))
                .or_insert_with(|| {
                    let m0 = memo_arena.len();
                    probe(w, probe_rect, d, memo_arena);
                    (m0 as u32, memo_arena.len() as u32)
                });
            arena.extend_from_slice(&memo_arena[s as usize..e as usize]);
        }
        depth += 1;
        frames[depth] = Frame {
            base: next_base,
            cursor: 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiway::{brute_force_join, multiway_join_naive, normalized};
    use mwsj_query::Query;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_relation(n: usize, seed: u64, side: f64) -> Vec<LocalRect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..300.0),
                        rng.random_range(side..300.0),
                        rng.random_range(0.0..side),
                        rng.random_range(0.0..side),
                    ),
                    i as u32,
                )
            })
            .collect()
    }

    fn kernel_ids(query: &Query, relations: &[Vec<LocalRect>]) -> Vec<Vec<u32>> {
        let kernel = JoinKernel::new(query);
        let mut out = Vec::new();
        kernel.execute(relations, |tuple| {
            out.push(tuple.iter().map(|&(_, id)| id).collect());
        });
        out
    }

    fn naive_ids(query: &Query, relations: &[Vec<LocalRect>]) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        multiway_join_naive(query, relations, |tuple| {
            out.push(tuple.iter().map(|&(_, id)| id).collect());
        });
        out
    }

    fn check_against_oracles(query: &Query, relations: &[Vec<LocalRect>]) {
        let got = normalized(kernel_ids(query, relations));
        assert_eq!(got, normalized(brute_force_join(query, relations)));
        assert_eq!(got, normalized(naive_ids(query, relations)));
    }

    #[test]
    fn kernel_is_reusable_across_groups() {
        let q = Query::builder()
            .overlap("A", "B")
            .overlap("B", "C")
            .build()
            .unwrap();
        let kernel = JoinKernel::new(&q);
        for seed in 0..4u64 {
            let rels = vec![
                random_relation(25, 100 + seed, 35.0),
                random_relation(30, 200 + seed, 35.0),
                random_relation(20, 300 + seed, 35.0),
            ];
            let mut out = Vec::new();
            kernel.execute(&rels, |tuple| {
                out.push(tuple.iter().map(|&(_, id)| id).collect::<Vec<_>>());
            });
            assert_eq!(normalized(out), normalized(brute_force_join(&q, &rels)));
        }
    }

    #[test]
    fn kernel_crosses_the_linear_scan_threshold() {
        // One relation well above the threshold (tree-probed), one well
        // below (SoA-scanned), one at the boundary.
        let q = Query::builder()
            .overlap("A", "B")
            .range("B", "C", 10.0)
            .build()
            .unwrap();
        for sizes in [
            [LINEAR_SCAN_THRESHOLD * 3, 10, LINEAR_SCAN_THRESHOLD],
            [10, LINEAR_SCAN_THRESHOLD * 2, LINEAR_SCAN_THRESHOLD - 1],
        ] {
            let rels: Vec<Vec<LocalRect>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| random_relation(s, 40 + i as u64, 25.0))
                .collect();
            check_against_oracles(&q, &rels);
        }
    }

    #[test]
    fn kernel_handles_contains_in_both_orientations() {
        let q = Query::builder()
            .contains("A", "B")
            .overlap("B", "C")
            .build()
            .unwrap();
        // Containers are large, contents small: non-trivial matches.
        let mut rng = StdRng::seed_from_u64(77);
        let big: Vec<LocalRect> = (0..25)
            .map(|i| {
                (
                    Rect::new(
                        rng.random_range(0.0..200.0),
                        rng.random_range(80.0..300.0),
                        rng.random_range(40.0..80.0),
                        rng.random_range(40.0..80.0),
                    ),
                    i as u32,
                )
            })
            .collect();
        let small = random_relation(60, 78, 12.0);
        let mid = random_relation(8, 79, 30.0);
        // 8 < 25 < 60: the matcher starts at C, so A (the container) is
        // bound last; flipping sizes starts elsewhere.
        check_against_oracles(&q, &[big.clone(), small.clone(), mid]);
        check_against_oracles(&q, &[big, small, random_relation(100, 80, 30.0)]);
    }

    #[test]
    fn execute_seeded_matches_execute_from_every_start() {
        // Seeding with a full relation and probing through bulk-loaded
        // trees must reproduce `execute` exactly (normalized: `execute`
        // picks its own start vertex, which changes emission order).
        let q = Query::builder()
            .overlap("A", "B")
            .range("B", "C", 12.0)
            .build()
            .unwrap();
        let rels = vec![
            random_relation(60, 500, 30.0),
            random_relation(45, 501, 30.0),
            random_relation(55, 502, 30.0),
        ];
        let kernel = JoinKernel::new(&q);
        let want = normalized(kernel_ids(&q, &rels));
        assert!(!want.is_empty(), "test should exercise non-empty output");
        let trees: Vec<RTree<u32>> = rels.iter().map(|r| RTree::bulk_load(r.clone())).collect();
        for (start, seeds) in rels.iter().enumerate() {
            let mut out: Vec<Vec<u32>> = Vec::new();
            let mut stack = Vec::new();
            kernel.execute_seeded(
                start,
                seeds,
                |w, probe, d, out| {
                    trees[w].query_within_scratch(probe, d, &mut stack, |r, &id| {
                        out.push((*r, id));
                    });
                },
                |tuple| out.push(tuple.iter().map(|&(_, id)| id).collect()),
            );
            assert_eq!(normalized(out), want, "start = {start}");
        }
    }

    #[test]
    fn execute_seeded_empty_seeds_is_a_no_op() {
        let q = Query::builder().overlap("A", "B").build().unwrap();
        let kernel = JoinKernel::new(&q);
        let mut called = false;
        kernel.execute_seeded(0, &[], |_, _, _, _| {}, |_| called = true);
        assert!(!called);
    }

    #[test]
    fn reentrant_emit_does_not_corrupt_scratch() {
        let q = Query::builder().overlap("A", "B").build().unwrap();
        let rels = vec![random_relation(20, 90, 40.0), random_relation(20, 91, 40.0)];
        let inner_q = q.clone();
        let inner_rels = rels.clone();
        let kernel = JoinKernel::new(&q);
        let mut outer = 0usize;
        let mut inner_total = 0usize;
        kernel.execute(&rels, |_| {
            outer += 1;
            // A nested execution on the same thread must see its own
            // scratch, not the suspended outer one.
            let inner_kernel = JoinKernel::new(&inner_q);
            let mut inner = 0usize;
            inner_kernel.execute(&inner_rels, |_| inner += 1);
            inner_total = inner;
        });
        let expect = brute_force_join(&q, &rels).len();
        assert!(expect > 0, "test should exercise non-empty output");
        assert_eq!(outer, expect);
        assert_eq!(inner_total, expect);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_kernel_equals_oracle_across_shapes(
            a in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..14),
            b in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..14),
            c in proptest::collection::vec((0.0..100.0f64, 20.0..100.0f64, 0.0..25.0f64, 0.0..20.0f64), 1..14),
            d in 0.0..30.0f64,
            shape in 0..4usize,
        ) {
            let to_rel = |v: Vec<(f64, f64, f64, f64)>| -> Vec<LocalRect> {
                v.into_iter().enumerate()
                    .map(|(i, (x, y, l, b))| (Rect::new(x, y, l, b), i as u32))
                    .collect()
            };
            let rels = vec![to_rel(a), to_rel(b), to_rel(c)];
            let q = match shape {
                // Chain.
                0 => Query::builder().overlap("A", "B").range("B", "C", d),
                // Star centered on A.
                1 => Query::builder().overlap("A", "B").overlap("A", "C"),
                // Cycle.
                2 => Query::builder()
                    .overlap("A", "B")
                    .range("B", "C", d)
                    .overlap("C", "A"),
                // Parallel edges A=B plus a chain link to C.
                _ => Query::builder()
                    .overlap("A", "B")
                    .range("A", "B", d)
                    .overlap("B", "C"),
            }
            .build()
            .unwrap();
            let got = normalized(kernel_ids(&q, &rels));
            prop_assert_eq!(&got, &normalized(brute_force_join(&q, &rels)));
            prop_assert_eq!(got, normalized(naive_ids(&q, &rels)));
        }
    }
}
