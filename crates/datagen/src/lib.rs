//! Seeded workload generators for the experiments.
//!
//! * [`synthetic`] — the paper's parameterized synthetic generator
//!   (§7.8.2): number of rectangles `nI`, distributions for start-point
//!   coordinates and side lengths, the space extent, and side-length
//!   bounds.
//! * [`california`] — a generator calibrated to every statistic the paper
//!   reports for the flattened Census 2000 TIGER/Line California road
//!   MBBs (§7.8.2); stands in for the real dataset, which is not
//!   available offline. See DESIGN.md for the substitution argument.
//! * [`sampling`] — Bernoulli sampling (the paper retains road MBBs with
//!   probability 0.5 for the range experiments, §8.1) and the
//!   enlarge-by-factor-k dataset derivation (§7.8.6).
//! * [`io`] — CSV persistence for rectangle datasets (exact `f64`
//!   round-trips), so generated workloads can be saved and reloaded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod california;
pub mod io;
pub mod sampling;
pub mod synthetic;

pub use california::{CaliforniaConfig, CaliforniaStats};
pub use sampling::{bernoulli_sample, enlarge_all};
pub use synthetic::{Distribution, SyntheticConfig};
