//! Dataset persistence: a minimal CSV format for rectangle relations.
//!
//! One rectangle per line in the paper's `(x, y, l, b)` form:
//!
//! ```text
//! # optional comment / header lines start with '#'
//! x,y,l,b
//! 12.5,100.0,4.0,2.5
//! ```
//!
//! Numbers round-trip exactly (written with enough precision to
//! reconstruct the same `f64`s), so a generated workload can be saved,
//! inspected and reloaded for reproducible experiments.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use mwsj_geom::Rect;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a dataset to a writer, one `x,y,l,b` line per rectangle.
pub fn write_rects<W: Write>(mut w: W, rects: &[Rect]) -> Result<(), IoError> {
    writeln!(w, "# x,y,l,b ({} rectangles)", rects.len())?;
    for r in rects {
        // 17 significant digits round-trip any f64.
        writeln!(
            w,
            "{:.17e},{:.17e},{:.17e},{:.17e}",
            r.x(),
            r.y(),
            r.l(),
            r.b()
        )?;
    }
    Ok(())
}

/// Saves a dataset to a file.
pub fn save_rects<P: AsRef<Path>>(path: P, rects: &[Rect]) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_rects(BufWriter::new(f), rects)
}

/// Reads a dataset from a reader. Blank lines and `#` comments are
/// skipped.
pub fn read_rects<R: BufRead>(r: R) -> Result<Vec<Rect>, IoError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("expected 4 comma-separated fields, found {}", fields.len()),
            });
        }
        let mut nums = [0f64; 4];
        for (slot, field) in nums.iter_mut().zip(&fields) {
            *slot = field.trim().parse().map_err(|e| IoError::Parse {
                line: line_no,
                message: format!("`{field}` is not a number: {e}"),
            })?;
        }
        let [x, y, l, b] = nums;
        if !(l >= 0.0 && b >= 0.0) || nums.iter().any(|v| !v.is_finite()) {
            return Err(IoError::Parse {
                line: line_no,
                message: "sides must be finite and non-negative".into(),
            });
        }
        out.push(Rect::new(x, y, l, b));
    }
    Ok(out)
}

/// Loads a dataset from a file.
pub fn load_rects<P: AsRef<Path>>(path: P) -> Result<Vec<Rect>, IoError> {
    let f = std::fs::File::open(path)?;
    read_rects(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticConfig;

    #[test]
    fn roundtrip_exact() {
        let data = SyntheticConfig::paper_default(500, 3).generate();
        let mut buf = Vec::new();
        write_rects(&mut buf, &data).unwrap();
        let back = read_rects(buf.as_slice()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn file_roundtrip() {
        let data = SyntheticConfig::paper_default(100, 4).generate();
        let path = std::env::temp_dir().join("mwsj-io-test.csv");
        save_rects(&path, &data).unwrap();
        let back = load_rects(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, data);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1.0,2.0,3.0,1.0\n  # another\n4.0,5.0,0.0,0.0\n";
        let rects = read_rects(text.as_bytes()).unwrap();
        assert_eq!(rects.len(), 2);
        assert_eq!(rects[0], Rect::new(1.0, 2.0, 3.0, 1.0));
    }

    #[test]
    fn reports_malformed_lines() {
        let e = read_rects("1.0,2.0,3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }), "{e}");
        let e = read_rects("# ok\n1.0,2.0,x,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 2, .. }), "{e}");
        let e = read_rects("1.0,2.0,-3.0,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn scientific_notation_parses() {
        let rects = read_rects("1.5e2,2e3,3e0,1e-1\n".as_bytes()).unwrap();
        assert_eq!(rects[0], Rect::new(150.0, 2000.0, 3.0, 0.1));
    }
}
