//! The paper's synthetic data generator (§7.8.2).
//!
//! Parameters mirror the paper's script: (a) number of rectangles `nI`,
//! (b) distributions of start-point coordinates `dX`/`dY`, (c) distributions
//! of length and breadth `dL`/`dB`, (d) the space extent, (e) side-length
//! bounds. The paper's experiments use Uniform throughout; Gaussian and
//! Clustered are provided for skew ablations.

use mwsj_geom::{Coord, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A one-dimensional sampling distribution over `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over the range (the paper's `dS = Uniform`).
    Uniform,
    /// Truncated Gaussian centered mid-range; `spread` is the standard
    /// deviation as a fraction of the range width.
    Gaussian {
        /// Standard deviation / range width.
        spread: f64,
    },
    /// Values cluster around `clusters` seeded hot spots (skewed spatial
    /// data); `spread` is each cluster's σ as a fraction of the range width.
    Clustered {
        /// Number of cluster centers.
        clusters: u32,
        /// Cluster σ / range width.
        spread: f64,
    },
}

impl Distribution {
    fn sample(&self, rng: &mut StdRng, lo: Coord, hi: Coord, centers: &[Coord]) -> Coord {
        debug_assert!(hi >= lo);
        match *self {
            Distribution::Uniform => {
                if lo == hi {
                    lo
                } else {
                    rng.random_range(lo..hi)
                }
            }
            Distribution::Gaussian { spread } => {
                let mid = (lo + hi) / 2.0;
                let sigma = (hi - lo) * spread;
                sample_normal(rng, mid, sigma).clamp(lo, hi)
            }
            Distribution::Clustered { clusters, spread } => {
                debug_assert_eq!(centers.len(), clusters as usize);
                let c = centers[rng.random_range(0..clusters as usize)];
                let sigma = (hi - lo) * spread;
                sample_normal(rng, c, sigma).clamp(lo, hi)
            }
        }
    }

    fn make_centers(&self, rng: &mut StdRng, lo: Coord, hi: Coord) -> Vec<Coord> {
        match *self {
            Distribution::Clustered { clusters, .. } => {
                (0..clusters).map(|_| rng.random_range(lo..hi)).collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Box-Muller standard normal scaled to `(mean, sigma)`.
fn sample_normal(rng: &mut StdRng, mean: Coord, sigma: Coord) -> Coord {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sigma * z
}

/// Configuration of the synthetic generator — the parameter list of §7.8.2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of rectangles (`nI`).
    pub n: usize,
    /// Distribution of start-point x coordinates (`dX`).
    pub dx: Distribution,
    /// Distribution of start-point y coordinates (`dY`).
    pub dy: Distribution,
    /// Distribution of lengths (`dL`).
    pub dl: Distribution,
    /// Distribution of breadths (`dB`).
    pub db: Distribution,
    /// Space x range (`[x_min, x_max]`).
    pub x_range: (Coord, Coord),
    /// Space y range (`[y_min, y_max]`).
    pub y_range: (Coord, Coord),
    /// Side-length bounds (`[l_min, l_max]`).
    pub l_range: (Coord, Coord),
    /// Side-breadth bounds (`[b_min, b_max]`).
    pub b_range: (Coord, Coord),
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl SyntheticConfig {
    /// The configuration used by Tables 2, 5, 6 and 8 of the paper:
    /// `dX, dY, dL, dB = Uniform`, space `[0, 100K]²`, sides in `[0, 100]`.
    #[must_use]
    pub fn paper_default(n: usize, seed: u64) -> Self {
        Self {
            n,
            dx: Distribution::Uniform,
            dy: Distribution::Uniform,
            dl: Distribution::Uniform,
            db: Distribution::Uniform,
            x_range: (0.0, 100_000.0),
            y_range: (0.0, 100_000.0),
            l_range: (0.0, 100.0),
            b_range: (0.0, 100.0),
            seed,
        }
    }

    /// Sets the maximum side lengths (the `l_max`/`b_max` sweep of Table 3).
    #[must_use]
    pub fn with_max_sides(mut self, l_max: Coord, b_max: Coord) -> Self {
        self.l_range.1 = l_max;
        self.b_range.1 = b_max;
        self
    }

    /// Generates the dataset. Every rectangle lies inside the space: the
    /// start point is sampled from `dX`/`dY`, the sides from `dL`/`dB`, and
    /// sides are clipped at the space boundary.
    #[must_use]
    pub fn generate(&self) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let x_centers = self
            .dx
            .make_centers(&mut rng, self.x_range.0, self.x_range.1);
        let y_centers = self
            .dy
            .make_centers(&mut rng, self.y_range.0, self.y_range.1);
        let l_centers = self
            .dl
            .make_centers(&mut rng, self.l_range.0, self.l_range.1);
        let b_centers = self
            .db
            .make_centers(&mut rng, self.b_range.0, self.b_range.1);
        (0..self.n)
            .map(|_| {
                let x = self
                    .dx
                    .sample(&mut rng, self.x_range.0, self.x_range.1, &x_centers);
                let y = self
                    .dy
                    .sample(&mut rng, self.y_range.0, self.y_range.1, &y_centers);
                let l = self
                    .dl
                    .sample(&mut rng, self.l_range.0, self.l_range.1, &l_centers)
                    .min(self.x_range.1 - x);
                let b = self
                    .db
                    .sample(&mut rng, self.b_range.0, self.b_range.1, &b_centers)
                    .min(y - self.y_range.0);
                Rect::new(x, y, l, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_inside_space() {
        let cfg = SyntheticConfig::paper_default(5_000, 42);
        let data = cfg.generate();
        assert_eq!(data.len(), 5_000);
        let space = Rect::new(0.0, 100_000.0, 100_000.0, 100_000.0);
        assert!(data.iter().all(|r| space.contains_rect(r)));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SyntheticConfig::paper_default(1_000, 7).generate();
        let b = SyntheticConfig::paper_default(1_000, 7).generate();
        assert_eq!(a, b);
        let c = SyntheticConfig::paper_default(1_000, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_side_bounds() {
        let cfg = SyntheticConfig::paper_default(5_000, 1).with_max_sides(300.0, 500.0);
        let data = cfg.generate();
        assert!(data.iter().all(|r| r.l() <= 300.0 && r.b() <= 500.0));
        // The sweep actually produces larger rectangles than the default.
        assert!(data.iter().any(|r| r.l() > 100.0));
        assert!(data.iter().any(|r| r.b() > 100.0));
    }

    #[test]
    fn uniform_start_points_cover_the_space() {
        let data = SyntheticConfig::paper_default(10_000, 3).generate();
        let mean_x: f64 = data.iter().map(|r| r.x()).sum::<f64>() / data.len() as f64;
        let mean_y: f64 = data.iter().map(|r| r.y()).sum::<f64>() / data.len() as f64;
        assert!((mean_x - 50_000.0).abs() < 2_000.0, "mean_x = {mean_x}");
        assert!((mean_y - 50_000.0).abs() < 2_000.0, "mean_y = {mean_y}");
    }

    #[test]
    fn gaussian_concentrates_mid_range() {
        let mut cfg = SyntheticConfig::paper_default(10_000, 3);
        cfg.dx = Distribution::Gaussian { spread: 0.05 };
        let data = cfg.generate();
        let inside = data
            .iter()
            .filter(|r| (r.x() - 50_000.0).abs() < 15_000.0)
            .count();
        // 3 sigma = 15K: virtually everything.
        assert!(inside as f64 / data.len() as f64 > 0.99);
    }

    #[test]
    fn clustered_is_skewed() {
        let mut cfg = SyntheticConfig::paper_default(10_000, 9);
        cfg.dx = Distribution::Clustered {
            clusters: 3,
            spread: 0.01,
        };
        let data = cfg.generate();
        // With 3 tight clusters, a histogram of 20 bins should leave most
        // bins nearly empty.
        let mut bins = [0usize; 20];
        for r in &data {
            bins[((r.x() / 100_000.0 * 20.0) as usize).min(19)] += 1;
        }
        let occupied = bins.iter().filter(|&&c| c > 200).count();
        assert!(occupied <= 8, "occupied bins = {occupied}");
    }

    #[test]
    fn zero_width_side_range_is_degenerate() {
        let mut cfg = SyntheticConfig::paper_default(100, 5);
        cfg.l_range = (0.0, 0.0);
        cfg.b_range = (0.0, 0.0);
        let data = cfg.generate();
        assert!(data.iter().all(|r| r.l() == 0.0 && r.b() == 0.0));
    }
}
