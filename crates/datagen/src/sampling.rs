//! Dataset derivations used by the experiments: Bernoulli sampling (§8.1
//! retains road MBBs with probability 0.5) and enlargement by factor `k`
//! (§7.8.6 derives datasets of growing selectivity from the road data).

use mwsj_geom::{Coord, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retains each rectangle independently with probability `p` (seeded).
#[must_use]
pub fn bernoulli_sample(data: &[Rect], p: f64, seed: u64) -> Vec<Rect> {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    data.iter()
        .filter(|_| rng.random_bool(p))
        .copied()
        .collect()
}

/// Enlarges every rectangle by factor `k` about its center (§7.8.6),
/// clamping the result to `space` so the derived dataset still lies inside
/// the partitioned extent.
#[must_use]
pub fn enlarge_all(data: &[Rect], k: Coord, space: &Rect) -> Vec<Rect> {
    data.iter()
        .map(|r| {
            r.enlarge_factor(k)
                .intersection(space)
                .expect("rectangle inside the space stays inside after clamping")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects() -> Vec<Rect> {
        (0..10_000)
            .map(|i| {
                let x = f64::from(i % 100) * 10.0;
                let y = f64::from(i / 100) * 10.0 + 5.0;
                Rect::new(x, y, 4.0, 4.0)
            })
            .collect()
    }

    #[test]
    fn sample_rate_close_to_p() {
        let data = rects();
        let s = bernoulli_sample(&data, 0.5, 99);
        let rate = s.len() as f64 / data.len() as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn sample_deterministic() {
        let data = rects();
        assert_eq!(
            bernoulli_sample(&data, 0.3, 1),
            bernoulli_sample(&data, 0.3, 1)
        );
    }

    #[test]
    fn sample_edge_probabilities() {
        let data = rects();
        assert!(bernoulli_sample(&data, 0.0, 1).is_empty());
        assert_eq!(bernoulli_sample(&data, 1.0, 1).len(), data.len());
    }

    #[test]
    fn enlarge_all_scales_and_clamps() {
        let space = Rect::new(0.0, 1005.0, 1010.0, 1005.0);
        let data = rects();
        let big = enlarge_all(&data, 2.0, &space);
        assert_eq!(big.len(), data.len());
        for (orig, e) in data.iter().zip(&big) {
            assert!(space.contains_rect(e));
            assert!(e.l() <= orig.l() * 2.0 + 1e-9);
            // Interior rectangles double exactly.
            if orig.min_x() > 10.0
                && orig.max_x() < 990.0
                && orig.min_y() > 10.0
                && orig.max_y() < 990.0
            {
                assert!((e.l() - 8.0).abs() < 1e-9);
                assert!((e.b() - 8.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn enlarge_factor_one_identity() {
        let space = Rect::new(0.0, 1005.0, 1010.0, 1005.0);
        let data = rects();
        assert_eq!(enlarge_all(&data, 1.0, &space), data);
    }
}
