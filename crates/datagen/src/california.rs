//! A generator calibrated to the paper's California road dataset
//! (§7.8.2, "Details of real-life California Road Data").
//!
//! The paper flattens Census 2000 TIGER/Line road shapes into 2,092,079
//! MBBs and reports these statistics, all of which this generator
//! reproduces (see [`CaliforniaStats`] and the tests):
//!
//! * space: x ∈ [0, 63K], y ∈ [0, 100K] (|x|/|y| = 0.63);
//! * average length 18, average breadth 8;
//! * minimum side 1; maximum length 2285, maximum breadth 1344;
//! * 97% of MBBs have both sides < 100; 99% have both sides < 1000.
//!
//! Road MBBs are also spatially *clustered* (dense urban grids, sparse
//! rural areas); the generator places 80% of rectangles around urban
//! cluster centers and the rest uniformly.

use mwsj_geom::{Coord, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the road-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaliforniaConfig {
    /// Number of road MBBs (the full dataset has 2,092,079; experiments
    /// scale this down).
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Linear scale applied to the space extents (1.0 = the paper's
    /// 63K x 100K). Road sizes, cluster radii and per-cluster road counts
    /// are *not* scaled, so [`CaliforniaConfig::scaled_to`] keeps the local
    /// road density — and thus join selectivity — of the full dataset while
    /// generating far fewer roads.
    pub space_scale: f64,
}

impl CaliforniaConfig {
    /// A dataset of `n` road MBBs over the full-size space.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            seed,
            space_scale: 1.0,
        }
    }

    /// A dataset of `n` road MBBs over a space shrunk by
    /// `sqrt(n / 2,092,079)`, preserving the full dataset's density.
    #[must_use]
    pub fn scaled_to(n: usize, seed: u64) -> Self {
        Self {
            n,
            seed,
            space_scale: ((n as f64) / Self::FULL_COUNT as f64).sqrt().min(1.0),
        }
    }

    /// The full dataset's road count (§7.8.2).
    pub const FULL_COUNT: usize = 2_092_079;

    /// The generated space's x extent.
    #[must_use]
    pub fn x_extent(&self) -> Coord {
        Self::X_RANGE.1 * self.space_scale
    }

    /// The generated space's y extent.
    #[must_use]
    pub fn y_extent(&self) -> Coord {
        Self::Y_RANGE.1 * self.space_scale
    }

    /// The x range of the flattened dataset.
    pub const X_RANGE: (Coord, Coord) = (0.0, 63_000.0);
    /// The y range of the flattened dataset.
    pub const Y_RANGE: (Coord, Coord) = (0.0, 100_000.0);
    /// Maximum MBB length reported by the paper.
    pub const MAX_LENGTH: Coord = 2_285.0;
    /// Maximum MBB breadth reported by the paper.
    pub const MAX_BREADTH: Coord = 1_344.0;
    /// Minimum MBB side reported by the paper.
    pub const MIN_SIDE: Coord = 1.0;

    /// Generates the dataset.
    ///
    /// Road MBBs come from splitting road *polylines* into segments, so
    /// consecutive MBBs of the same road touch end-to-end: each generated
    /// rectangle overlaps a handful of chain neighbours (plus occasional
    /// cross streets), not a stack of unrelated rectangles. Streets run
    /// roughly axis-aligned (the TIGER street-grid pattern) and originate
    /// mostly inside urban clusters.
    #[must_use]
    pub fn generate(&self) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (x_hi, y_hi) = (self.x_extent(), self.y_extent());

        // Urban clusters: most road segments concentrate in a few dozen
        // metropolitan areas.
        let num_clusters = (self.n / 2_000).clamp(8, 64);
        let clusters: Vec<(Coord, Coord, Coord)> = (0..num_clusters)
            .map(|_| {
                (
                    rng.random_range(0.0..x_hi),
                    rng.random_range(0.0..y_hi),
                    // Cluster radius is NOT scaled: intra-cluster density
                    // (roads per cluster / cluster area) stays the paper's.
                    rng.random_range(800.0_f64.min(x_hi / 4.0)..5_000.0_f64.min(x_hi / 2.0)),
                )
            })
            .collect();

        let mut out = Vec::with_capacity(self.n);
        while out.len() < self.n {
            // Start a new street.
            let (mut cx, mut cy) = if rng.random_bool(0.8) {
                let &(x, y, radius) = &clusters[rng.random_range(0..clusters.len())];
                (x + normal(&mut rng) * radius, y + normal(&mut rng) * radius)
            } else {
                (rng.random_range(0.0..x_hi), rng.random_range(0.0..y_hi))
            };
            let horizontal = rng.random_bool(0.8);
            let segments = rng.random_range(2..16usize).min(self.n - out.len());
            for _ in 0..segments {
                let (l, b) = sample_sides(&mut rng);
                // Orient the segment along the street, respecting the
                // per-axis maxima the paper reports.
                let (l, b) = if horizontal {
                    (l.max(b), l.min(b).min(Self::MAX_BREADTH))
                } else {
                    (l.min(b), l.max(b).min(Self::MAX_BREADTH))
                };
                // Heavily scaled-down spaces may be smaller than the longest
                // freeway segments; clip so the MBB fits.
                let (l, b) = (l.min(x_hi), b.min(y_hi));
                let x = cx.clamp(0.0, (x_hi - l).max(0.0));
                let y = cy.clamp(b.min(y_hi), y_hi);
                out.push(Rect::new(x, y, l, b));
                // Walk to the next segment: end-to-end with small jitter.
                if horizontal {
                    cx = x + l;
                    cy = y + rng.random_range(-2.0..2.0);
                } else {
                    cy = y - b;
                    cx = x + rng.random_range(-2.0..2.0);
                }
            }
        }
        out
    }
}

/// Samples `(length, breadth)` from a three-class mixture calibrated to the
/// paper's marginals. Road segments are elongated, so the major dimension is
/// assigned to length with probability 0.7 (matching avg length 18 > avg
/// breadth 8), except that the class tails respect the distinct per-axis
/// maxima.
fn sample_sides(rng: &mut StdRng) -> (Coord, Coord) {
    let class = rng.random_range(0.0..1.0);
    let (major, minor) = if class < 0.965 {
        // Local streets: both sides small (< 100).
        let major = lognormal(rng, 13.0_f64.ln(), 0.85).clamp(1.0, 99.9);
        let minor = lognormal(rng, 5.0_f64.ln(), 0.80).clamp(1.0, 99.9);
        (major, minor)
    } else if class < 0.995 {
        // Arterials / highways segments: major side in [100, 1000).
        let major = loguniform(rng, 100.0, 999.9);
        let minor = lognormal(rng, 12.0_f64.ln(), 1.0).clamp(1.0, 999.9);
        (major, minor)
    } else {
        // Long freeway segments: major side in [1000, max].
        let major = loguniform(rng, 1_000.0, CaliforniaConfig::MAX_LENGTH);
        let minor = loguniform(rng, 4.0, CaliforniaConfig::MAX_BREADTH);
        (major, minor)
    };
    // Orientation: length is the major dimension ~70% of the time.
    if rng.random_bool(0.7) {
        (major, minor.min(CaliforniaConfig::MAX_BREADTH))
    } else {
        (
            minor.min(CaliforniaConfig::MAX_LENGTH),
            major.min(CaliforniaConfig::MAX_BREADTH),
        )
    }
}

fn normal(rng: &mut StdRng) -> Coord {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> Coord {
    (mu + sigma * normal(rng)).exp()
}

fn loguniform(rng: &mut StdRng, lo: Coord, hi: Coord) -> Coord {
    (rng.random_range(lo.ln()..hi.ln())).exp()
}

/// Summary statistics of a rectangle dataset, mirroring the figures the
/// paper reports for the California road data.
#[derive(Debug, Clone, Serialize)]
pub struct CaliforniaStats {
    /// Mean length.
    pub mean_length: Coord,
    /// Mean breadth.
    pub mean_breadth: Coord,
    /// Minimum of all sides.
    pub min_side: Coord,
    /// Maximum length.
    pub max_length: Coord,
    /// Maximum breadth.
    pub max_breadth: Coord,
    /// Fraction with both sides < 100.
    pub frac_both_under_100: f64,
    /// Fraction with both sides < 1000.
    pub frac_both_under_1000: f64,
}

impl CaliforniaStats {
    /// Computes the statistics of a dataset.
    #[must_use]
    pub fn of(data: &[Rect]) -> Self {
        assert!(!data.is_empty());
        let n = data.len() as f64;
        let mean_length = data.iter().map(Rect::l).sum::<Coord>() / n;
        let mean_breadth = data.iter().map(Rect::b).sum::<Coord>() / n;
        let min_side = data
            .iter()
            .map(|r| r.l().min(r.b()))
            .fold(Coord::INFINITY, Coord::min);
        let max_length = data.iter().map(Rect::l).fold(0.0, Coord::max);
        let max_breadth = data.iter().map(Rect::b).fold(0.0, Coord::max);
        let both_under =
            |cap: Coord| data.iter().filter(|r| r.l() < cap && r.b() < cap).count() as f64 / n;
        Self {
            mean_length,
            mean_breadth,
            min_side,
            max_length,
            max_breadth,
            frac_both_under_100: both_under(100.0),
            frac_both_under_1000: both_under(1_000.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Rect> {
        CaliforniaConfig::new(60_000, 2013).generate()
    }

    #[test]
    fn stays_inside_flattened_space() {
        let space = Rect::new(0.0, 100_000.0, 63_000.0, 100_000.0);
        assert!(dataset().iter().all(|r| space.contains_rect(r)));
    }

    #[test]
    fn side_extremes_match_paper() {
        let s = CaliforniaStats::of(&dataset());
        // Corner-based Rect storage reconstructs sides to within 1 ulp.
        assert!(s.min_side >= 0.999, "min side {}", s.min_side);
        assert!(s.max_length <= CaliforniaConfig::MAX_LENGTH);
        assert!(s.max_breadth <= CaliforniaConfig::MAX_BREADTH);
        // The tails are actually exercised.
        assert!(s.max_length > 1_000.0, "max length {}", s.max_length);
        assert!(s.max_breadth > 200.0, "max breadth {}", s.max_breadth);
    }

    #[test]
    fn mean_sides_match_paper_scale() {
        // Paper: average length 18, breadth 8. Allow generous tolerance —
        // the experiments depend on the scale, not the exact mean.
        let s = CaliforniaStats::of(&dataset());
        assert!(
            (10.0..=35.0).contains(&s.mean_length),
            "mean length {}",
            s.mean_length
        );
        assert!(
            (4.0..=20.0).contains(&s.mean_breadth),
            "mean breadth {}",
            s.mean_breadth
        );
        assert!(s.mean_length > s.mean_breadth);
    }

    #[test]
    fn size_quantiles_match_paper() {
        // Paper: 97% of rectangles have both sides < 100; 99% < 1000.
        let s = CaliforniaStats::of(&dataset());
        assert!(
            (0.94..=0.99).contains(&s.frac_both_under_100),
            "under 100: {}",
            s.frac_both_under_100
        );
        assert!(
            s.frac_both_under_1000 >= 0.985,
            "under 1000: {}",
            s.frac_both_under_1000
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = CaliforniaConfig::new(1_000, 1).generate();
        let b = CaliforniaConfig::new(1_000, 1).generate();
        let c = CaliforniaConfig::new(1_000, 2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn positions_are_clustered() {
        // Divide the space into a 10x10 grid of equal boxes; clustered data
        // concentrates mass far above the uniform 1% per box.
        let data = dataset();
        let mut boxes = vec![0usize; 100];
        for r in &data {
            let cx = ((r.x() / 6_300.0) as usize).min(9);
            let cy = ((r.y() / 10_000.0) as usize).min(9);
            boxes[cy * 10 + cx] += 1;
        }
        let max_box = *boxes.iter().max().unwrap() as f64 / data.len() as f64;
        assert!(max_box > 0.03, "max box fraction {max_box}");
    }
}
